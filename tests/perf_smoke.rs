//! Smoke tests for the hot-path overhaul: the incremental victim index,
//! the slab page cache, and the threaded sweep runner must change *how
//! fast* the simulator runs, never *what* it computes.
//!
//! Two angles:
//!
//! * **Counter invariants** across policies — conservation laws that hold
//!   regardless of data-structure internals. (In debug builds — i.e.
//!   here — the FTL additionally cross-checks the victim index against a
//!   full candidate scan on every single GC selection, so these runs
//!   also exercise the index/full-scan equivalence end to end.)
//! * **Thread-count independence** — the sweep runner must return
//!   byte-identical reports no matter how many workers execute the grid.

use jitgc_bench::{run_grid, Experiment, PolicyKind};
use jitgc_core::system::{SimReport, SystemConfig};
use jitgc_sim::SimDuration;
use jitgc_workload::BenchmarkKind;

/// A small, fast experiment (aged device, timeline recording on) that
/// still drives plenty of GC.
fn small_experiment() -> Experiment {
    let mut system = SystemConfig::small_for_tests();
    system.record_timeline = true;
    Experiment {
        system,
        duration: SimDuration::from_secs(60),
        mean_iops: 400.0,
        burst_mean: 64.0,
        seed: 7,
    }
}

fn check_invariants(report: &SimReport, system: &SystemConfig, label: &str) {
    assert_eq!(
        report.ops,
        report.reads + report.buffered_writes + report.direct_writes + report.trims,
        "{label}: request counters do not sum to ops"
    );
    if report.host_pages_written > 0 {
        assert!(
            report.waf.expect("host writes happened") >= 1.0,
            "{label}: WAF {} below 1.0 — the device cannot program fewer pages than the host wrote",
            report.waf.expect("host writes happened")
        );
    }
    assert!(
        report.nand_pages_programmed >= report.host_pages_written,
        "{label}: programmed {} < host-written {}",
        report.nand_pages_programmed,
        report.host_pages_written
    );
    // Free capacity stays within physical bounds at every snapshot.
    let total_pages = system.ftl.geometry().total_pages();
    assert!(
        !report.timeline.is_empty(),
        "{label}: timeline not recorded"
    );
    for sample in &report.timeline {
        assert!(
            sample.free_pages <= total_pages,
            "{label}: free pages {} exceed device total {total_pages}",
            sample.free_pages
        );
        assert!(
            sample.waf == 0.0 || sample.waf >= 1.0,
            "{label}: interval WAF {} in (0, 1)",
            sample.waf
        );
    }
}

#[test]
fn counter_invariants_hold_across_policies() {
    let exp = small_experiment();
    for policy in [
        PolicyKind::NoBgc,
        PolicyKind::ReservedPermille(500),
        PolicyKind::ReservedPermille(1_500),
        PolicyKind::Adp,
        PolicyKind::Idle,
        PolicyKind::Jit,
        PolicyKind::JitNoSip,
    ] {
        let report = exp.run(policy, BenchmarkKind::Ycsb);
        let label = report.policy.clone();
        check_invariants(&report, &exp.system, &label);
    }
}

#[test]
fn counter_invariants_hold_across_benchmarks() {
    let exp = small_experiment();
    for benchmark in BenchmarkKind::all() {
        let report = exp.run(PolicyKind::Jit, benchmark);
        check_invariants(&report, &exp.system, benchmark.name());
    }
}

#[test]
fn sweep_reports_are_identical_serial_and_threaded() {
    let exp = small_experiment();
    let cells: Vec<(PolicyKind, BenchmarkKind)> = [
        PolicyKind::ReservedPermille(500),
        PolicyKind::Adp,
        PolicyKind::Jit,
    ]
    .into_iter()
    .flat_map(|p| {
        [BenchmarkKind::Ycsb, BenchmarkKind::TpcC]
            .into_iter()
            .map(move |b| (p, b))
    })
    .collect();

    let serial = exp.run_cells(&cells, 1);
    for threads in [2, 4] {
        let threaded = exp.run_cells(&cells, threads);
        assert_eq!(
            serial, threaded,
            "sweep results diverged at {threads} threads"
        );
    }
}

#[test]
fn run_grid_preserves_input_order_under_skewed_cell_costs() {
    // Cells with wildly different run times (the real grids mix No-BGC
    // and JIT-GC) must still land in their input slots.
    let exp = small_experiment();
    let cells = [
        (PolicyKind::Jit, BenchmarkKind::Ycsb),
        (PolicyKind::NoBgc, BenchmarkKind::Ycsb),
        (PolicyKind::Jit, BenchmarkKind::TpcC),
        (PolicyKind::NoBgc, BenchmarkKind::TpcC),
    ];
    let reports = run_grid(&cells, 4, |&(p, b)| exp.run(p, b));
    for ((policy, benchmark), report) in cells.iter().zip(&reports) {
        assert_eq!(report.policy, policy.name());
        assert_eq!(report.workload, benchmark.name());
    }
}
