//! Integration tests for the extensions beyond the paper: manager
//! placement (Fig. 3(a) vs 3(b)), hot/cold stream separation, the strict
//! predictor variant, and wear leveling — all driven end-to-end.

use jitgc_repro::core::policy::JitGc;
use jitgc_repro::core::system::{ManagerPlacement, SimReport, SsdSystem, SystemConfig};
use jitgc_repro::ftl::FtlConfig;
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

fn run(config: &SystemConfig, kind: BenchmarkKind, secs: u64) -> SimReport {
    let wl = WorkloadConfig::builder()
        .working_set_pages(config.ftl.user_pages() - config.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(secs))
        .mean_iops(250.0)
        .burst_mean(1_024.0)
        .seed(42)
        .build();
    SsdSystem::new(
        config.clone(),
        Box::new(JitGc::from_system_config(config)),
        kind.build(wl),
    )
    .run()
}

/// Fig. 3: the in-device manager (ideal implementation) avoids the SG_IO
/// interface cost the paper's host-side implementation pays every tick, so
/// it can only do better.
#[test]
fn in_device_manager_is_at_least_as_fast() {
    let mut host = SystemConfig::default_sim();
    host.manager_placement = ManagerPlacement::Host;
    let mut device = host.clone();
    device.manager_placement = ManagerPlacement::Device;

    let host_report = run(&host, BenchmarkKind::Ycsb, 60);
    let device_report = run(&device, BenchmarkKind::Ycsb, 60);
    assert!(
        device_report.iops >= host_report.iops * 0.999,
        "in-device manager IOPS {} vs host {}",
        device_report.iops,
        host_report.iops
    );
    // The decisions themselves are identical: same workload served.
    assert_eq!(device_report.ops, host_report.ops);
}

/// Hot/cold stream separation reduces WAF on the pure random-update
/// workload (hot pages no longer pollute cold blocks).
#[test]
fn hot_cold_streams_reduce_waf_for_updates() {
    let plain = SystemConfig::default_sim();
    let mut streamed = plain.clone();
    streamed.ftl = FtlConfig::builder()
        .user_pages(plain.ftl.user_pages())
        .op_permille(plain.ftl.op_permille())
        .pages_per_block(plain.ftl.geometry().pages_per_block())
        .page_size_bytes(plain.ftl.geometry().page_size().as_u64())
        .gc_reserve_blocks(plain.ftl.gc_reserve_blocks())
        .hot_cold_streams(SimDuration::from_secs(5))
        .build();

    let plain_report = run(&plain, BenchmarkKind::TpcC, 120);
    let streamed_report = run(&streamed, BenchmarkKind::TpcC, 120);
    assert!(
        streamed_report.waf.expect("host writes happened")
            < plain_report.waf.expect("host writes happened"),
        "streams WAF {} vs single-stream {}",
        streamed_report.waf.expect("host writes happened"),
        plain_report.waf.expect("host writes happened")
    );
}

/// The strict τ_flush predictor variant runs end-to-end and, as the paper
/// argues, costs foreground GC relative to the relaxed default.
#[test]
fn strict_tau_flush_costs_fgc() {
    let relaxed = SystemConfig::default_sim();
    let mut strict = relaxed.clone();
    strict.strict_tau_flush = true;

    let relaxed_report = run(&relaxed, BenchmarkKind::Ycsb, 120);
    let strict_report = run(&strict, BenchmarkKind::Ycsb, 120);
    let relaxed_fgc = relaxed_report.fgc_request_stalls + relaxed_report.fgc_flush_stalls;
    let strict_fgc = strict_report.fgc_request_stalls + strict_report.fgc_flush_stalls;
    assert!(
        strict_fgc >= relaxed_fgc,
        "strict variant should not reduce FGC: {strict_fgc} vs {relaxed_fgc}"
    );
}

/// Wear leveling keeps the erase-count spread bounded under a workload
/// with a static cold region.
#[test]
fn wear_leveling_bounds_the_spread() {
    let mut off = SystemConfig::default_sim();
    off.ftl = FtlConfig::builder()
        .user_pages(off.ftl.user_pages())
        .op_permille(off.ftl.op_permille())
        .pages_per_block(off.ftl.geometry().pages_per_block())
        .page_size_bytes(off.ftl.geometry().page_size().as_u64())
        .gc_reserve_blocks(off.ftl.gc_reserve_blocks())
        .wear_level_threshold(6)
        .build();
    let mut on = off.clone();
    on.wear_leveling = true;

    let report_off = run(&off, BenchmarkKind::Ycsb, 120);
    let report_on = run(&on, BenchmarkKind::Ycsb, 120);
    // With leveling on, the worst-vs-best spread must not be wider.
    let spread_off = report_off.wear.max - report_off.wear.min;
    let spread_on = report_on.wear.max - report_on.wear.min;
    assert!(
        spread_on <= spread_off + 2,
        "wear leveling widened the spread: {spread_on} vs {spread_off}"
    );
}

/// The TRIM-heavy Postmark workload ends with trimmed pages unmapped and
/// a lower steady-state utilization (extension: TRIM support).
#[test]
fn trim_reduces_live_data() {
    let config = SystemConfig::default_sim();
    let report = run(&config, BenchmarkKind::Postmark, 60);
    assert!(report.trims > 0, "postmark must trim");
    assert!(
        report.host_pages_written > 0 && report.waf.expect("host writes happened") >= 1.0,
        "sane trim-path accounting"
    );
}
