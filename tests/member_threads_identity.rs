//! Parallel member stepping is an implementation detail: whatever worker
//! count steps the members — and whichever driver schedules them, the
//! work-stealing scheduler or the lockstep barrier oracle — the array
//! report must be **byte-identical** (as serialized JSON) to the serial
//! scheduler's. That holds across striped and mirrored layouts, with
//! wear-dependent fault injection active (the fault timeline is part of
//! the identity, so a reordered RNG draw anywhere would show up here),
//! and at rack scale (64 members), where stealing actually moves work
//! between shards.

use jitgc_repro::array::{ArrayConfig, ArraySched, GcMode, Redundancy};
use jitgc_repro::core::policy::{GcPolicy, JitGc};
use jitgc_repro::core::system::SystemConfig;
use jitgc_repro::nand::FaultConfig;
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, Workload, WorkloadConfig};

fn jit(config: &SystemConfig) -> Box<dyn GcPolicy> {
    Box::new(JitGc::from_system_config(config))
}

/// The standard sizing, scaled by the column count so each member carries
/// a standalone device's load.
fn workload_for(
    config: &SystemConfig,
    columns: u64,
    seed: u64,
    secs: u64,
    iops: f64,
) -> Box<dyn Workload> {
    let per_member = config.ftl.user_pages() - config.ftl.op_pages() / 2;
    BenchmarkKind::Ycsb.build(
        WorkloadConfig::builder()
            .working_set_pages(per_member * columns)
            .duration(SimDuration::from_secs(secs))
            .mean_iops(iops * columns as f64)
            .burst_mean(128.0)
            .seed(seed)
            .build(),
    )
}

fn array_json(
    system: &SystemConfig,
    members: usize,
    redundancy: Redundancy,
    sched: ArraySched,
    member_threads: usize,
    seed: u64,
    (secs, iops): (u64, f64),
) -> String {
    let columns = match redundancy {
        Redundancy::None => members as u64,
        Redundancy::Mirror => members as u64 / 2,
    };
    ArrayConfig {
        members,
        chunk_pages: 16,
        redundancy,
        gc_mode: GcMode::Staggered,
        sched,
        member_threads,
        system: system.clone(),
    }
    .build(jit, workload_for(system, columns, seed, secs, iops))
    .run()
    .to_json()
    .to_pretty()
}

/// Every (driver, thread-count) cell beyond the serial barrier baseline.
const CELLS: [(ArraySched, usize); 5] = [
    (ArraySched::Steal, 1),
    (ArraySched::Steal, 2),
    (ArraySched::Steal, 4),
    (ArraySched::Barrier, 2),
    (ArraySched::Barrier, 4),
];

/// Striped (no redundancy): members only interact through routing-free
/// address splitting, so every quantum runs fully parallel.
#[test]
fn striped_array_is_identical_for_any_worker_count() {
    let system = SystemConfig::small_for_tests();
    let serial = array_json(
        &system,
        4,
        Redundancy::None,
        ArraySched::Barrier,
        1,
        42,
        (15, 400.0),
    );
    for (sched, threads) in CELLS {
        assert_eq!(
            serial,
            array_json(
                &system,
                4,
                Redundancy::None,
                sched,
                threads,
                42,
                (15, 400.0)
            ),
            "striped report diverged at {threads} member threads ({})",
            sched.name()
        );
    }
}

/// Mirrored: replica-routed reads are cross-member decisions, so quanta
/// get truncated at serial points — the report must still match exactly.
#[test]
fn mirrored_array_is_identical_for_any_worker_count() {
    let system = SystemConfig::small_for_tests();
    let serial = array_json(
        &system,
        4,
        Redundancy::Mirror,
        ArraySched::Barrier,
        1,
        7,
        (15, 400.0),
    );
    for (sched, threads) in CELLS {
        assert_eq!(
            serial,
            array_json(
                &system,
                4,
                Redundancy::Mirror,
                sched,
                threads,
                7,
                (15, 400.0)
            ),
            "mirrored report diverged at {threads} member threads ({})",
            sched.name()
        );
    }
}

/// A `small_for_tests` system with the wear-fault injector armed.
fn faulty_system() -> SystemConfig {
    let mut system = SystemConfig::small_for_tests();
    system.ftl = system
        .ftl
        .to_builder()
        .endurance_limit(60)
        .fault(FaultConfig {
            seed: 9,
            program_rate: 0.05,
            erase_rate: 0.05,
            read_rate: 0.02,
            wear_scale: 40,
        })
        .build();
    system
}

/// With fault injection firing, every RNG draw's position in the
/// per-member stream is observable through the failure timeline: parallel
/// stepping must reproduce it draw for draw.
#[test]
fn faulty_array_is_identical_for_any_worker_count() {
    let system = faulty_system();
    for redundancy in [Redundancy::None, Redundancy::Mirror] {
        let serial = array_json(
            &system,
            4,
            redundancy,
            ArraySched::Barrier,
            1,
            21,
            (15, 400.0),
        );
        for (sched, threads) in CELLS {
            assert_eq!(
                serial,
                array_json(&system, 4, redundancy, sched, threads, 21, (15, 400.0)),
                "faulty {redundancy:?} report diverged at {threads} member threads ({})",
                sched.name()
            );
        }
    }
}

/// Rack scale: 64 mirrored members with fault injection and a deep
/// queue, so quanta are long, mirrored-read serial points are frequent,
/// and the steal driver's shards actually exchange work. Reports must be
/// byte-identical across {1, 4, 8} threads for both drivers — the
/// acceptance criterion for the work-stealing scheduler.
#[test]
fn rack_scale_array_is_identical_for_any_worker_count_and_driver() {
    let mut system = faulty_system();
    system.queue_depth = 8;
    let run = |sched, threads| {
        array_json(
            &system,
            64,
            Redundancy::Mirror,
            sched,
            threads,
            5,
            (3, 150.0),
        )
    };
    let serial = run(ArraySched::Barrier, 1);
    for sched in [ArraySched::Steal, ArraySched::Barrier] {
        for threads in [1, 4, 8] {
            if sched == ArraySched::Barrier && threads == 1 {
                continue;
            }
            assert_eq!(
                serial,
                run(sched, threads),
                "64-member report diverged at {threads} member threads ({})",
                sched.name()
            );
        }
    }
}
