//! Parallel member stepping is an implementation detail: whatever worker
//! count steps the members, the array report must be **byte-identical**
//! (as serialized JSON) to the serial scheduler's — across striped and
//! mirrored layouts, and with wear-dependent fault injection active (the
//! fault timeline is part of the identity, so a reordered RNG draw
//! anywhere would show up here).

use jitgc_repro::array::{ArrayConfig, GcMode, Redundancy};
use jitgc_repro::core::policy::{GcPolicy, JitGc};
use jitgc_repro::core::system::SystemConfig;
use jitgc_repro::nand::FaultConfig;
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, Workload, WorkloadConfig};

fn jit(config: &SystemConfig) -> Box<dyn GcPolicy> {
    Box::new(JitGc::from_system_config(config))
}

/// The standard sizing, scaled by the column count so each member carries
/// a standalone device's load.
fn workload_for(config: &SystemConfig, columns: u64, seed: u64) -> Box<dyn Workload> {
    let per_member = config.ftl.user_pages() - config.ftl.op_pages() / 2;
    BenchmarkKind::Ycsb.build(
        WorkloadConfig::builder()
            .working_set_pages(per_member * columns)
            .duration(SimDuration::from_secs(15))
            .mean_iops(400.0 * columns as f64)
            .burst_mean(128.0)
            .seed(seed)
            .build(),
    )
}

fn array_json(
    system: &SystemConfig,
    redundancy: Redundancy,
    member_threads: usize,
    seed: u64,
) -> String {
    let members = 4;
    let columns = match redundancy {
        Redundancy::None => members as u64,
        Redundancy::Mirror => members as u64 / 2,
    };
    ArrayConfig {
        members,
        chunk_pages: 16,
        redundancy,
        gc_mode: GcMode::Staggered,
        member_threads,
        system: system.clone(),
    }
    .build(jit, workload_for(system, columns, seed))
    .run()
    .to_json()
    .to_pretty()
}

/// Striped (no redundancy): members only interact through routing-free
/// address splitting, so every quantum runs fully parallel.
#[test]
fn striped_array_is_identical_for_any_worker_count() {
    let system = SystemConfig::small_for_tests();
    let serial = array_json(&system, Redundancy::None, 1, 42);
    for threads in [2, 4] {
        assert_eq!(
            serial,
            array_json(&system, Redundancy::None, threads, 42),
            "striped report diverged at {threads} member threads"
        );
    }
}

/// Mirrored: replica-routed reads are cross-member decisions, so quanta
/// get truncated at serial points — the report must still match exactly.
#[test]
fn mirrored_array_is_identical_for_any_worker_count() {
    let system = SystemConfig::small_for_tests();
    let serial = array_json(&system, Redundancy::Mirror, 1, 7);
    for threads in [2, 4] {
        assert_eq!(
            serial,
            array_json(&system, Redundancy::Mirror, threads, 7),
            "mirrored report diverged at {threads} member threads"
        );
    }
}

/// With fault injection firing, every RNG draw's position in the
/// per-member stream is observable through the failure timeline: parallel
/// stepping must reproduce it draw for draw.
#[test]
fn faulty_array_is_identical_for_any_worker_count() {
    let mut system = SystemConfig::small_for_tests();
    system.ftl = system
        .ftl
        .to_builder()
        .endurance_limit(60)
        .fault(FaultConfig {
            seed: 9,
            program_rate: 0.05,
            erase_rate: 0.05,
            read_rate: 0.02,
            wear_scale: 40,
        })
        .build();
    for redundancy in [Redundancy::None, Redundancy::Mirror] {
        let serial = array_json(&system, redundancy, 1, 21);
        for threads in [2, 4] {
            assert_eq!(
                serial,
                array_json(&system, redundancy, threads, 21),
                "faulty {redundancy:?} report diverged at {threads} member threads"
            );
        }
    }
}
