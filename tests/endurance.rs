//! Device-lifetime integration tests: the paper's "long lifetimes" claim
//! measured as actual end-of-life, not just WAF.
//!
//! These drive the FTL directly with an identical host write stream under
//! a lazy and an aggressive background-reclaim regime on endurance-limited
//! flash, and check that aggressiveness costs real lifetime.

use jitgc_repro::ftl::{Ftl, FtlConfig, GreedySelector};
use jitgc_repro::nand::Lpn;
use jitgc_repro::sim::{SimDuration, SimRng, SimTime, Zipf};

fn endurance_ftl(cycles: u64) -> Ftl {
    Ftl::new(
        FtlConfig::builder()
            .user_pages(512)
            .op_permille(150)
            .pages_per_block(16)
            .gc_reserve_blocks(2)
            .endurance_limit(cycles)
            .build(),
        Box::new(GreedySelector),
    )
}

/// Drives `rounds` rounds of skewed writes with BGC toward `target_free`
/// pages after each round; returns host pages written when the first block
/// retired (or None if the device outlived the run).
fn host_writes_until_first_retirement(target_free: u64, rounds: u64) -> Option<u64> {
    let mut ftl = endurance_ftl(40);
    let zipf = Zipf::new(512, 0.99);
    let mut rng = SimRng::seed(77);
    // Age: fill the whole space once.
    for lpn in 0..512u64 {
        ftl.host_write(Lpn(lpn), SimTime::ZERO).expect("in range");
    }
    for round in 1..=rounds {
        let now = SimTime::from_secs(round);
        for _ in 0..32 {
            let lpn = zipf.sample(&mut rng);
            ftl.host_write(Lpn(lpn), now).expect("in range");
        }
        ftl.background_collect(now, SimDuration::from_secs(10), Some(target_free));
        if ftl.retired_blocks() > 0 {
            return Some(ftl.stats().host_pages_written);
        }
    }
    None
}

#[test]
fn aggressive_reclaim_wears_the_device_out_sooner() {
    let lazy = host_writes_until_first_retirement(16, 4_000);
    let aggressive = host_writes_until_first_retirement(120, 4_000);
    let aggressive_writes = aggressive.expect("aggressive regime must hit end-of-life");
    match lazy {
        None => {} // lazy outlived the whole run — even stronger
        Some(lazy_writes) => assert!(
            lazy_writes > aggressive_writes,
            "lazy served {lazy_writes} host pages before first retirement, \
             aggressive only {aggressive_writes}"
        ),
    }
}

#[test]
fn device_survives_retirements_while_spare_blocks_remain() {
    let mut ftl = endurance_ftl(25);
    let mut rng = SimRng::seed(5);
    let mut served = 0u64;
    for round in 0..3_000u64 {
        let now = SimTime::from_secs(round);
        for _ in 0..16 {
            let lpn = rng.range_u64(0, 512);
            if ftl.host_write(Lpn(lpn), now).is_err() {
                // Out of reclaimable space: genuine end-of-life.
                assert!(ftl.retired_blocks() > 0, "EOL without any retirement");
                return;
            }
            served += 1;
        }
        ftl.background_collect(now, SimDuration::from_secs(10), None);
    }
    // Either outcome is fine: the device served the whole run, or it died
    // gracefully above. It must have done real work either way.
    assert!(served > 10_000, "served only {served} writes");
}

#[test]
fn wear_report_tracks_retired_blocks_wear() {
    let mut ftl = endurance_ftl(10);
    let mut rng = SimRng::seed(9);
    for round in 0..1_500u64 {
        let now = SimTime::from_secs(round);
        for _ in 0..16 {
            let lpn = rng.range_u64(0, 512);
            if ftl.host_write(Lpn(lpn), now).is_err() {
                break;
            }
        }
        ftl.background_collect(now, SimDuration::from_secs(10), None);
        if ftl.retired_blocks() > 2 {
            break;
        }
    }
    if ftl.retired_blocks() > 0 {
        // Retired blocks hit exactly the endurance limit; the wear report
        // must show it as the maximum.
        assert_eq!(ftl.device().wear_report().max, 10);
    }
}
