//! Equivalence properties of the quiescence fast-forward (DESIGN.md §15).
//!
//! The fast-forward is a pure wall-clock optimization: a run with it on
//! must produce a report **byte-identical** (as serialized JSON) to the
//! same run with it off, at every driver level — the single-device
//! engine, the array scheduler under both driver modes and worker-thread
//! counts, and the multi-tenant service. These tests pin that contract on
//! seeded idle-heavy workloads; debug builds additionally replay every
//! skipped span through the per-tick loop inside the engine itself (the
//! oracle in `fast_forward_checked`), so each skip below is doubly
//! verified.

use jitgc_array::{ArrayConfig, ArraySched, GcMode, Redundancy};
use jitgc_bench::PolicyKind;
use jitgc_core::system::{SsdSystem, SystemConfig};
use jitgc_service::{run_closed_loop_counting, ServiceConfig, TenantProfile, TenantSpec};
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, Workload, WorkloadConfig};

/// An idle-heavy closed-loop workload: ~1 request/s arrival with ~600 s
/// mean bursts leaves long zero-traffic stretches between bursts — far
/// beyond the ~(N_wb + CDH window) tick warm-up quiescence needs.
fn bursty_idle_workload(
    system: &SystemConfig,
    benchmark: BenchmarkKind,
    columns: u64,
    secs: u64,
    seed: u64,
) -> Box<dyn Workload> {
    let per_member = system.ftl.user_pages() - system.ftl.op_pages() / 2;
    benchmark.build(
        WorkloadConfig::builder()
            .working_set_pages(per_member * columns)
            .duration(SimDuration::from_secs(secs))
            .mean_iops(1.0 * columns as f64)
            .burst_mean(600.0 * columns as f64)
            .seed(seed)
            .build(),
    )
}

/// Runs one single-device scenario and returns the serialized report
/// plus the skip counters.
fn single_run(benchmark: BenchmarkKind, fast_forward: bool, seed: u64) -> (String, u64, u64) {
    let system = SystemConfig::small_for_tests();
    let workload = bursty_idle_workload(&system, benchmark, 1, 1_500, seed);
    let policy = PolicyKind::Jit.build(&system);
    let mut sim = SsdSystem::new(system, policy, workload);
    sim.set_fast_forward(fast_forward);
    let report = sim.run();
    (
        report.to_json().to_pretty(),
        sim.ticks_skipped(),
        sim.ff_spans(),
    )
}

/// The tentpole acceptance criterion, single-device: every benchmark
/// flavor reports byte-identically with the fast-forward on and off, and
/// the idle-heavy sizing actually exercises the skip path.
#[test]
fn single_device_reports_are_identical_ff_on_and_off_across_workloads() {
    let mut total_skipped = 0;
    for (i, &benchmark) in BenchmarkKind::all().iter().enumerate() {
        let seed = 7 + i as u64;
        let (on, skipped, spans) = single_run(benchmark, true, seed);
        let (off, skipped_off, _) = single_run(benchmark, false, seed);
        assert_eq!(
            on, off,
            "{benchmark:?}: report diverged between fast-forward on and off"
        );
        assert_eq!(skipped_off, 0, "{benchmark:?}: off-run must never skip");
        assert!(
            spans <= skipped,
            "{benchmark:?}: spans ({spans}) cannot exceed skipped ticks ({skipped})"
        );
        total_skipped += skipped;
    }
    assert!(
        total_skipped > 0,
        "the idle-heavy sizing never engaged the fast-forward — the \
         identity checks above proved nothing"
    );
}

/// Runs one array scenario and returns the serialized report plus the
/// aggregate skip counter.
fn array_run(sched: ArraySched, member_threads: usize, fast_forward: bool) -> (String, u64) {
    let system = SystemConfig::small_for_tests();
    let members = 4;
    let config = ArrayConfig {
        members,
        chunk_pages: 16,
        redundancy: Redundancy::None,
        gc_mode: GcMode::Staggered,
        sched,
        member_threads,
        system: system.clone(),
    };
    let workload = bursty_idle_workload(&system, BenchmarkKind::Ycsb, members as u64, 1_500, 11);
    let mut sim = config.build(|cfg| PolicyKind::Jit.build(cfg), workload);
    sim.set_fast_forward(fast_forward);
    let report = sim.run();
    (report.to_json().to_pretty(), sim.ticks_skipped())
}

/// The array acceptance criterion: byte-identical reports with the
/// fast-forward on and off, under both driver modes and both worker
/// counts — and all five runs agree with each other (the fast-forward
/// must not break the existing sched/thread-count identities either).
#[test]
fn array_reports_are_identical_ff_on_and_off_across_drivers() {
    let (baseline, skipped_off) = array_run(ArraySched::Steal, 1, false);
    assert_eq!(skipped_off, 0, "off-run must never skip");
    let mut engaged = 0;
    for sched in [ArraySched::Steal, ArraySched::Barrier] {
        for member_threads in [1, 4] {
            let (on, skipped) = array_run(sched, member_threads, true);
            assert_eq!(
                on, baseline,
                "{sched:?} x {member_threads} thread(s): fast-forward \
                 changed the array report"
            );
            engaged += skipped;
        }
    }
    assert!(
        engaged > 0,
        "no array run engaged the fast-forward — the identities proved nothing"
    );
}

/// A tenant roster whose request streams leave long idle stretches:
/// read-only tenants (nothing ever dirties the cache) trickling a few
/// requests across a long run.
fn idle_service_cfg(fast_forward: bool) -> ServiceConfig {
    let mut cfg = ServiceConfig::small_for_tests();
    cfg.tenants = (0..2)
        .map(|i| TenantSpec {
            name: format!("scanner-{i}"),
            weight: 1 + i,
            profile: TenantProfile::Reader,
            mean_iops: 0.004,
            concurrency: 1,
        })
        .collect();
    cfg.seconds = 2_000;
    cfg.system.prefill = false;
    cfg.fast_forward = fast_forward;
    cfg
}

/// The service acceptance criterion: the deterministic service report is
/// byte-identical with the engine fast-forward on and off, and an
/// idle-heavy roster actually reaches quiescence behind the queue-pair
/// frontend.
#[test]
fn service_reports_are_identical_ff_on_and_off() {
    let policy = |cfg: &ServiceConfig| PolicyKind::Jit.build(&cfg.system);
    let on_cfg = idle_service_cfg(true);
    let (on, skipped_on, spans_on) = run_closed_loop_counting(&on_cfg, policy(&on_cfg));
    let off_cfg = idle_service_cfg(false);
    let (off, skipped_off, _) = run_closed_loop_counting(&off_cfg, policy(&off_cfg));
    assert_eq!(
        on.to_json().to_pretty(),
        off.to_json().to_pretty(),
        "fast-forward changed the service report"
    );
    assert_eq!(skipped_off, 0, "off-run must never skip");
    assert!(
        skipped_on > 0 && spans_on > 0,
        "the idle roster never engaged the fast-forward \
         ({skipped_on} ticks in {spans_on} spans)"
    );
}

/// The busy default mix must also be invariant (even though it rarely
/// goes quiescent): flipping the config switch on a writer-heavy roster
/// is a no-op on the report.
#[test]
fn service_default_mix_report_ignores_the_switch() {
    let mk = |fast_forward: bool| {
        let mut cfg = ServiceConfig::small_for_tests();
        cfg.seconds = 10;
        cfg.system.prefill = false;
        cfg.fast_forward = fast_forward;
        let policy = PolicyKind::Jit.build(&cfg.system);
        run_closed_loop_counting(&cfg, policy)
            .0
            .to_json()
            .to_pretty()
    };
    assert_eq!(mk(true), mk(false));
}

/// The satellite regression: the interval log stays bounded on long runs
/// (it used to grow one entry per tick forever), through the facade and
/// with the fast-forward in play.
#[test]
fn interval_log_stays_bounded_through_the_facade() {
    let system = SystemConfig::small_for_tests();
    let nwb = system.nwb();
    let workload = bursty_idle_workload(&system, BenchmarkKind::Ycsb, 1, 2_000, 13);
    let policy = PolicyKind::Jit.build(&system);
    let mut sim = SsdSystem::new(system, policy, workload);
    let _ = sim.run();
    // One live horizon of entries plus the slack of the tick that scores
    // before compacting.
    let bound = 2 * nwb + 2;
    assert!(
        sim.interval_log_materialized_len() <= bound,
        "interval log kept {} materialized entries (bound {bound})",
        sim.interval_log_materialized_len()
    );
}
