//! Smoke tests for the array subsystem, kept short enough for the tier-1
//! root-package run (the crate-level suite in
//! `crates/array/tests/array_properties.rs` covers the same invariants at
//! larger scale and with mirroring).
//!
//! Three guarantees, end to end through the facade:
//!
//! * a 1-member array IS the standalone engine — byte-identical report;
//! * aggregate counters are exactly the member sums;
//! * array sweeps are thread-count independent, like every other sweep.

use jitgc_array::{ArrayConfig, ArrayReport, ArraySched, GcMode, Redundancy};
use jitgc_bench::{run_grid, PolicyKind};
use jitgc_core::system::{SsdSystem, SystemConfig};
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, Workload, WorkloadConfig};

/// The standard experiment sizing, scaled by the column count so each
/// member carries a standalone device's load.
fn workload_for(system: &SystemConfig, columns: u64, seed: u64) -> Box<dyn Workload> {
    let per_member = system.ftl.user_pages() - system.ftl.op_pages() / 2;
    BenchmarkKind::Ycsb.build(
        WorkloadConfig::builder()
            .working_set_pages(per_member * columns)
            .duration(SimDuration::from_secs(20))
            .mean_iops(400.0 * columns as f64)
            .burst_mean(128.0)
            .seed(seed)
            .build(),
    )
}

fn array_report_with(members: usize, gc_mode: GcMode, sched: ArraySched, seed: u64) -> ArrayReport {
    let system = SystemConfig::small_for_tests();
    let config = ArrayConfig {
        members,
        chunk_pages: 16,
        redundancy: Redundancy::None,
        gc_mode,
        sched,
        member_threads: 1,
        system: system.clone(),
    };
    config
        .build(
            |cfg| PolicyKind::Jit.build(cfg),
            workload_for(&system, members as u64, seed),
        )
        .run()
}

fn array_report(members: usize, gc_mode: GcMode, seed: u64) -> ArrayReport {
    array_report_with(members, gc_mode, ArraySched::Steal, seed)
}

/// `--array 1` acceptance criterion: the single member's report is
/// byte-identical (as serialized JSON) to `SsdSystem::run()` on the same
/// configuration and workload.
#[test]
fn one_member_array_is_the_standalone_engine() {
    let system = SystemConfig::small_for_tests();
    let single = SsdSystem::new(
        system.clone(),
        PolicyKind::Jit.build(&system),
        workload_for(&system, 1, 42),
    )
    .run();

    let array = array_report(1, GcMode::Staggered, 42);
    assert_eq!(array.member_reports.len(), 1);
    assert_eq!(
        array.member_reports[0].to_json().to_pretty(),
        single.to_json().to_pretty(),
        "1-member array diverged from the standalone engine"
    );
    assert_eq!(array.ops, single.ops);
    assert_eq!(array.split_requests, 0);

    // Both drivers degenerate to the same serial schedule at N = 1.
    let barrier = array_report_with(1, GcMode::Staggered, ArraySched::Barrier, 42);
    assert_eq!(
        barrier.to_json().to_pretty(),
        array.to_json().to_pretty(),
        "barrier and steal drivers diverged on a 1-member array"
    );
}

/// Aggregate counters are the member sums; derived aggregates agree.
#[test]
fn aggregates_are_member_sums() {
    let report = array_report(3, GcMode::Staggered, 7);
    assert_eq!(report.member_reports.len(), 3);
    assert!(report.ops > 0, "workload produced no requests");

    let erases: u64 = report.member_reports.iter().map(|r| r.nand_erases).sum();
    let stalls: u64 = report
        .member_reports
        .iter()
        .map(|r| r.fgc_request_stalls)
        .sum();
    assert_eq!(report.nand_erases, erases);
    assert_eq!(report.fgc_request_stalls, stalls);
    assert_eq!(report.erase_spread.total, erases);

    let host: u64 = report
        .member_reports
        .iter()
        .map(|r| r.host_pages_written)
        .sum();
    let nand: u64 = report
        .member_reports
        .iter()
        .map(|r| r.nand_pages_programmed)
        .sum();
    assert!(host > 0, "no host writes reached the members");
    let waf = report.waf.expect("WAF defined once host writes happened");
    assert!((waf - nand as f64 / host as f64).abs() < 1e-12);
}

/// Array sweeps distribute over worker threads without changing results.
#[test]
fn array_sweeps_are_thread_count_independent() {
    let cells = [
        (GcMode::Unsynchronized, 1u64),
        (GcMode::Staggered, 1u64),
        (GcMode::Unsynchronized, 2u64),
        (GcMode::Staggered, 2u64),
    ];
    let run = |&(mode, seed): &(GcMode, u64)| array_report(2, mode, seed);
    let serial = run_grid(&cells, 1, run);
    let threaded = run_grid(&cells, 4, run);
    assert_eq!(serial, threaded, "thread count changed the results");
}
