//! Cross-crate integration: the full workload → page cache → FTL → NAND
//! pipeline under every policy.

use jitgc_repro::core::policy::{AdpGc, GcPolicy, JitGc, NoBgc, ReservedCapacity};
use jitgc_repro::core::system::{SimReport, SsdSystem, SystemConfig};
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

fn run(
    config: &SystemConfig,
    policy: Box<dyn GcPolicy>,
    kind: BenchmarkKind,
    secs: u64,
    seed: u64,
) -> SimReport {
    let wl = WorkloadConfig::builder()
        .working_set_pages(config.ftl.user_pages() - config.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(secs))
        .mean_iops(800.0)
        .burst_mean(256.0)
        .seed(seed)
        .build();
    SsdSystem::new(config.clone(), policy, kind.build(wl)).run()
}

fn all_policies(config: &SystemConfig) -> Vec<Box<dyn GcPolicy>> {
    let (bw, gc_bw) = config.default_bandwidths();
    vec![
        Box::new(NoBgc),
        Box::new(ReservedCapacity::lazy(config.op_capacity())),
        Box::new(ReservedCapacity::aggressive(config.op_capacity())),
        Box::new(AdpGc::new(
            config.flusher_period,
            config.tau_expire(),
            config.cdh_percentile,
            config.cdh_bin_bytes,
            bw,
            gc_bw,
        )),
        Box::new(JitGc::from_system_config(config)),
    ]
}

#[test]
fn every_policy_runs_every_benchmark() {
    let config = SystemConfig::small_for_tests();
    for kind in BenchmarkKind::all() {
        for policy in all_policies(&config) {
            let name = policy.name();
            let report = run(&config, policy, kind, 10, 3);
            assert!(report.ops > 500, "{name}/{kind}: only {} ops", report.ops);
            assert!(
                report.waf.expect("host writes happened") >= 1.0,
                "{name}/{kind}: waf {}",
                report.waf.expect("host writes happened")
            );
            assert!(
                report.iops > 0.0 && report.iops.is_finite(),
                "{name}/{kind}: iops {}",
                report.iops
            );
            assert_eq!(
                report.ops,
                report.reads + report.buffered_writes + report.direct_writes + report.trims,
                "{name}/{kind}: request counts disagree"
            );
        }
    }
}

#[test]
fn aged_device_runs_and_reports_higher_waf() {
    let mut config = SystemConfig::small_for_tests();
    let fresh = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Ycsb,
        20,
        5,
    );
    config.prefill = true;
    let aged = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Ycsb,
        20,
        5,
    );
    // An aged (fully-mapped) device has far less slack, so GC must migrate
    // much more — this is the no-TRIM steady state the paper measures on.
    assert!(
        aged.waf.expect("host writes happened") > fresh.waf.expect("host writes happened"),
        "aged WAF {} should exceed fresh WAF {}",
        aged.waf.expect("host writes happened"),
        fresh.waf.expect("host writes happened")
    );
    assert_eq!(aged.ops, fresh.ops, "same workload either way");
}

#[test]
fn cross_policy_runs_share_workload_stream() {
    // All policies must see the *same* request stream: the workload is
    // deterministic in its seed, independent of policy behaviour.
    let config = SystemConfig::small_for_tests();
    let reports: Vec<SimReport> = all_policies(&config)
        .into_iter()
        .map(|p| run(&config, p, BenchmarkKind::Postmark, 15, 9))
        .collect();
    for r in &reports[1..] {
        assert_eq!(r.ops, reports[0].ops);
        assert_eq!(r.reads, reports[0].reads);
        assert_eq!(r.direct_writes, reports[0].direct_writes);
        assert_eq!(r.trims, reports[0].trims);
    }
    // But the device-side outcomes differ by policy.
    let erases: Vec<u64> = reports.iter().map(|r| r.nand_erases).collect();
    assert!(
        erases.windows(2).any(|w| w[0] != w[1]),
        "policies produced identical erase counts: {erases:?}"
    );
}

#[test]
#[cfg(feature = "serde")]
fn report_serializes_and_round_trips() {
    let config = SystemConfig::small_for_tests();
    let report = run(&config, Box::new(NoBgc), BenchmarkKind::Tiobench, 10, 1);
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let back: SimReport = serde_json::from_str(&json).expect("parse");
    assert_eq!(back.ops, report.ops);
    assert_eq!(
        back.waf.expect("host writes happened"),
        report.waf.expect("host writes happened")
    );
    assert_eq!(back.policy, report.policy);
}

#[test]
fn wear_leveling_can_be_enabled_end_to_end() {
    let mut config = SystemConfig::small_for_tests();
    config.wear_leveling = true;
    config.ftl = jitgc_repro::ftl::FtlConfig::builder()
        .user_pages(2_048)
        .op_permille(70)
        .pages_per_block(64)
        .gc_reserve_blocks(2)
        .wear_level_threshold(8)
        .build();
    let report = run(
        &config,
        Box::new(ReservedCapacity::aggressive(config.op_capacity())),
        BenchmarkKind::Ycsb,
        30,
        7,
    );
    // The run completes and the wear spread stays within a sane band.
    assert!(report.ops > 1_000);
    assert!(report.wear.max >= report.wear.min);
}

#[test]
fn latency_tail_reflects_fgc() {
    // Without background GC, the latency tail must contain foreground-GC
    // stalls that the mean does not show.
    let config = SystemConfig::small_for_tests();
    let mut cfg = config.clone();
    cfg.prefill = true;
    let report = run(&cfg, Box::new(NoBgc), BenchmarkKind::TpcC, 30, 13);
    assert!(report.fgc_request_stalls > 0, "No-BGC must stall");
    assert!(
        report.latency_max_us > report.latency_p50_us * 10,
        "max {}µs should dwarf the median {}µs",
        report.latency_max_us,
        report.latency_p50_us
    );
}
