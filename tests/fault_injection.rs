//! End-of-life integration tests: wear-dependent fault injection and
//! graceful degradation through the full engine (workload → cache → FTL →
//! NAND), plus the byte-identity guarantee that makes the fault model safe
//! to ship — with every fault knob at zero, nothing anywhere in the
//! pipeline changes.

use jitgc_repro::array::{ArrayConfig, ArraySched, GcMode, Redundancy};
use jitgc_repro::core::policy::{GcPolicy, JitGc, NoBgc};
use jitgc_repro::core::system::{SimReport, SsdSystem, SystemConfig};
use jitgc_repro::nand::FaultConfig;
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, Workload, WorkloadConfig};

fn workload_for(config: &SystemConfig, secs: u64, seed: u64) -> Box<dyn Workload> {
    let wl = WorkloadConfig::builder()
        .working_set_pages(config.ftl.user_pages() - config.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(secs))
        .mean_iops(800.0)
        .burst_mean(256.0)
        .seed(seed)
        .build();
    BenchmarkKind::Ycsb.build(wl)
}

fn jit(config: &SystemConfig) -> Box<dyn GcPolicy> {
    Box::new(JitGc::from_system_config(config))
}

fn run(config: &SystemConfig, secs: u64, seed: u64) -> SimReport {
    SsdSystem::new(
        config.clone(),
        jit(config),
        workload_for(config, secs, seed),
    )
    .run()
}

/// A configuration whose fault model fires often enough to matter within a
/// short test run: low endurance, tiny wear scale, visible fault rates.
fn faulty_config() -> SystemConfig {
    let mut config = SystemConfig::small_for_tests();
    config.ftl = config
        .ftl
        .to_builder()
        .endurance_limit(60)
        .fault(FaultConfig {
            seed: 9,
            program_rate: 0.05,
            erase_rate: 0.05,
            read_rate: 0.02,
            wear_scale: 40,
        })
        .build();
    config
}

/// The tentpole's safety guarantee: installing a fault model with every
/// rate at zero changes *nothing* — the serialized report is
/// byte-identical to a run without any fault configuration, for both the
/// standalone engine and a mirrored array.
#[test]
fn zero_rate_fault_model_is_byte_identical_to_none() {
    let base = SystemConfig::small_for_tests();
    let mut zeroed = base.clone();
    zeroed.ftl = zeroed
        .ftl
        .to_builder()
        .fault(FaultConfig::default())
        .build();
    assert!(
        !FaultConfig::default().is_active(),
        "default fault config must be inert"
    );

    let plain = run(&base, 15, 21).to_json().to_pretty();
    let inert = run(&zeroed, 15, 21).to_json().to_pretty();
    assert_eq!(plain, inert, "zero-rate fault model changed the report");

    let array_of = |system: &SystemConfig| {
        ArrayConfig {
            members: 2,
            chunk_pages: 16,
            redundancy: Redundancy::Mirror,
            gc_mode: GcMode::Staggered,
            sched: ArraySched::Steal,
            member_threads: 1,
            system: system.clone(),
        }
        .build(jit, workload_for(system, 15, 21))
        .run()
        .to_json()
        .to_pretty()
    };
    assert_eq!(
        array_of(&base),
        array_of(&zeroed),
        "zero-rate fault model changed the array report"
    );
}

/// Satellite: a device with a tiny endurance budget must run all the way
/// to read-only mode through the full engine — no panic, no hang — and
/// report when it died and how much host data it accepted first.
#[test]
fn tiny_endurance_device_degrades_to_read_only_gracefully() {
    let mut config = SystemConfig::small_for_tests();
    config.ftl = config.ftl.to_builder().endurance_limit(2).build();

    let report = run(&config, 120, 3);
    let degraded = report
        .degraded
        .as_ref()
        .expect("an endurance-2 device must degrade within the run");
    assert!(degraded.read_only, "device should have gone read-only");
    assert!(degraded.retired_blocks > 0, "EOL without any retirement");
    let at = degraded
        .read_only_at_secs
        .expect("read-only must be timestamped");
    assert!(at <= report.duration_secs);
    let lifetime = degraded
        .lifetime_host_bytes
        .expect("read-only must fix the lifetime metric");
    assert!(lifetime > 0, "device accepted no host data before dying");
    // `host_pages_written` only grows after the read-only observation, so
    // the lifetime is bounded by the final count (both exclude prefill).
    let page = config.ftl.geometry().page_size().as_u64();
    assert!(lifetime <= report.host_pages_written * page);
    // The timeline ends with the read-only transition, exactly once.
    let read_only_events = degraded
        .events
        .iter()
        .filter(|e| e.kind == "read_only")
        .count();
    assert_eq!(read_only_events, 1, "read-only must be recorded once");
    assert_eq!(
        degraded.events.last().map(|e| e.kind.as_str()),
        Some("read_only"),
        "nothing degrades further after read-only"
    );
}

/// Same fault seed ⇒ same failure timeline, lifetime, and report — run to
/// run and across sweep worker-thread counts.
#[test]
fn fault_timeline_is_deterministic() {
    let config = faulty_config();
    let first = run(&config, 30, 7);
    let second = run(&config, 30, 7);
    assert!(
        first.degraded.is_some(),
        "fault rates were too low to exercise anything"
    );
    assert_eq!(
        first.to_json().to_pretty(),
        second.to_json().to_pretty(),
        "same fault seed produced different failure timelines"
    );

    let cells = [11u64, 12, 13, 14];
    let cell = |&seed: &u64| run(&config, 20, seed);
    let serial = jitgc_bench::run_grid(&cells, 1, cell);
    let threaded = jitgc_bench::run_grid(&cells, 4, cell);
    assert_eq!(serial, threaded, "thread count changed fault outcomes");

    // A different fault seed must actually change the outcome, otherwise
    // the determinism assertions above are vacuous.
    let mut reseeded = config.clone();
    let fault = FaultConfig {
        seed: 1_000,
        ..*config
            .ftl
            .fault()
            .expect("faulty_config sets a fault model")
    };
    reseeded.ftl = reseeded.ftl.to_builder().fault(fault).build();
    assert_ne!(
        run(&reseeded, 30, 7).to_json().to_pretty(),
        first.to_json().to_pretty(),
        "fault seed had no effect"
    );
}

/// Satellite: aging pre-fill is setup, not measurement — its programs and
/// erases must not leak into the reported wear or lifetime numbers.
#[test]
fn prefill_phase_is_excluded_from_wear_and_lifetime_reporting() {
    let mut config = SystemConfig::small_for_tests();
    config.prefill = true;
    let wl = WorkloadConfig::builder()
        .working_set_pages(config.ftl.user_pages() - config.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(1))
        .mean_iops(50.0)
        .seed(2)
        .build();
    let report = SsdSystem::new(
        config.clone(),
        Box::new(NoBgc),
        BenchmarkKind::Ycsb.build(wl),
    )
    .run();

    // Prefill wrote the whole working set (~1 900 pages); a 1-second
    // 50-IOPS run cannot legitimately program even a tenth of that.
    let ws = config.ftl.user_pages() - config.ftl.op_pages() / 2;
    assert!(
        report.nand_pages_programmed < ws / 10,
        "prefill programs leaked into the report: {} pages",
        report.nand_pages_programmed
    );
    assert!(report.host_pages_written < ws / 10);
    assert!(
        report.degraded.is_none(),
        "a fault-free prefill must not produce a degraded section"
    );
}

/// A 1-member array preserves the member's configured fault seed, so even
/// a *faulty* standalone run is byte-identical to its 1-member array
/// counterpart (the root `array_smoke` pins the fault-free case).
#[test]
fn one_member_array_preserves_the_fault_stream() {
    let config = faulty_config();
    let single = run(&config, 20, 5).to_json().to_pretty();
    let array = ArrayConfig {
        members: 1,
        chunk_pages: 16,
        redundancy: Redundancy::None,
        gc_mode: GcMode::Staggered,
        sched: ArraySched::Steal,
        member_threads: 1,
        system: config.clone(),
    }
    .build(jit, workload_for(&config, 20, 5))
    .run();
    assert_eq!(
        array.member_reports[0].to_json().to_pretty(),
        single,
        "1-member array diverged from the standalone engine under faults"
    );
}

/// Mirrored arrays keep serving reads that fail on one replica: the
/// scheduler re-reads the surviving copy and accounts the page as
/// recovered, not lost.
#[test]
fn mirror_recovers_uncorrectable_reads_from_the_surviving_replica() {
    // Read-fault-only configuration: the page cache absorbs ~95 % of
    // reads, so the rate has to be high for misses to fail visibly, and
    // endurance stays unlimited so wear (and with it the fault
    // probability) keeps growing for the whole run.
    let mut config = SystemConfig::small_for_tests();
    config.ftl = config
        .ftl
        .to_builder()
        .fault(FaultConfig {
            seed: 9,
            program_rate: 0.0,
            erase_rate: 0.0,
            read_rate: 0.3,
            wear_scale: 20,
        })
        .build();
    let report = ArrayConfig {
        members: 2,
        chunk_pages: 16,
        redundancy: Redundancy::Mirror,
        gc_mode: GcMode::Staggered,
        sched: ArraySched::Steal,
        member_threads: 1,
        system: config.clone(),
    }
    .build(jit, workload_for(&config, 40, 13))
    .run();
    let degraded = report
        .degraded
        .expect("fault rates were too low to exercise the array");
    assert!(
        degraded.recovered_pages > 0,
        "no read was ever repaired from the mirror"
    );
    // Repairs must dominate: both replicas failing the same page needs two
    // independent low-probability faults.
    assert!(
        degraded.recovered_pages > degraded.lost_pages,
        "mirror lost more pages ({}) than it recovered ({})",
        degraded.lost_pages,
        degraded.recovered_pages
    );
}
