//! Cross-validation of the analytical mean-field model (`jitgc-model`)
//! against the full-system simulator, across all six benchmark workloads.
//!
//! The model assumes FIFO-cycle block cleaning in steady state, so the
//! apples-to-apples control is a long (`1800 s`) run with the FIFO victim
//! selector and foreground-only GC (No-BGC): no background policy, no
//! predictor, no SIP — just the mean-field write/clean cycle the model
//! solves in closed form. Under that control the model lands within
//! ±10 % of the simulator on four of the six workloads; the two misses
//! (Bonnie++, Tiobench) are the write-once-data failure mode documented
//! below and in `EXPERIMENTS.md`.
//!
//! Numbers here are deterministic (fixed seed, serial engine), so the
//! bands are generous only to tolerate benign re-tuning of the defaults,
//! not run-to-run noise.

use jitgc_repro::core::policy::NoBgc;
use jitgc_repro::core::system::{SsdSystem, SystemConfig, VictimKind};
use jitgc_repro::model::{predict, PolicyModel, WorkloadSpec};
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

const MEAN_IOPS: f64 = 250.0;
const BURST_MEAN: f64 = 1_024.0;

/// Simulated steady-state WAF for one benchmark under the model's control
/// conditions (No-BGC, FIFO victim, aged device, 1800 s).
fn simulated_waf(system: &SystemConfig, benchmark: BenchmarkKind) -> f64 {
    let wl = WorkloadConfig::builder()
        .working_set_pages(system.ftl.user_pages() - system.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(1_800))
        .mean_iops(MEAN_IOPS)
        .burst_mean(BURST_MEAN)
        .seed(42)
        .build();
    let report = SsdSystem::new(system.clone(), Box::new(NoBgc), benchmark.build(wl)).run();
    report.waf.expect("host writes happened")
}

fn model_waf(system: &SystemConfig, benchmark: BenchmarkKind) -> f64 {
    let spec = WorkloadSpec::for_system(system, MEAN_IOPS, BURST_MEAN);
    let prediction = predict(system, PolicyModel::NoBgc, benchmark, &spec);
    assert!(
        prediction.feasible,
        "{benchmark}: control cell must be feasible"
    );
    prediction.waf
}

fn control_system() -> SystemConfig {
    let mut system = SystemConfig::default_sim();
    system.victim = VictimKind::Fifo;
    system.prefill = true;
    system
}

/// Relative model error, signed: `(model − sim) / sim`.
fn rel_err(model: f64, sim: f64) -> f64 {
    (model - sim) / sim
}

#[test]
fn model_matches_simulator_on_at_least_four_of_six_workloads() {
    let system = control_system();
    let mut within = 0usize;
    let mut rows = String::new();
    for benchmark in BenchmarkKind::all() {
        let m = model_waf(&system, benchmark);
        let s = simulated_waf(&system, benchmark);
        let e = rel_err(m, s);
        rows.push_str(&format!(
            "{benchmark}: model {m:.3} sim {s:.3} err {:+.1}%\n",
            e * 100.0
        ));
        if e.abs() <= 0.10 {
            within += 1;
        }
    }
    assert!(
        within >= 4,
        "model within ±10% on only {within}/6 workloads:\n{rows}"
    );
}

/// Per-workload bands around the measured operating point. The four
/// validated workloads get tight two-sided bands; the two documented
/// misses get one-sided bands asserting the *direction* and rough
/// magnitude of the known failure mode, so a silent model regression
/// (or accidental fix) still trips a test.
#[test]
fn per_workload_error_bands() {
    let system = control_system();
    let check = |benchmark: BenchmarkKind, lo: f64, hi: f64| {
        let m = model_waf(&system, benchmark);
        let s = simulated_waf(&system, benchmark);
        let e = rel_err(m, s);
        assert!(
            (lo..=hi).contains(&e),
            "{benchmark}: model {m:.3} vs sim {s:.3}, err {:+.1}% outside [{:+.0}%, {:+.0}%]",
            e * 100.0,
            lo * 100.0,
            hi * 100.0
        );
    };
    // Validated: measured +9.1%, -2.7%, +5.9%, +1.0% (2026-08 defaults).
    check(BenchmarkKind::Ycsb, -0.05, 0.15);
    check(BenchmarkKind::Postmark, -0.10, 0.10);
    check(BenchmarkKind::Filebench, -0.05, 0.15);
    check(BenchmarkKind::TpcC, -0.10, 0.10);
    // Documented misses: both benchmarks carry a large write-once slice
    // (sequential files written and never overwritten). The mean-field
    // model treats overwrites as a stationary process, so write-once
    // pages look immortal-then-dead and the model under-predicts the
    // migration cost FIFO cleaning pays when it wraps into them.
    // Measured -24.7% (Tiobench) and -56.5% (Bonnie++).
    check(BenchmarkKind::Tiobench, -0.40, -0.10);
    check(BenchmarkKind::Bonnie, -0.70, -0.40);
}

/// Under the *greedy* victim selector (the simulator default) the
/// write-once failure mode disappears: greedy never picks an all-valid
/// block, so Bonnie++'s sim WAF collapses to ~1 and matches the model
/// again. This pins the Bonnie++ miss on victim selection, not on the
/// model's utilization accounting.
#[test]
fn bonnie_miss_is_a_victim_selector_artifact() {
    let mut system = control_system();
    system.victim = VictimKind::Greedy;
    let m = model_waf(&system, BenchmarkKind::Bonnie);
    let s = simulated_waf(&system, BenchmarkKind::Bonnie);
    let e = rel_err(m, s);
    assert!(
        e.abs() <= 0.10,
        "Bonnie++/greedy: model {m:.3} vs sim {s:.3}, err {:+.1}% — expected within ±10%",
        e * 100.0
    );
}
