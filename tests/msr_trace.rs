//! End-to-end: an MSR-Cambridge-format block trace through the full stack.

use jitgc_repro::core::policy::JitGc;
use jitgc_repro::core::system::{SsdSystem, SystemConfig};
use jitgc_repro::sim::SimRng;
use jitgc_repro::workload::{parse_msr_trace, TraceWorkload, Workload};

/// Builds a synthetic MSR-format CSV: 20k random 4–16 KiB requests over a
/// 64 MiB extent, 60 % writes, ~1 ms apart.
fn synthetic_msr_csv() -> String {
    let mut rng = SimRng::seed(123);
    let mut out = String::new();
    let mut ticks: u64 = 128_166_372_000_000_000;
    for _ in 0..20_000 {
        ticks += 5_000 + rng.range_u64(0, 15_000); // 0.5–2 ms in 100 ns ticks
        let kind = if rng.chance(0.6) { "Write" } else { "Read" };
        let offset = rng.range_u64(0, 16_384) * 4_096;
        let size = (1 + rng.range_u64(0, 4)) * 4_096;
        out.push_str(&format!("{ticks},host,0,{kind},{offset},{size},100\n"));
    }
    out
}

#[test]
fn msr_trace_runs_through_the_full_stack() {
    let csv = synthetic_msr_csv();
    let records = parse_msr_trace(&csv, 4_096).expect("well-formed CSV");
    assert_eq!(records.len(), 20_000);

    let mut config = SystemConfig::small_for_tests();
    config.prefill = true;
    let workload = TraceWorkload::new("msr-synthetic", records).with_working_set(16_384 + 8);
    // The small test device has only 2 048 user pages; rebuild the FTL to
    // cover the trace's address space.
    config.ftl = jitgc_repro::ftl::FtlConfig::builder()
        .user_pages(workload.working_set_pages() + 512)
        .op_permille(70)
        .pages_per_block(64)
        .gc_reserve_blocks(2)
        .build();

    let policy = JitGc::from_system_config(&config);
    let report = SsdSystem::new(config, Box::new(policy), Box::new(workload)).run();
    assert_eq!(report.ops, 20_000);
    assert_eq!(report.buffered_writes, 0, "block traces are all direct");
    assert!(report.direct_writes > 10_000);
    assert!(report.waf.expect("host writes happened") >= 1.0);
    assert!(report.iops > 0.0);
}

#[test]
fn msr_replay_is_deterministic() {
    let csv = synthetic_msr_csv();
    let run = || {
        let records = parse_msr_trace(&csv, 4_096).expect("well-formed CSV");
        let mut config = SystemConfig::small_for_tests();
        config.ftl = jitgc_repro::ftl::FtlConfig::builder()
            .user_pages(17_000)
            .op_permille(70)
            .pages_per_block(64)
            .gc_reserve_blocks(2)
            .build();
        let workload = TraceWorkload::new("msr", records);
        let policy = JitGc::from_system_config(&config);
        SsdSystem::new(config, Box::new(policy), Box::new(workload)).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.waf.expect("host writes happened"),
        b.waf.expect("host writes happened")
    );
    assert_eq!(a.nand_erases, b.nand_erases);
    assert_eq!(a.latency_p99_us, b.latency_p99_us);
}
