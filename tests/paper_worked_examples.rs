//! The paper's three illustrative worked examples (Figs. 4, 5, 6),
//! exercised end-to-end through the public API. These are the strongest
//! fidelity checks in the repository: the paper gives exact intermediate
//! numbers, and the implementation must hit them all.

use jitgc_repro::core::manager::JitGcManager;
use jitgc_repro::core::predictor::{BufferedWritePredictor, DirectWritePredictor};
use jitgc_repro::nand::Lpn;
use jitgc_repro::pagecache::{PageCache, PageCacheConfig};
use jitgc_repro::sim::{ByteSize, SimDuration, SimTime};

const MIB: u64 = 1024 * 1024;
const MB: u64 = 1_000_000;

/// Paper Fig. 4: the buffered-write demand sequences at t = 5, 10, 20 s
/// for the write pattern A(20 MB)@1s, B(20 MB)@3s, C(20 MB)@6s, B′@8s,
/// D(200 MB)@16s with p = 5 s and τ_expire = 30 s.
#[test]
fn paper_fig4_buffered_demand() {
    let predictor = BufferedWritePredictor::new(
        SimDuration::from_secs(5),
        SimDuration::from_secs(30),
        ByteSize::mib(1),
    );
    let mut cache = PageCache::new(
        PageCacheConfig::builder()
            .capacity_pages(100_000)
            .tau_expire(SimDuration::from_secs(30))
            .tau_flush_permille(1_000)
            .build(),
    );
    let write = |cache: &mut PageCache, base: u64, mib: u64, at: u64| {
        for i in 0..mib {
            cache.write(Lpn(base + i), SimTime::from_secs(at));
        }
    };

    write(&mut cache, 0, 20, 1); // A
    write(&mut cache, 1_000, 20, 3); // B
    let (d5, _) = predictor.predict(&cache, SimTime::from_secs(5));
    assert_eq!(d5.as_slice(), &[0, 0, 0, 0, 0, 40 * MIB], "D_buf(5)");

    write(&mut cache, 2_000, 20, 6); // C
    write(&mut cache, 1_000, 20, 8); // B′ resets B's age
    let (d10, _) = predictor.predict(&cache, SimTime::from_secs(10));
    assert_eq!(
        d10.as_slice(),
        &[0, 0, 0, 0, 20 * MIB, 40 * MIB],
        "D_buf(10)"
    );

    write(&mut cache, 3_000, 200, 16); // D
    let (d20, sip) = predictor.predict(&cache, SimTime::from_secs(20));
    assert_eq!(
        d20.as_slice(),
        &[0, 0, 20 * MIB, 40 * MIB, 0, 200 * MIB],
        "D_buf(20)"
    );
    // The SIP list carries every dirty page: A, B′, C, D.
    assert_eq!(sip.len(), (20 + 20 + 20 + 200) as usize);
}

/// Paper Fig. 5: the CDH over past windows of 10, 20, 20, 20, 80 MB
/// reserves 20 MB at the 80th percentile.
#[test]
fn paper_fig5_cdh_reservation() {
    let mut predictor = DirectWritePredictor::new(
        SimDuration::from_secs(5),
        SimDuration::from_secs(30),
        0.8,
        10 * MIB,
    );
    for window_mib in [10u64, 20, 20, 20, 80] {
        predictor.observe_window_total(window_mib * MIB);
    }
    let demand = predictor.predict();
    // δ_dir = 20 MB spread evenly over N_wb = 6 intervals.
    assert_eq!(demand.interval(), 20 * MIB / 6);
    assert_eq!(demand.horizon(), 6);
}

/// Paper Fig. 6: the manager's decisions at t = 10 (skip: T_idle 27.75 s >
/// T_gc 4 s) and t = 20 (reclaim 12.5 MB: T_idle 22.75 s < T_gc 24 s),
/// with C_free = 50 MB, B_w = 40 MB/s, B_gc = 10 MB/s.
#[test]
fn paper_fig6_manager_decisions() {
    let manager = JitGcManager::new(SimDuration::from_secs(30), 40e6, 10e6);

    let d_buf_10 = [0, 0, 0, 0, 20 * MB, 40 * MB];
    let d_dir = [5 * MB; 6];
    let at_10 = manager.decide(&d_buf_10, &d_dir, ByteSize::bytes(50 * MB));
    assert_eq!(at_10.c_req, ByteSize::bytes(90 * MB));
    assert_eq!(at_10.t_idle, SimDuration::from_millis(27_750));
    assert_eq!(at_10.t_gc, SimDuration::from_secs(4));
    assert!(at_10.can_wait(), "Fig. 6(a): no BGC during [10, 15]");

    let d_buf_20 = [0, 0, 20 * MB, 40 * MB, 0, 200 * MB];
    let at_20 = manager.decide(&d_buf_20, &d_dir, ByteSize::bytes(50 * MB));
    assert_eq!(at_20.c_req, ByteSize::bytes(290 * MB));
    assert_eq!(at_20.t_idle, SimDuration::from_millis(22_750));
    assert_eq!(at_20.t_gc, SimDuration::from_secs(24));
    assert_eq!(
        at_20.reclaim,
        ByteSize::bytes(12_500_000),
        "Fig. 6(b): D_reclaim = 12.5 MB"
    );
}
