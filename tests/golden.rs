//! Golden-range regression tests: the headline metrics of the standard
//! experiment, pinned to generous bands. Exact values are asserted
//! deterministic elsewhere; these bands catch *semantic* drift (a broken
//! predictor, a mis-wired policy) while tolerating benign re-tuning.

use jitgc_repro::core::policy::{GcPolicy, JitGc, ReservedCapacity};
use jitgc_repro::core::system::{SimReport, SsdSystem, SystemConfig};
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

fn standard_run(policy: Box<dyn GcPolicy>, kind: BenchmarkKind) -> SimReport {
    let config = {
        let mut c = SystemConfig::default_sim();
        c.prefill = true;
        c
    };
    let wl = WorkloadConfig::builder()
        .working_set_pages(config.ftl.user_pages() - config.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(300))
        .mean_iops(250.0)
        .burst_mean(1_024.0)
        .seed(42)
        .build();
    SsdSystem::new(config, policy, kind.build(wl)).run()
}

fn assert_band(what: &str, value: f64, lo: f64, hi: f64) {
    assert!(
        (lo..=hi).contains(&value),
        "{what} = {value:.3} outside golden band [{lo}, {hi}]"
    );
}

#[test]
fn golden_ycsb_jit() {
    let config = SystemConfig::default_sim();
    let r = standard_run(
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Ycsb,
    );
    assert_band(
        "YCSB/JIT WAF",
        r.waf.expect("host writes happened"),
        4.0,
        7.0,
    );
    assert_band("YCSB/JIT IOPS", r.iops, 200.0, 280.0);
    assert_band(
        "YCSB/JIT accuracy",
        r.prediction_accuracy_percent.expect("JIT predicts"),
        25.0,
        55.0,
    );
    let sip = r.sip_filtered_fraction.expect("SIP installed") * 100.0;
    assert_band("YCSB/JIT SIP %", sip, 4.0, 25.0);
}

#[test]
fn golden_ycsb_aggressive_waf_band() {
    let config = SystemConfig::default_sim();
    let r = standard_run(
        Box::new(ReservedCapacity::aggressive(config.op_capacity())),
        BenchmarkKind::Ycsb,
    );
    assert_band(
        "YCSB/A-BGC WAF",
        r.waf.expect("host writes happened"),
        10.0,
        22.0,
    );
}

#[test]
fn golden_tpcc_lazy_stalls_band() {
    let config = SystemConfig::default_sim();
    let lazy = standard_run(
        Box::new(ReservedCapacity::lazy(config.op_capacity())),
        BenchmarkKind::TpcC,
    );
    assert_band(
        "TPC-C/L-BGC stall count",
        lazy.fgc_request_stalls as f64,
        100.0,
        800.0,
    );
    assert_band(
        "TPC-C/L-BGC WAF",
        lazy.waf.expect("host writes happened"),
        3.5,
        7.0,
    );
}

#[test]
fn golden_bonnie_waf_near_one() {
    // Bonnie++'s sequential sweeps are the FTL's best case.
    let config = SystemConfig::default_sim();
    let r = standard_run(
        Box::new(ReservedCapacity::lazy(config.op_capacity())),
        BenchmarkKind::Bonnie,
    );
    assert_band(
        "Bonnie/L-BGC WAF",
        r.waf.expect("host writes happened"),
        1.0,
        1.5,
    );
}
