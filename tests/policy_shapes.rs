//! The paper's qualitative results, asserted as integration tests at a
//! reduced scale: these are the shapes DESIGN.md commits to reproducing.
//! The full-scale numbers live in the bench targets; here each claim is
//! checked with comfortable margins so the suite stays fast and stable.

use jitgc_repro::core::policy::{AdpGc, GcPolicy, JitGc, ReservedCapacity};
use jitgc_repro::core::system::{SimReport, SsdSystem, SystemConfig};
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

fn aged_config() -> SystemConfig {
    let mut config = SystemConfig::default_sim();
    config.prefill = true;
    config
}

fn run(config: &SystemConfig, policy: Box<dyn GcPolicy>, kind: BenchmarkKind) -> SimReport {
    let wl = WorkloadConfig::builder()
        .working_set_pages(config.ftl.user_pages() - config.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(120))
        .mean_iops(250.0)
        .burst_mean(1_024.0)
        .seed(42)
        .build();
    SsdSystem::new(config.clone(), policy, kind.build(wl)).run()
}

fn reserved(config: &SystemConfig, permille: u64) -> Box<dyn GcPolicy> {
    Box::new(ReservedCapacity::of_op_permille(
        config.op_capacity(),
        permille,
    ))
}

fn adp(config: &SystemConfig) -> Box<dyn GcPolicy> {
    let (bw, gc_bw) = config.default_bandwidths();
    Box::new(AdpGc::new(
        config.flusher_period,
        config.tau_expire(),
        config.cdh_percentile,
        config.cdh_bin_bytes,
        bw,
        gc_bw,
    ))
}

/// Fig. 2's tradeoff: a larger reserve buys fewer foreground stalls at the
/// price of more write amplification.
#[test]
fn fig2_shape_reserve_trades_stalls_for_waf() {
    let config = aged_config();
    let lazy = run(&config, reserved(&config, 500), BenchmarkKind::TpcC);
    let aggressive = run(&config, reserved(&config, 1_500), BenchmarkKind::TpcC);
    assert!(
        lazy.fgc_request_stalls > aggressive.fgc_request_stalls * 2,
        "lazy {} vs aggressive {} stalls",
        lazy.fgc_request_stalls,
        aggressive.fgc_request_stalls
    );
    assert!(
        aggressive.waf.expect("host writes happened")
            > lazy.waf.expect("host writes happened") * 1.3,
        "aggressive WAF {} vs lazy {}",
        aggressive.waf.expect("host writes happened"),
        lazy.waf.expect("host writes happened")
    );
    assert!(
        aggressive.iops >= lazy.iops,
        "aggressive IOPS {} vs lazy {}",
        aggressive.iops,
        lazy.iops
    );
}

/// Fig. 7(a)'s headline: JIT-GC's IOPS is close to A-BGC's.
#[test]
fn fig7_shape_jit_iops_near_aggressive() {
    let config = aged_config();
    let jit = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Ycsb,
    );
    let aggressive = run(&config, reserved(&config, 1_500), BenchmarkKind::Ycsb);
    assert!(
        jit.iops > aggressive.iops * 0.95,
        "JIT {} vs A-BGC {} IOPS",
        jit.iops,
        aggressive.iops
    );
}

/// Fig. 7(b)'s headline: JIT-GC's WAF stays near L-BGC's, far below
/// A-BGC's, for the update-heavy cache-predictable workload.
#[test]
fn fig7_shape_jit_waf_near_lazy() {
    let config = aged_config();
    let jit = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Ycsb,
    );
    let lazy = run(&config, reserved(&config, 500), BenchmarkKind::Ycsb);
    let aggressive = run(&config, reserved(&config, 1_500), BenchmarkKind::Ycsb);
    assert!(
        jit.waf.expect("host writes happened") < lazy.waf.expect("host writes happened") * 1.35,
        "JIT WAF {} should sit near L-BGC's {}",
        jit.waf.expect("host writes happened"),
        lazy.waf.expect("host writes happened")
    );
    assert!(
        jit.waf.expect("host writes happened")
            < aggressive.waf.expect("host writes happened") * 0.6,
        "JIT WAF {} should sit far below A-BGC's {}",
        jit.waf.expect("host writes happened"),
        aggressive.waf.expect("host writes happened")
    );
}

/// JIT-GC beats the cache-oblivious ADP-GC on WAF for buffered-heavy
/// workloads (the value of seeing inside the page cache).
#[test]
fn jit_beats_adp_on_waf_for_buffered_workloads() {
    let config = aged_config();
    let jit = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Ycsb,
    );
    let adp_report = run(&config, adp(&config), BenchmarkKind::Ycsb);
    assert!(
        jit.waf.expect("host writes happened") < adp_report.waf.expect("host writes happened"),
        "JIT WAF {} vs ADP WAF {}",
        jit.waf.expect("host writes happened"),
        adp_report.waf.expect("host writes happened")
    );
}

/// Table 2's ordering: JIT-GC's predictor is at least as accurate as
/// ADP-GC's, clearly better when buffered writes dominate.
#[test]
fn table2_shape_jit_predicts_better_for_buffered() {
    let config = aged_config();
    let jit = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Ycsb,
    );
    let adp_report = run(&config, adp(&config), BenchmarkKind::Ycsb);
    let jit_acc = jit.prediction_accuracy_percent.expect("JIT predicts");
    let adp_acc = adp_report
        .prediction_accuracy_percent
        .expect("ADP predicts");
    assert!(
        jit_acc > adp_acc,
        "JIT accuracy {jit_acc:.1}% vs ADP {adp_acc:.1}%"
    );
}

/// Table 3's ordering: SIP filtering matters for the update-heavy
/// buffered workload and vanishes for the all-direct one.
#[test]
fn table3_shape_sip_rate_follows_buffered_share() {
    let config = aged_config();
    let ycsb = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Ycsb,
    );
    let tpcc = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::TpcC,
    );
    let ycsb_sip = ycsb.sip_filtered_fraction.unwrap_or(0.0);
    let tpcc_sip = tpcc.sip_filtered_fraction.unwrap_or(0.0);
    assert!(
        ycsb_sip > 0.02,
        "YCSB should filter some victims, got {ycsb_sip}"
    );
    assert!(
        tpcc_sip < ycsb_sip,
        "TPC-C filtering {tpcc_sip} should be below YCSB's {ycsb_sip}"
    );
}

/// Determinism at the experiment level: identical configuration twice
/// yields bit-identical reports.
#[test]
fn experiments_are_reproducible() {
    let config = aged_config();
    let a = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Tiobench,
    );
    let b = run(
        &config,
        Box::new(JitGc::from_system_config(&config)),
        BenchmarkKind::Tiobench,
    );
    assert_eq!(a.ops, b.ops);
    assert_eq!(
        a.waf.expect("host writes happened"),
        b.waf.expect("host writes happened")
    );
    assert_eq!(a.nand_erases, b.nand_erases);
    assert_eq!(a.latency_p999_us, b.latency_p999_us);
    assert_eq!(a.prediction_accuracy_percent, b.prediction_accuracy_percent);
}
