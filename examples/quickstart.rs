//! Quickstart: simulate an SSD running YCSB under JIT-GC and print the
//! headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jitgc_repro::core::policy::JitGc;
use jitgc_repro::core::system::{SsdSystem, SystemConfig};
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

fn main() {
    // 1. Configure the system: a 96 MiB scale-model SSD with 7 % OP, a
    //    Linux-style page cache, and the default NAND timing.
    let system_config = SystemConfig::default_sim();

    // 2. Configure a workload: YCSB over most of the logical space.
    let workload_config = WorkloadConfig::builder()
        .working_set_pages(system_config.ftl.user_pages() - system_config.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(120))
        .mean_iops(250.0)
        .burst_mean(1_024.0)
        .seed(42)
        .build();
    let workload = BenchmarkKind::Ycsb.build(workload_config);

    // 3. Pick the GC policy — here the paper's JIT-GC.
    let policy = JitGc::from_system_config(&system_config);

    // 4. Run and report.
    let mut system = SsdSystem::new(system_config, Box::new(policy), workload);
    let report = system.run();

    println!("policy        : {}", report.policy);
    println!("workload      : {}", report.workload);
    println!("simulated time: {:.1} s", report.duration_secs);
    println!("requests      : {}", report.ops);
    println!("IOPS          : {:.0}", report.iops);
    println!(
        "WAF           : {:.3}",
        report.waf.expect("host writes happened")
    );
    println!("NAND erases   : {}", report.nand_erases);
    println!(
        "FGC stalls    : {} (requests) + {} (flush path)",
        report.fgc_request_stalls, report.fgc_flush_stalls
    );
    println!("BGC blocks    : {}", report.bgc_blocks);
    println!(
        "latency       : mean {} µs, p99 {} µs, max {} µs",
        report.latency_mean_us, report.latency_p99_us, report.latency_max_us
    );
    if let Some(acc) = report.prediction_accuracy_percent {
        println!("prediction    : {acc:.1} % accurate over the write-back horizon");
    }
    if let Some(sip) = report.sip_filtered_fraction {
        println!(
            "SIP filtering : redirected {:.1} % of victim selections",
            sip * 100.0
        );
    }
}
