//! Implementing a custom [`Workload`] — here a synthetic video-recorder
//! pattern (large sequential buffered writes with periodic direct index
//! updates) — and running it through the full stack.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use jitgc_repro::core::policy::JitGc;
use jitgc_repro::core::system::{SsdSystem, SystemConfig};
use jitgc_repro::nand::Lpn;
use jitgc_repro::sim::{SimDuration, SimRng};
use jitgc_repro::workload::{IoKind, IoRequest, Workload, WriteMix};

/// A security-camera recorder: a circular log of large sequential
/// buffered segments, with a small direct-written index page after each
/// segment and occasional playback reads.
struct VideoRecorder {
    working_set: u64,
    cursor: u64,
    segment_left: u32,
    emitted: u64,
    limit: u64,
    rng: SimRng,
}

impl VideoRecorder {
    const SEGMENT_PAGES: u32 = 32;
    const INDEX_REGION_PAGES: u64 = 64;

    fn new(working_set: u64, requests: u64, seed: u64) -> Self {
        VideoRecorder {
            working_set,
            cursor: Self::INDEX_REGION_PAGES,
            segment_left: 0,
            emitted: 0,
            limit: requests,
            rng: SimRng::seed(seed),
        }
    }
}

impl Workload for VideoRecorder {
    fn name(&self) -> &'static str {
        "VideoRecorder"
    }

    fn write_mix(&self) -> WriteMix {
        // One 1-page index write per 32-page segment + rare reads.
        WriteMix::new(32.0 / 33.0)
    }

    fn working_set_pages(&self) -> u64 {
        self.working_set
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        if self.emitted >= self.limit {
            return None;
        }
        self.emitted += 1;
        let gap = SimDuration::from_micros(self.rng.exp_micros(4_000.0));

        // Occasionally someone reviews old footage.
        if self.rng.chance(0.05) {
            let lpn = self
                .rng
                .range_u64(Self::INDEX_REGION_PAGES, self.working_set - 8);
            return Some(IoRequest {
                gap,
                kind: IoKind::Read,
                lpn: Lpn(lpn),
                pages: 8,
            });
        }

        if self.segment_left == 0 {
            // Segment finished: commit the index (direct, durable).
            self.segment_left = Self::SEGMENT_PAGES;
            let index = self.rng.range_u64(0, Self::INDEX_REGION_PAGES);
            return Some(IoRequest {
                gap,
                kind: IoKind::DirectWrite,
                lpn: Lpn(index),
                pages: 1,
            });
        }

        // Append 8 pages of footage to the circular log.
        let pages = 8u32.min(self.segment_left);
        self.segment_left -= pages;
        if self.cursor + u64::from(pages) > self.working_set {
            self.cursor = Self::INDEX_REGION_PAGES;
        }
        let lpn = self.cursor;
        self.cursor += u64::from(pages);
        Some(IoRequest {
            gap,
            kind: IoKind::BufferedWrite,
            lpn: Lpn(lpn),
            pages,
        })
    }
}

fn main() {
    let system_config = SystemConfig::default_sim();
    let working_set = system_config.ftl.user_pages() - system_config.ftl.op_pages() / 2;
    let workload = VideoRecorder::new(working_set, 60_000, 99);
    let policy = JitGc::from_system_config(&system_config);
    let report = SsdSystem::new(system_config, Box::new(policy), Box::new(workload)).run();

    println!("workload  : {}", report.workload);
    println!("requests  : {}", report.ops);
    println!("IOPS      : {:.0}", report.iops);
    println!(
        "WAF       : {:.3}",
        report.waf.expect("host writes happened")
    );
    println!(
        "FGC stalls: {}",
        report.fgc_request_stalls + report.fgc_flush_stalls
    );
    if let Some(acc) = report.prediction_accuracy_percent {
        println!("prediction: {acc:.1} %");
    }
    println!(
        "\nA circular sequential log is the FTL's best case: victims are \
         fully invalid by the time the log wraps, so WAF should sit near 1."
    );
}
