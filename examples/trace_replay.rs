//! Record a workload to a JSON-lines trace, replay it, and verify the
//! replayed run is bit-identical — the mechanism for substituting real
//! block traces for the synthetic generators.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use jitgc_repro::core::policy::JitGc;
use jitgc_repro::core::system::{SsdSystem, SystemConfig};
use jitgc_repro::sim::json::JsonValue;
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{
    record_trace, BenchmarkKind, TraceRecord, TraceWorkload, WorkloadConfig,
};
use std::io::{BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system_config = SystemConfig::default_sim();
    let workload_config = WorkloadConfig::builder()
        .working_set_pages(system_config.ftl.user_pages() - system_config.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(60))
        .mean_iops(250.0)
        .burst_mean(1_024.0)
        .seed(7)
        .build();

    // 1. Record a Postmark stream to JSON lines.
    let mut original = BenchmarkKind::Postmark.build(workload_config);
    let trace = record_trace(original.as_mut(), u64::MAX);
    let path = std::env::temp_dir().join("jitgc_postmark.trace.jsonl");
    {
        let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
        for record in &trace {
            file.write_all(record.to_json().to_compact().as_bytes())?;
            file.write_all(b"\n")?;
        }
    }
    println!("recorded {} requests to {}", trace.len(), path.display());

    // 2. Load it back.
    let file = std::io::BufReader::new(std::fs::File::open(&path)?);
    let loaded: Vec<TraceRecord> = file
        .lines()
        .map(|line| Ok(TraceRecord::from_json(&JsonValue::parse(&line?)?)?))
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    println!("loaded   {} requests", loaded.len());

    // 3. Run the generator-driven and the trace-driven simulations; they
    //    must agree exactly.
    let fresh = BenchmarkKind::Postmark.build(workload_config);
    let report_live = SsdSystem::new(
        system_config.clone(),
        Box::new(JitGc::from_system_config(&system_config)),
        fresh,
    )
    .run();
    let report_replay = SsdSystem::new(
        system_config.clone(),
        Box::new(JitGc::from_system_config(&system_config)),
        Box::new(
            TraceWorkload::new("Postmark (replayed)", loaded)
                .with_working_set(workload_config.working_set_pages()),
        ),
    )
    .run();

    println!(
        "live run  : {} ops, WAF {:.4}, {} erases",
        report_live.ops,
        report_live.waf.expect("host writes happened"),
        report_live.nand_erases
    );
    println!(
        "replay run: {} ops, WAF {:.4}, {} erases",
        report_replay.ops,
        report_replay.waf.expect("host writes happened"),
        report_replay.nand_erases
    );
    assert_eq!(report_live.ops, report_replay.ops);
    assert_eq!(
        report_live.waf.expect("host writes happened"),
        report_replay.waf.expect("host writes happened")
    );
    assert_eq!(report_live.nand_erases, report_replay.nand_erases);
    println!("replay is bit-identical ✓");
    std::fs::remove_file(&path)?;
    Ok(())
}
