//! Lifetime study: translate WAF into device endurance.
//!
//! The paper uses WAF as its lifetime proxy; this example goes one step
//! further and reports the wear picture directly — total erases, the
//! worst-worn block, and the projected time to the 3 000-cycle endurance
//! limit of 20 nm MLC flash — for a lazy, an aggressive, and the
//! just-in-time policy.
//!
//! ```sh
//! cargo run --release --example lifetime_study
//! ```

use jitgc_repro::core::policy::{GcPolicy, JitGc, ReservedCapacity};
use jitgc_repro::core::system::{SsdSystem, SystemConfig};
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

/// 20 nm MLC endurance in program/erase cycles.
const ENDURANCE_CYCLES: f64 = 3_000.0;

fn main() {
    let system_config = SystemConfig::default_sim();
    println!(
        "{:<10}{:>8}{:>12}{:>12}{:>12}{:>14}{:>20}",
        "policy", "WAF", "erases", "max wear", "wear σ", "IOPS", "projected life (h)"
    );
    for name in ["lazy", "aggressive", "jit"] {
        let policy: Box<dyn GcPolicy> = match name {
            "lazy" => Box::new(ReservedCapacity::lazy(system_config.op_capacity())),
            "aggressive" => Box::new(ReservedCapacity::aggressive(system_config.op_capacity())),
            _ => Box::new(JitGc::from_system_config(&system_config)),
        };
        let workload_config = WorkloadConfig::builder()
            .working_set_pages(system_config.ftl.user_pages() - system_config.ftl.op_pages() / 2)
            .duration(SimDuration::from_secs(300))
            .mean_iops(250.0)
            .burst_mean(1_024.0)
            .seed(11)
            .build();
        let workload = BenchmarkKind::Ycsb.build(workload_config);
        let report = SsdSystem::new(system_config.clone(), policy, workload).run();

        // The first block to reach the endurance limit kills the device;
        // project from the worst block's observed wear rate.
        let worst_rate_per_hour = report.wear.max as f64 / (report.duration_secs / 3_600.0);
        let projected_hours = if worst_rate_per_hour > 0.0 {
            ENDURANCE_CYCLES / worst_rate_per_hour
        } else {
            f64::INFINITY
        };
        println!(
            "{:<10}{:>8.3}{:>12}{:>12}{:>12.2}{:>14.0}{:>20.0}",
            report.policy,
            report.waf.expect("host writes happened"),
            report.nand_erases,
            report.wear.max,
            report.wear.std_dev,
            report.iops,
            projected_hours,
        );
    }
    println!(
        "\nThe just-in-time policy should approach the aggressive policy's \
         IOPS at a fraction of its wear — the paper's central claim."
    );
}
