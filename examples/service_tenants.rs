//! Multi-tenant isolation demo: a heavy writer degrades a
//! latency-sensitive reader's tail, and tiered backpressure plus JIT-GC
//! confine the damage to the tenant causing it.
//!
//! Runs the same three-tenant mix (one hot writer, one latency-sensitive
//! reader, one mixed tenant) through the queue-pair service under
//! {L-BGC, JIT-GC} × {backpressure on, off} and prints the reader's tail
//! latency next to the writer's shed/deferred counts for each cell.
//!
//! ```sh
//! cargo run --release --example service_tenants [seconds]
//! ```

use jitgc_repro::service::{run_closed_loop, PolicyChoice, ServiceConfig, ServiceReport};

fn cell(policy: PolicyChoice, backpressure: bool, seconds: u64) -> ServiceReport {
    let mut cfg = ServiceConfig::small_for_tests();
    cfg.seconds = seconds;
    cfg.backpressure = backpressure;
    run_closed_loop(&cfg, policy.build(&cfg.system))
}

fn main() {
    let seconds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!(
        "three tenants on one device: writer (w=1, 8 threads), \
         reader (w=4, 2 threads), mixed (w=2, 2 threads); {seconds}s"
    );
    println!(
        "{:<10}{:<14}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "policy",
        "backpressure",
        "rd p99 µs",
        "rd p999 µs",
        "wr shed",
        "wr defer",
        "device WAF",
        "red+blk s"
    );
    for policy in [PolicyChoice::Lbgc, PolicyChoice::Jit] {
        for backpressure in [false, true] {
            let report = cell(policy, backpressure, seconds);
            let reader = report.tenant("reader").expect("reader in roster");
            let writer = report.tenant("writer").expect("writer in roster");
            println!(
                "{:<10}{:<14}{:>12}{:>12}{:>12}{:>12}{:>12.3}{:>10.2}",
                report.device.policy,
                if backpressure { "on" } else { "off" },
                reader.latency_p99_us.unwrap_or(0),
                reader.latency_p999_us.unwrap_or(0),
                writer.shed,
                writer.deferred,
                report.device.waf.unwrap_or(f64::NAN),
                (report.tier.residency_us[2] + report.tier.residency_us[3]) as f64 / 1e6,
            );
        }
    }
    println!(
        "\nExpected shape: the reader's tail is worst under L-BGC with no \
         backpressure (the writer's bursts pile into foreground GC); JIT-GC \
         trims it, and enabling backpressure converts reader tail latency \
         into explicit writer sheds/deferrals."
    );
}
