//! Rack-scale array demo: 64 striped members, one of them a degraded
//! slow part, stepped by the deterministic work-stealing scheduler on
//! four worker threads.
//!
//! A striped request completes when its **slowest** sub-request does, so
//! one lagging device sets the whole volume's tail. The per-member
//! scheduler accounting in the array report pins that down: for every
//! logical request the scheduler records which member finished last
//! (`straggler_requests`), how much later than the runner-up it finished
//! (`straggler_time_us` — the member's *exclusive* tail contribution no
//! other device can hide), and whether that step ran foreground GC
//! (`straggler_fgc_requests`). The steal counts come from the scheduler
//! telemetry instead — they are wall-clock artifacts, deliberately kept
//! out of the deterministic report.
//!
//! ```sh
//! cargo run --release --example array_rack
//! ```

use jitgc_repro::array::{ArrayConfig, ArraySched, GcMode, Redundancy};
use jitgc_repro::core::policy::JitGc;
use jitgc_repro::core::system::SystemConfig;
use jitgc_repro::nand::NandTiming;
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

const MEMBERS: usize = 64;
const STRAGGLER: usize = 37;
const MEMBER_THREADS: usize = 4;

fn main() {
    let mut system = SystemConfig::small_for_tests();
    // Deep queue: long quanta give the worker threads real batches.
    system.queue_depth = 8;
    // Start from steady state: prefill each member's extent so GC is live.
    system.prefill = true;
    let per_member = system.ftl.user_pages() - system.ftl.op_pages() / 2;
    let workload = BenchmarkKind::Ycsb.build(
        WorkloadConfig::builder()
            .working_set_pages(per_member * MEMBERS as u64)
            .duration(SimDuration::from_secs(10))
            .mean_iops(400.0 * MEMBERS as f64)
            .burst_mean(128.0)
            .seed(42)
            .build(),
    );
    let config = ArrayConfig {
        members: MEMBERS,
        chunk_pages: 4,
        redundancy: Redundancy::None,
        gc_mode: GcMode::Staggered,
        sched: ArraySched::Steal,
        member_threads: MEMBER_THREADS,
        system,
    };
    // One member is a degraded part: slow dense flash with most of its
    // internal channels gone (2-way instead of 8-way striping) and
    // starved of over-provisioning (1.5 % instead of 7 %), so it programs
    // slowly AND garbage-collects far more often than its 63 healthy
    // neighbours. The host-visible capacity is untouched, so the stripe
    // map is none the wiser.
    let mut sim = config.build_with(
        |cfg| Box::new(JitGc::from_system_config(cfg)),
        workload,
        |device, system| {
            if device == STRAGGLER {
                system.ftl = system
                    .ftl
                    .to_builder()
                    .op_permille(15)
                    .timing(NandTiming::new(
                        SimDuration::from_micros(75),
                        SimDuration::from_micros(2_300),
                        SimDuration::from_micros(3_800),
                        SimDuration::from_micros(20),
                        2,
                    ))
                    .build();
            }
        },
    );
    let report = sim.run();
    let telemetry = sim.sched_telemetry();

    println!(
        "{} members, {} straggling, {} scheduler on {} threads",
        report.members,
        STRAGGLER,
        telemetry.sched.name(),
        telemetry.member_threads
    );
    println!(
        "volume latency  mean {} / p99 {} / p999 {} / max {} µs",
        report.latency_mean_us,
        report.latency_p99_us,
        report.latency_p999_us,
        report.latency_max_us
    );
    println!(
        "scheduler       {} epochs, {} steals (wall-clock artifact — varies run to run)",
        telemetry.epochs, telemetry.steals
    );

    let mut by_time: Vec<(usize, _)> = report.member_sched.iter().enumerate().collect();
    by_time.sort_by_key(|&(i, s)| (std::cmp::Reverse(s.straggler_time_us), i));
    println!("\ntop stragglers (exclusive tail contribution):");
    println!(
        "{:<8}{:>10}{:>12}{:>14}{:>16}{:>12}{:>12}",
        "member", "steps", "straggled", "of them FGC", "excl time µs", "lag p99", "lag max"
    );
    for &(i, s) in by_time.iter().take(5) {
        println!(
            "{:<8}{:>10}{:>12}{:>14}{:>16}{:>12}{:>12}{}",
            i,
            s.steps,
            s.straggler_requests,
            s.straggler_fgc_requests,
            s.straggler_time_us,
            s.lag_p99_us,
            s.lag_max_us,
            if i == STRAGGLER { "   <- degraded" } else { "" }
        );
    }
    println!(
        "\nThe degraded member should dominate the exclusive-tail column \
         by a wide margin, with foreground-GC episodes showing up in the \
         FGC column — tail latency attributed per device, from outside \
         the devices."
    );
}
