//! Compare the four BGC policies of the paper's Fig. 7 on one workload,
//! showing the performance/lifetime tradeoff JIT-GC resolves.
//!
//! ```sh
//! cargo run --release --example policy_comparison [ycsb|postmark|filebench|bonnie|tiobench|tpcc]
//! ```

use jitgc_repro::core::policy::{AdpGc, GcPolicy, JitGc, ReservedCapacity};
use jitgc_repro::core::system::{SsdSystem, SystemConfig};
use jitgc_repro::sim::SimDuration;
use jitgc_repro::workload::{BenchmarkKind, WorkloadConfig};

fn benchmark_from_arg() -> BenchmarkKind {
    match std::env::args().nth(1).as_deref() {
        Some("postmark") => BenchmarkKind::Postmark,
        Some("filebench") => BenchmarkKind::Filebench,
        Some("bonnie") => BenchmarkKind::Bonnie,
        Some("tiobench") => BenchmarkKind::Tiobench,
        Some("tpcc") => BenchmarkKind::TpcC,
        _ => BenchmarkKind::Ycsb,
    }
}

fn main() {
    let benchmark = benchmark_from_arg();
    let system_config = SystemConfig::default_sim();
    let (bw, gc_bw) = system_config.default_bandwidths();

    let policies: Vec<Box<dyn GcPolicy>> = vec![
        Box::new(ReservedCapacity::lazy(system_config.op_capacity())),
        Box::new(ReservedCapacity::aggressive(system_config.op_capacity())),
        Box::new(AdpGc::new(
            system_config.flusher_period,
            system_config.tau_expire(),
            system_config.cdh_percentile,
            system_config.cdh_bin_bytes,
            bw,
            gc_bw,
        )),
        Box::new(JitGc::from_system_config(&system_config)),
    ];

    println!("benchmark: {benchmark}");
    println!(
        "{:<10}{:>10}{:>10}{:>12}{:>12}{:>12}",
        "policy", "IOPS", "WAF", "FGC stalls", "BGC blocks", "p99 (µs)"
    );
    for policy in policies {
        let workload_config = WorkloadConfig::builder()
            .working_set_pages(system_config.ftl.user_pages() - system_config.ftl.op_pages() / 2)
            .duration(SimDuration::from_secs(300))
            .mean_iops(250.0)
            .burst_mean(1_024.0)
            .seed(42)
            .build();
        let workload = benchmark.build(workload_config);
        let report = SsdSystem::new(system_config.clone(), policy, workload).run();
        println!(
            "{:<10}{:>10.0}{:>10.3}{:>12}{:>12}{:>12}",
            report.policy,
            report.iops,
            report.waf.expect("host writes happened"),
            report.fgc_request_stalls + report.fgc_flush_stalls,
            report.bgc_blocks,
            report.latency_p99_us,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 7): JIT-GC matches A-BGC's IOPS while \
         keeping WAF near L-BGC's."
    );
}
