//! Facade crate re-exporting the whole JIT-GC reproduction workspace.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! can exercise the full public API through a single dependency. Library
//! users should depend on the individual crates directly:
//!
//! * [`sim`] — simulation kernel (time, events, RNG, statistics).
//! * [`nand`] — NAND flash device model.
//! * [`ftl`] — page-mapping flash translation layer with GC.
//! * [`pagecache`] — Linux-style write-back page cache model.
//! * [`workload`] — synthetic benchmark workload generators.
//! * [`core`] — the paper's contribution: predictors, the JIT-GC manager,
//!   BGC policies, and the full-system simulation engine.
//! * [`array`] — striped multi-SSD array layer with GC-aware routing.
//! * [`model`] — analytical mean-field WAF/lifetime model used to screen
//!   sweep configurations before simulating them.
//! * [`service`] — multi-tenant queue-pair frontend: per-tenant
//!   submission/completion queues, weighted fair queueing, and tiered
//!   backpressure over one engine.

#![forbid(unsafe_code)]

pub use jitgc_array as array;
pub use jitgc_core as core;
pub use jitgc_ftl as ftl;
pub use jitgc_model as model;
pub use jitgc_nand as nand;
pub use jitgc_pagecache as pagecache;
pub use jitgc_service as service;
pub use jitgc_sim as sim;
pub use jitgc_workload as workload;
