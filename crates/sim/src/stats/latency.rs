//! Log-bucketed latency recording with percentile queries.

use crate::SimDuration;

/// Number of linear sub-buckets per power-of-two major bucket. 16 gives
/// ≤ 6.25 % relative quantization error, ample for latency reporting.
const SUB_BUCKETS: usize = 16;
/// Major buckets cover values up to 2^63.
const MAJOR_BUCKETS: usize = 64;

/// Records request latencies and answers percentile queries in O(buckets).
///
/// Internally an HDR-style histogram: each power-of-two range is divided
/// into 16 linear sub-buckets, so memory is constant (64×16 counters)
/// regardless of sample count, and relative error is bounded by 1/16
/// (6.25 %).
///
/// The paper reports IOPS only; we additionally expose tail latency because
/// the foreground-GC stalls JIT-GC eliminates live in the tail.
///
/// # Example
///
/// ```
/// use jitgc_sim::{SimDuration, stats::LatencyRecorder};
///
/// let mut lat = LatencyRecorder::new();
/// for us in [100, 200, 300, 400, 10_000] {
///     lat.record(SimDuration::from_micros(us));
/// }
/// assert_eq!(lat.count(), 5);
/// let p50 = lat.percentile(0.50).expect("samples recorded");
/// assert!(p50.as_micros() >= 200 && p50.as_micros() <= 320);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LatencyRecorder {
    counts: Vec<u64>,
    total: u64,
    sum_micros: u128,
    max_micros: u64,
    min_micros: u64,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        LatencyRecorder {
            counts: vec![0; MAJOR_BUCKETS * SUB_BUCKETS],
            total: 0,
            sum_micros: 0,
            max_micros: 0,
            min_micros: u64::MAX,
        }
    }

    fn bucket_index(micros: u64) -> usize {
        if micros < SUB_BUCKETS as u64 {
            return micros as usize;
        }
        let major = 63 - micros.leading_zeros() as usize;
        // Position within the major bucket, scaled to SUB_BUCKETS slots.
        let offset = ((micros >> (major - 4)) & (SUB_BUCKETS as u64 - 1)) as usize;
        // Majors below log2(SUB_BUCKETS) are handled by the linear fast path.
        (major - 3) * SUB_BUCKETS + offset
    }

    /// The representative (upper-bound) value of a bucket, in microseconds.
    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let major = index / SUB_BUCKETS + 3;
        let offset = (index % SUB_BUCKETS) as u64;
        (1u64 << major) + ((offset + 1) << (major - 4)) - 1
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let us = latency.as_micros();
        let idx = Self::bucket_index(us).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_micros += u128::from(us);
        self.max_micros = self.max_micros.max(us);
        self.min_micros = self.min_micros.min(us);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` before the first sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency, or `None` before the first sample.
    #[must_use]
    pub fn mean(&self) -> Option<SimDuration> {
        if self.total == 0 {
            None
        } else {
            Some(SimDuration::from_micros(
                (self.sum_micros / u128::from(self.total)) as u64,
            ))
        }
    }

    /// Largest recorded sample (exact), or `None` before the first sample.
    #[must_use]
    pub fn max(&self) -> Option<SimDuration> {
        if self.total == 0 {
            None
        } else {
            Some(SimDuration::from_micros(self.max_micros))
        }
    }

    /// Smallest recorded sample (exact), or `None` before the first sample.
    #[must_use]
    pub fn min(&self) -> Option<SimDuration> {
        if self.total == 0 {
            None
        } else {
            Some(SimDuration::from_micros(self.min_micros))
        }
    }

    /// The latency at quantile `q` (clamped to `[0, 1]`), within the
    /// recorder's ≤ 6.25 % bucket quantization, or `None` before the first
    /// sample.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let needed = ((q * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= needed {
                return Some(SimDuration::from_micros(
                    Self::bucket_value(i).min(self.max_micros),
                ));
            }
        }
        Some(SimDuration::from_micros(self.max_micros))
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
        self.min_micros = self.min_micros.min(other.min_micros);
    }
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    #[test]
    fn empty_recorder() {
        let lat = LatencyRecorder::new();
        assert!(lat.is_empty());
        assert_eq!(lat.mean(), None);
        assert_eq!(lat.max(), None);
        assert_eq!(lat.min(), None);
        assert_eq!(lat.percentile(0.5), None);
    }

    #[test]
    fn exact_for_small_values() {
        let mut lat = LatencyRecorder::new();
        for v in 0..16 {
            lat.record(us(v));
        }
        assert_eq!(lat.min(), Some(us(0)));
        assert_eq!(lat.max(), Some(us(15)));
        assert_eq!(lat.percentile(0.0), Some(us(0)));
        assert_eq!(lat.percentile(1.0), Some(us(15)));
    }

    #[test]
    fn mean_is_exact() {
        let mut lat = LatencyRecorder::new();
        lat.record(us(100));
        lat.record(us(300));
        assert_eq!(lat.mean(), Some(us(200)));
    }

    #[test]
    fn percentile_error_is_bounded() {
        let mut lat = LatencyRecorder::new();
        // 1000 samples uniformly spread over [1000, 1_000_000).
        for i in 0..1000u64 {
            lat.record(us(1_000 + i * 999));
        }
        for &(q, expected) in &[(0.5, 500_500u64), (0.9, 900_100), (0.99, 990_010)] {
            let got = lat.percentile(q).expect("samples recorded").as_micros();
            let rel = (got as f64 - expected as f64).abs() / expected as f64;
            assert!(rel < 0.07, "q={q}: got {got}, expected ~{expected}");
        }
    }

    #[test]
    fn percentile_never_exceeds_max() {
        let mut lat = LatencyRecorder::new();
        lat.record(us(1_000_000));
        assert_eq!(lat.percentile(1.0), Some(us(1_000_000)));
        assert_eq!(lat.percentile(0.5), Some(us(1_000_000)));
    }

    #[test]
    fn bucket_round_trip_error() {
        for v in [1u64, 17, 100, 999, 12_345, 1 << 20, (1 << 40) + 12345] {
            let idx = LatencyRecorder::bucket_index(v);
            let rep = LatencyRecorder::bucket_value(idx);
            assert!(rep >= v, "representative {rep} below sample {v}");
            let rel = (rep - v) as f64 / v as f64;
            assert!(rel <= 0.0625 + 1e-9, "v={v} rep={rep} rel={rel}");
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(us(10));
        b.record(us(1_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(us(10)));
        assert_eq!(a.max(), Some(us(1_000)));
    }

    #[test]
    fn percentile_clamps_q() {
        let mut lat = LatencyRecorder::new();
        lat.record(us(5));
        assert_eq!(lat.percentile(-1.0), Some(us(5)));
        assert_eq!(lat.percentile(2.0), Some(us(5)));
    }
}
