//! Exponentially-weighted moving average.

/// An exponentially-weighted moving average of `f64` samples.
///
/// The JIT-GC manager needs running estimates of the host write bandwidth
/// `B_w` and the GC reclaim bandwidth `B_gc` (paper Sec. 3.3). An EWMA with
/// a moderate smoothing factor reacts to workload phase changes without
/// thrashing on single noisy intervals.
///
/// # Example
///
/// ```
/// use jitgc_sim::stats::Ewma;
///
/// let mut bw = Ewma::new(0.3);
/// bw.update(100.0);
/// bw.update(200.0);
/// let est = bw.value().expect("two samples recorded");
/// assert!(est > 100.0 && est < 200.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` — the weight given to
    /// each new sample (closer to 1 reacts faster).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "ewma smoothing factor must be in (0, 1], got {alpha}"
        );
        Ewma { alpha, value: None }
    }

    /// Folds in a new sample. The first sample initializes the average.
    pub fn update(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// The current average, or `None` before the first sample.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The current average, or `default` before the first sample.
    #[must_use]
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// The configured smoothing factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Discards all state, as if freshly constructed.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn smoothing_blends() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        e.update(100.0);
        assert_eq!(e.value(), Some(50.0));
        e.update(100.0);
        assert_eq!(e.value(), Some(75.0));
    }

    #[test]
    fn alpha_one_tracks_last_sample() {
        let mut e = Ewma::new(1.0);
        e.update(3.0);
        e.update(9.0);
        assert_eq!(e.value(), Some(9.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(42.0);
        }
        let v = e.value().expect("samples recorded");
        assert!((v - 42.0).abs() < 1e-9);
    }

    #[test]
    fn value_or_default() {
        let e = Ewma::new(0.3);
        assert_eq!(e.value_or(7.0), 7.0);
    }

    #[test]
    fn reset_clears() {
        let mut e = Ewma::new(0.3);
        e.update(5.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_alpha_panics() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn large_alpha_panics() {
        let _ = Ewma::new(1.5);
    }

    #[test]
    fn alpha_getter() {
        assert_eq!(Ewma::new(0.25).alpha(), 0.25);
    }
}
