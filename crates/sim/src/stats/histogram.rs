//! Fixed-bin-width frequency histogram.

/// A frequency histogram over `u64` samples with fixed-width bins.
///
/// Bin `i` covers the half-open range `(i·w, (i+1)·w]` for bin width `w`,
/// except bin 0 which also includes zero. This "upper-edge" convention
/// matches the paper's Fig. 5: a 10 MB observation falls in the bin labeled
/// "10 MB" when the bin width is 10 MB.
///
/// The histogram grows on demand; samples never saturate or clip.
///
/// # Example
///
/// ```
/// use jitgc_sim::stats::Histogram;
///
/// let mut h = Histogram::new(10);
/// for v in [10, 20, 20, 20, 80] {
///     h.record(v);
/// }
/// assert_eq!(h.bin_count(1), 1); // the 10 sample
/// assert_eq!(h.bin_count(2), 3); // the three 20 samples
/// assert_eq!(h.bin_count(8), 1); // the 80 sample
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    #[must_use]
    pub fn new(bin_width: u64) -> Self {
        assert!(bin_width > 0, "histogram bin width must be non-zero");
        Histogram {
            bin_width,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// The configured bin width.
    #[must_use]
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// The bin index that `value` falls into.
    #[must_use]
    pub fn bin_index(&self, value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((value - 1) / self.bin_width) as usize + 1
        }
    }

    /// The inclusive upper edge of bin `i` (`i·bin_width`).
    #[must_use]
    pub fn bin_upper_edge(&self, i: usize) -> u64 {
        i as u64 * self.bin_width
    }

    /// Adds one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self.bin_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Removes one previously recorded sample (for sliding windows).
    ///
    /// # Panics
    ///
    /// Panics if no sample is recorded in `value`'s bin — that indicates the
    /// caller's window bookkeeping is corrupted.
    pub fn unrecord(&mut self, value: u64) {
        let idx = self.bin_index(value);
        assert!(
            idx < self.counts.len() && self.counts[idx] > 0,
            "unrecord of value {value} with empty bin {idx}"
        );
        self.counts[idx] -= 1;
        self.total -= 1;
    }

    /// Count of samples in bin `i` (0 for bins beyond the populated range).
    #[must_use]
    pub fn bin_count(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` when no samples are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of allocated bins (the highest populated bin + 1).
    #[must_use]
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Iterates `(bin_upper_edge, count)` over all allocated bins.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.bin_upper_edge(i), c))
    }

    /// The smallest bin upper edge `v` such that at least `fraction` of all
    /// samples are ≤ `v`. Returns `None` when the histogram is empty.
    ///
    /// `fraction` is clamped to `[0, 1]`. This is the CDH lookup of the
    /// paper's Sec. 3.2.2: `quantile_upper_edge(0.8)` answers "how much
    /// space covers 80 % of past intervals".
    #[must_use]
    pub fn quantile_upper_edge(&self, fraction: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let fraction = fraction.clamp(0.0, 1.0);
        // Number of samples that must be covered; ceil so that e.g. 0.8 of
        // 5 samples needs 4 samples covered.
        let needed = (fraction * self.total as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= needed {
                return Some(self.bin_upper_edge(i));
            }
        }
        Some(self.bin_upper_edge(self.counts.len().saturating_sub(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_uses_upper_edge_convention() {
        let h = Histogram::new(10);
        assert_eq!(h.bin_index(0), 0);
        assert_eq!(h.bin_index(1), 1);
        assert_eq!(h.bin_index(10), 1);
        assert_eq!(h.bin_index(11), 2);
        assert_eq!(h.bin_index(20), 2);
        assert_eq!(h.bin_upper_edge(2), 20);
    }

    #[test]
    fn record_and_count() {
        let mut h = Histogram::new(10);
        h.record(5);
        h.record(10);
        h.record(15);
        assert_eq!(h.bin_count(1), 2);
        assert_eq!(h.bin_count(2), 1);
        assert_eq!(h.total(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn unrecord_reverses_record() {
        let mut h = Histogram::new(10);
        h.record(25);
        h.record(25);
        h.unrecord(25);
        assert_eq!(h.bin_count(3), 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    #[should_panic(expected = "empty bin")]
    fn unrecord_from_empty_bin_panics() {
        let mut h = Histogram::new(10);
        h.unrecord(25);
    }

    #[test]
    fn paper_fig5_quantile() {
        // Paper Fig. 5: 10, 20, 20, 20, 80 MB over five intervals; the CDH
        // at 20 MB is 0.8, so the 80th percentile reservation is 20 MB.
        let mut h = Histogram::new(10);
        for v in [10, 20, 20, 20, 80] {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_edge(0.8), Some(20));
        assert_eq!(h.quantile_upper_edge(0.81), Some(80));
        assert_eq!(h.quantile_upper_edge(1.0), Some(80));
        assert_eq!(h.quantile_upper_edge(0.2), Some(10));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        let h = Histogram::new(4);
        assert_eq!(h.quantile_upper_edge(0.5), None);
    }

    #[test]
    fn quantile_clamps_fraction() {
        let mut h = Histogram::new(10);
        h.record(10);
        assert_eq!(h.quantile_upper_edge(-3.0), Some(0));
        assert_eq!(h.quantile_upper_edge(7.0), Some(10));
    }

    #[test]
    fn zero_sample_lands_in_bin_zero() {
        let mut h = Histogram::new(10);
        h.record(0);
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.quantile_upper_edge(1.0), Some(0));
    }

    #[test]
    fn iter_yields_edges_and_counts() {
        let mut h = Histogram::new(5);
        h.record(3);
        h.record(8);
        let v: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(v, vec![(0, 0), (5, 1), (10, 1)]);
        assert_eq!(h.num_bins(), 3);
    }

    #[test]
    #[should_panic(expected = "bin width must be non-zero")]
    fn zero_bin_width_panics() {
        let _ = Histogram::new(0);
    }
}
