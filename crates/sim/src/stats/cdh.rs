//! The cumulative data histogram (CDH) of the paper's Sec. 3.2.2.

use super::Histogram;
use std::collections::VecDeque;

/// A sliding-window cumulative data histogram over per-interval traffic.
///
/// The paper's direct-write predictor "maintains a cumulative data histogram
/// (CDH) of past direct writes and uses this information to decide a
/// reserved free space for future direct writes". Each observation is the
/// number of bytes directly written during one `τ_expire`-second window;
/// [`Cdh::reserve_for`] answers "how many bytes must be reserved so that a
/// fraction `p` of past windows would have fit" — the paper uses `p = 0.8`.
///
/// The window is bounded (`window` most recent observations) so the
/// predictor adapts when the workload phase changes; an unbounded history
/// would anchor the reservation to stale behaviour.
///
/// # Example
///
/// Reproduces the paper's Fig. 5 numbers (bin width 10 MB):
///
/// ```
/// use jitgc_sim::stats::Cdh;
///
/// let mib = 1024 * 1024;
/// let mut cdh = Cdh::new(10 * mib, 64);
/// for observed in [10, 20, 20, 20, 80] {
///     cdh.observe(observed * mib);
/// }
/// assert_eq!(cdh.reserve_for(0.8), Some(20 * mib));
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cdh {
    histogram: Histogram,
    window: usize,
    recent: VecDeque<u64>,
}

impl Cdh {
    /// Creates a CDH with the given bin width (bytes) and sliding-window
    /// length (number of retained intervals).
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` or `window` is zero.
    #[must_use]
    pub fn new(bin_width: u64, window: usize) -> Self {
        assert!(window > 0, "cdh window must be non-empty");
        Cdh {
            histogram: Histogram::new(bin_width),
            window,
            recent: VecDeque::with_capacity(window),
        }
    }

    /// Records the traffic observed during one interval, evicting the oldest
    /// observation when the window is full.
    pub fn observe(&mut self, bytes: u64) {
        if self.recent.len() == self.window {
            let evicted = self
                .recent
                .pop_front()
                .expect("window is full, so non-empty");
            self.histogram.unrecord(evicted);
        }
        self.recent.push_back(bytes);
        self.histogram.record(bytes);
    }

    /// The reservation (bytes, rounded up to a bin edge) that would have
    /// covered at least `fraction` of the observed intervals, or `None`
    /// before any observation.
    #[must_use]
    pub fn reserve_for(&self, fraction: f64) -> Option<u64> {
        self.histogram.quantile_upper_edge(fraction)
    }

    /// Number of observations currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.recent.len()
    }

    /// `true` before the first observation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.recent.is_empty()
    }

    /// The most recent observation, if any.
    #[must_use]
    pub fn last_observation(&self) -> Option<u64> {
        self.recent.back().copied()
    }

    /// `true` when the sliding window is full and every retained
    /// observation equals `bytes`. In that state a further
    /// [`observe`](Self::observe)`(bytes)` is an exact no-op — it evicts
    /// one `bytes` entry and records another — which is what lets a
    /// quiescent simulation skip the call entirely. O(window) scan; no
    /// extra state is maintained for it.
    #[must_use]
    pub fn window_full_of(&self, bytes: u64) -> bool {
        self.recent.len() == self.window && self.recent.iter().all(|&b| b == bytes)
    }

    /// Read-only view of the underlying histogram (for reporting).
    #[must_use]
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: u64 = 1024 * 1024;

    #[test]
    fn paper_fig5_example() {
        let mut cdh = Cdh::new(10 * MIB, 16);
        for observed in [10, 20, 20, 20, 80] {
            cdh.observe(observed * MIB);
        }
        // "for 80% of the τ_expire-second intervals, less than 20 MB data
        // were written" → reserve 20 MB.
        assert_eq!(cdh.reserve_for(0.8), Some(20 * MIB));
        // Covering every interval needs the 80 MB outlier.
        assert_eq!(cdh.reserve_for(1.0), Some(80 * MIB));
    }

    #[test]
    fn empty_cdh_reserves_nothing() {
        let cdh = Cdh::new(MIB, 8);
        assert_eq!(cdh.reserve_for(0.8), None);
        assert!(cdh.is_empty());
        assert_eq!(cdh.last_observation(), None);
    }

    #[test]
    fn window_evicts_stale_observations() {
        let mut cdh = Cdh::new(10, 3);
        // A burst of large intervals...
        for _ in 0..3 {
            cdh.observe(100);
        }
        assert_eq!(cdh.reserve_for(0.8), Some(100));
        // ...followed by a quiet phase: after 3 quiet intervals the burst
        // has fully left the window.
        for _ in 0..3 {
            cdh.observe(10);
        }
        assert_eq!(cdh.reserve_for(0.8), Some(10));
        assert_eq!(cdh.len(), 3);
    }

    #[test]
    fn last_observation_tracks() {
        let mut cdh = Cdh::new(10, 4);
        cdh.observe(42);
        cdh.observe(7);
        assert_eq!(cdh.last_observation(), Some(7));
        assert_eq!(cdh.len(), 2);
    }

    #[test]
    fn zero_traffic_intervals_are_valid() {
        let mut cdh = Cdh::new(10, 4);
        for _ in 0..4 {
            cdh.observe(0);
        }
        assert_eq!(cdh.reserve_for(0.8), Some(0));
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn zero_window_panics() {
        let _ = Cdh::new(10, 0);
    }

    #[test]
    fn window_full_of_requires_saturation() {
        let mut cdh = Cdh::new(10, 3);
        assert!(!cdh.window_full_of(0), "empty window is not saturated");
        cdh.observe(0);
        cdh.observe(0);
        assert!(!cdh.window_full_of(0), "window not yet full");
        cdh.observe(0);
        assert!(cdh.window_full_of(0));
        assert!(!cdh.window_full_of(5));
        // One non-zero observation breaks it; three more zeros restore it.
        cdh.observe(42);
        assert!(!cdh.window_full_of(0));
        for _ in 0..3 {
            cdh.observe(0);
        }
        assert!(cdh.window_full_of(0));
    }

    #[test]
    fn observe_on_a_saturated_window_is_a_no_op() {
        let mut cdh = Cdh::new(10, 4);
        for _ in 0..4 {
            cdh.observe(0);
        }
        let before = (cdh.len(), cdh.reserve_for(0.8), cdh.histogram().total());
        cdh.observe(0);
        assert_eq!(
            before,
            (cdh.len(), cdh.reserve_for(0.8), cdh.histogram().total())
        );
    }

    #[test]
    fn histogram_view_is_consistent() {
        let mut cdh = Cdh::new(10, 8);
        cdh.observe(15);
        cdh.observe(25);
        assert_eq!(cdh.histogram().total(), 2);
    }
}
