//! Welford online mean/variance.

/// Online mean, variance, min and max of a stream of `f64` samples
/// (Welford's algorithm — numerically stable, single pass).
///
/// Used to report erase-count spread across blocks: the paper's "lifetime"
/// metric is WAF, but wear *balance* determines when the first block dies,
/// so we track it too.
///
/// # Example
///
/// ```
/// use jitgc_sim::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), Some(5.0));
/// assert_eq!(s.population_std_dev(), Some(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: f64) {
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean, or `None` before the first sample.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance (divides by N), or `None` before the first sample.
    #[must_use]
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Population standard deviation, or `None` before the first sample.
    #[must_use]
    pub fn population_std_dev(&self) -> Option<f64> {
        self.population_variance().map(f64::sqrt)
    }

    /// Smallest sample, or `None` before the first sample.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` before the first sample.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_yields_none() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.population_variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_sample() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.population_variance(), Some(0.0));
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn textbook_example() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.population_std_dev(), Some(2.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn numerically_stable_with_large_offset() {
        let base = 1e9;
        let s: RunningStats = [base + 1.0, base + 2.0, base + 3.0].into_iter().collect();
        let var = s.population_variance().expect("samples recorded");
        assert!((var - 2.0 / 3.0).abs() < 1e-6, "variance {var}");
    }

    #[test]
    fn extend_accumulates() {
        let mut s = RunningStats::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
    }
}
