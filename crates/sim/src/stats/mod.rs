//! Statistics primitives used across the simulator.
//!
//! * [`Histogram`] — fixed-bin-width frequency histogram (paper Fig. 5(a)).
//! * [`Cdh`] — the **cumulative data histogram** the direct-write predictor
//!   builds over past write-back windows (paper Fig. 5(b), Sec. 3.2.2).
//! * [`Ewma`] — exponentially-weighted moving average, used for the
//!   `B_w`/`B_gc` bandwidth estimates the JIT-GC manager needs.
//! * [`LatencyRecorder`] — log-bucketed latency histogram with percentile
//!   queries (p50/p99/p999 reporting beyond the paper's IOPS aggregate).
//! * [`RunningStats`] — Welford mean/variance, used for wear-leveling spread.

mod cdh;
mod ewma;
mod histogram;
mod latency;
mod running;

pub use cdh::Cdh;
pub use ewma::Ewma;
pub use histogram::Histogram;
pub use latency::LatencyRecorder;
pub use running::RunningStats;
