//! Simulated time: instants ([`SimTime`]) and spans ([`SimDuration`]).
//!
//! Both are integer microsecond counts. Microsecond resolution comfortably
//! covers the dynamic range this simulator needs: NAND page reads are tens of
//! microseconds, block erases are a few milliseconds, and the page-cache
//! flusher period is seconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since simulation start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Subtracting
/// two instants yields a [`SimDuration`]; adding a duration to an instant
/// yields a later instant.
///
/// # Example
///
/// ```
/// use jitgc_sim::{SimTime, SimDuration};
///
/// let start = SimTime::from_secs(10);
/// let end = start + SimDuration::from_millis(2_500);
/// assert_eq!(end - start, SimDuration::from_millis(2_500));
/// assert_eq!(end.as_micros(), 12_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// Durations support addition, subtraction (saturating via
/// [`SimDuration::saturating_sub`] or panicking via `-`), scaling by integer
/// factors, and conversion to/from seconds, milliseconds and microseconds.
///
/// # Example
///
/// ```
/// use jitgc_sim::SimDuration;
///
/// let tick = SimDuration::from_secs(5);
/// assert_eq!(tick * 6, SimDuration::from_secs(30));
/// assert_eq!(tick.as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant. Useful as an "infinitely far in the
    /// future" sentinel for event scheduling.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float (for reporting only; never
    /// used in simulation arithmetic).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is actually later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds `d`, saturating at [`SimTime::MAX`] instead of overflowing.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A duration of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A duration of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// A duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// A duration from fractional seconds, rounded to the nearest
    /// microsecond. Intended for configuration ergonomics, not simulation
    /// arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// The duration in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole seconds (truncating).
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in seconds as a float (for reporting and rate math).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Addition clamped at [`SimDuration::MAX`].
    #[must_use]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Multiplication clamped at [`SimDuration::MAX`].
    #[must_use]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// How many whole times `other` fits into `self`; `u64::MAX` when
    /// `other` is zero and `self` is non-zero, `0` when both are zero.
    #[must_use]
    pub fn div_duration(self, other: SimDuration) -> u64 {
        match self.0.checked_div(other.0) {
            Some(q) => q,
            None if self.0 == 0 => 0,
            None => u64::MAX,
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 {
            // Print with millisecond precision to keep output deterministic.
            write!(f, "{}.{:03}s", us / 1_000_000, (us % 1_000_000) / 1_000)
        } else if us >= 1_000 {
            write!(f, "{}.{:03}ms", us / 1_000, us % 1_000)
        } else {
            write!(f, "{us}us")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(2_500).as_secs(), 2);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_secs(6));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(250);
        assert_eq!(d * 4, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / 4, d);
    }

    #[test]
    fn duration_saturating_ops() {
        let small = SimDuration::from_secs(1);
        let big = SimDuration::from_secs(2);
        assert_eq!(small.saturating_sub(big), SimDuration::ZERO);
        assert_eq!(big.saturating_sub(small), SimDuration::from_secs(1));
        assert_eq!(SimDuration::MAX.saturating_add(small), SimDuration::MAX);
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
    }

    #[test]
    fn div_duration_handles_zero() {
        let d = SimDuration::from_secs(30);
        let p = SimDuration::from_secs(5);
        assert_eq!(d.div_duration(p), 6);
        assert_eq!(d.div_duration(SimDuration::ZERO), u64::MAX);
        assert_eq!(SimDuration::ZERO.div_duration(SimDuration::ZERO), 0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(42).to_string(), "42us");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimTime::from_secs(2).to_string(), "t=2.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1);
        let db = SimDuration::from_secs(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let t = SimTime::from_micros(123_456);
        let json = serde_json::to_string(&t).expect("serialize");
        let back: SimTime = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(t, back);
    }
}
