//! Byte-count arithmetic with human-friendly constructors.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An exact number of bytes.
///
/// Used throughout the simulator for capacities (`C_OP`, `C_resv`, `C_free`)
/// and traffic volumes (`D_buf`, `D_dir`). Constructors use binary units
/// (1 KiB = 1024 B) because flash geometry is naturally power-of-two sized.
///
/// # Example
///
/// ```
/// use jitgc_sim::ByteSize;
///
/// let op_capacity = ByteSize::gib(16);
/// let reserved = op_capacity.scale_permille(1_500); // 1.5 × C_OP
/// assert_eq!(reserved, ByteSize::gib(24));
/// assert_eq!(op_capacity.to_string(), "16.00 GiB");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// `n` bytes.
    #[must_use]
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// `n` kibibytes (×1024).
    #[must_use]
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// `n` mebibytes (×1024²).
    #[must_use]
    pub const fn mib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024)
    }

    /// `n` gibibytes (×1024³).
    #[must_use]
    pub const fn gib(n: u64) -> Self {
        ByteSize(n * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count in whole KiB (truncating).
    #[must_use]
    pub const fn as_kib(self) -> u64 {
        self.0 / 1024
    }

    /// The byte count in whole MiB (truncating).
    #[must_use]
    pub const fn as_mib(self) -> u64 {
        self.0 / (1024 * 1024)
    }

    /// The byte count in MiB as a float (reporting only).
    #[must_use]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// `true` if zero bytes.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// How many `page_size`-sized pages this size spans, rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn div_ceil_pages(self, page_size: ByteSize) -> u64 {
        assert!(!page_size.is_zero(), "page size must be non-zero");
        self.0.div_ceil(page_size.0)
    }

    /// Scales by `permille`/1000 using integer arithmetic, e.g.
    /// `scale_permille(1_500)` is ×1.5 and `scale_permille(500)` is ×0.5.
    ///
    /// Integer scaling keeps reserved-capacity sweeps (Fig. 2's
    /// `0.5×C_OP … 1.5×C_OP`) exactly reproducible.
    #[must_use]
    pub const fn scale_permille(self, permille: u64) -> ByteSize {
        ByteSize(self.0 / 1000 * permille + self.0 % 1000 * permille / 1000)
    }

    /// Subtraction clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }

    /// The smaller of two sizes.
    #[must_use]
    pub fn min(self, other: ByteSize) -> ByteSize {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two sizes.
    #[must_use]
    pub fn max(self, other: ByteSize) -> ByteSize {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 / rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, |acc, b| acc + b)
    }
}

impl From<u64> for ByteSize {
    fn from(n: u64) -> Self {
        ByteSize(n)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        const GIB: u64 = 1024 * 1024 * 1024;
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(1).as_kib(), 1024);
        assert_eq!(ByteSize::gib(1).as_mib(), 1024);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mib(3);
        let b = ByteSize::mib(1);
        assert_eq!(a + b, ByteSize::mib(4));
        assert_eq!(a - b, ByteSize::mib(2));
        assert_eq!(b * 5, ByteSize::mib(5));
        assert_eq!(a / 3, ByteSize::mib(1));
    }

    #[test]
    fn scale_permille_matches_paper_sweep() {
        let op = ByteSize::gib(16);
        assert_eq!(op.scale_permille(500), ByteSize::gib(8)); // L-BGC
        assert_eq!(op.scale_permille(1_000), op);
        assert_eq!(op.scale_permille(1_500), ByteSize::gib(24)); // A-BGC
        assert_eq!(op.scale_permille(750), ByteSize::gib(12));
    }

    #[test]
    fn scale_permille_exact_on_non_multiples() {
        // 1000 bytes × 1.5 = 1500 bytes, no rounding loss.
        assert_eq!(
            ByteSize::bytes(1000).scale_permille(1_500),
            ByteSize::bytes(1_500)
        );
        // Remainder path: 1001 × 0.5 = 500 (floor).
        assert_eq!(
            ByteSize::bytes(1001).scale_permille(500),
            ByteSize::bytes(500)
        );
    }

    #[test]
    fn div_ceil_pages() {
        let page = ByteSize::kib(4);
        assert_eq!(ByteSize::kib(8).div_ceil_pages(page), 2);
        assert_eq!(ByteSize::kib(9).div_ceil_pages(page), 3);
        assert_eq!(ByteSize::ZERO.div_ceil_pages(page), 0);
    }

    #[test]
    #[should_panic(expected = "page size must be non-zero")]
    fn div_ceil_pages_zero_page() {
        let _ = ByteSize::kib(8).div_ceil_pages(ByteSize::ZERO);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(
            ByteSize::mib(1).saturating_sub(ByteSize::mib(2)),
            ByteSize::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::bytes(100).to_string(), "100 B");
        assert_eq!(ByteSize::kib(4).to_string(), "4.00 KiB");
        assert_eq!(ByteSize::mib(20).to_string(), "20.00 MiB");
        assert_eq!(ByteSize::gib(16).to_string(), "16.00 GiB");
    }

    #[test]
    fn sum_collects() {
        let total: ByteSize = vec![ByteSize::mib(1), ByteSize::mib(2)].into_iter().sum();
        assert_eq!(total, ByteSize::mib(3));
    }
}
