//! A deterministic timestamped event queue.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap of `(SimTime, E)` pairs with **stable FIFO ordering** among
/// events scheduled for the same instant.
///
/// Determinism matters: the whole simulator must produce bit-identical
/// results for a given seed, and `std::collections::BinaryHeap` alone does
/// not define the order of equal keys. Each pushed event therefore carries a
/// monotonically increasing sequence number used as a tie-breaker.
///
/// # Example
///
/// ```
/// use jitgc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), "first at t=1");
/// q.push(SimTime::from_secs(1), "second at t=1");
/// q.push(SimTime::ZERO, "at t=0");
/// assert_eq!(q.pop(), Some((SimTime::ZERO, "at t=0")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "first at t=1")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "second at t=1")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first and,
        // within a timestamp, lowest sequence number first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 'c');
        q.push(SimTime::from_secs(1), 'a');
        q.push(SimTime::from_secs(2), 'b');
        let drained: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(drained, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_secs(7), i);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expected: Vec<i32> = (0..100).collect();
        assert_eq!(drained, expected);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "late");
        q.push(SimTime::from_secs(1), "early");
        assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
        q.push(SimTime::from_secs(3), "middle");
        assert_eq!(q.pop().map(|(_, e)| e), Some("middle"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
