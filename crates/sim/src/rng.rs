//! Seeded randomness and the Zipf sampler used by workload generators.

use std::fmt;

/// A deterministic random number generator for simulation runs.
///
/// Implements xoshiro256** (Blackman & Vigna) seeded from a `u64` via the
/// SplitMix64 expander, so the whole simulator is dependency-free; two
/// `SimRng`s built from the same seed produce identical streams, which is
/// what makes every experiment in this repository exactly reproducible.
///
/// # Example
///
/// ```
/// use jitgc_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.range_u64(0, 1000), b.range_u64(0, 1000));
/// ```
#[derive(Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// The SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed(seed: u64) -> Self {
        let mut z = seed;
        let state = [
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
        ];
        SimRng { state, seed }
    }

    /// The seed this generator was constructed with.
    #[must_use]
    pub fn initial_seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator; useful to give each workload
    /// stream its own stable stream regardless of how many samples siblings
    /// draw.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> SimRng {
        // Mix the parent's seed with the stream id using the SplitMix64
        // finalizer so that nearby stream ids do not yield correlated seeds.
        let mut z = self
            .seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::seed(z)
    }

    /// The next raw 64-bit output of the generator.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        self.state = [s0, s1, s2, s3.rotate_left(45)];
        result
    }

    /// The next raw 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with generator output.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        if span.is_power_of_two() {
            return lo + (self.next_u64() & (span - 1));
        }
        // Rejection sampling over the largest multiple of `span` to avoid
        // modulo bias.
        let zone = u64::MAX - (u64::MAX % span) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + v % span;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// A geometric-ish burst length with mean `mean` (at least 1). Used by
    /// workload generators to shape bursty arrivals.
    pub fn burst_len(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        // Inverse-transform sampling of a geometric distribution with
        // success probability 1/mean.
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        let p = 1.0 / mean;
        let len = (u.ln() / (1.0 - p).ln()).ceil();
        (len as u64).max(1)
    }

    /// An exponentially distributed duration in microseconds with the given
    /// mean, truncated to at least 1 µs. Used for inter-arrival gaps.
    pub fn exp_micros(&mut self, mean_micros: f64) -> u64 {
        if mean_micros <= 0.0 {
            return 1;
        }
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        ((-u.ln()) * mean_micros).max(1.0) as u64
    }
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

/// A Zipf-distributed sampler over `0..n`, rank 0 being the hottest item.
///
/// Workloads like YCSB and TPC-C exhibit skewed access: a small set of hot
/// logical pages receives most updates. That skew is what creates
/// soon-to-be-invalidated pages, the phenomenon JIT-GC's SIP filtering
/// exploits, so the sampler's fidelity matters for reproducing Table 3.
///
/// Sampling uses the classic rejection-inversion-free approximation: the
/// normalized harmonic CDF is precomputed in `O(n)` and sampled by binary
/// search in `O(log n)`. Exponent `s = 0` degenerates to uniform.
///
/// # Example
///
/// ```
/// use jitgc_sim::{SimRng, Zipf};
///
/// let zipf = Zipf::new(1_000, 0.99);
/// let mut rng = SimRng::seed(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf domain must be non-empty");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be finite and non-negative, got {s}"
        );
        let n = usize::try_from(n).expect("zipf domain fits in usize");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items in the domain.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// `true` if the domain is a single item.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..len()`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit_f64();
        // partition_point returns the first index whose cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(123);
        let mut b = SimRng::seed(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "independent streams should rarely collide");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed(9);
        let mut parent2 = SimRng::seed(9);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent1.fork(4);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::seed(5);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_rejects_empty() {
        let mut rng = SimRng::seed(5);
        let _ = rng.range_u64(7, 7);
    }

    #[test]
    fn range_covers_full_span() {
        let mut rng = SimRng::seed(13);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.range_u64(0, 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "coverage {seen:?}");
    }

    #[test]
    fn unit_f64_in_half_open_interval() {
        let mut rng = SimRng::seed(19);
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u), "sample {u}");
        }
    }

    #[test]
    fn fill_bytes_handles_partial_words() {
        let mut a = SimRng::seed(29);
        let mut b = SimRng::seed(29);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        // The first 8 bytes are the little-endian first word.
        assert_eq!(&buf[..8], &b.next_u64().to_le_bytes());
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities clamp rather than panic.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn burst_len_mean_is_close() {
        let mut rng = SimRng::seed(17);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.burst_len(8.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.5, "observed mean {mean}");
        assert_eq!(rng.burst_len(0.5), 1);
    }

    #[test]
    fn exp_micros_mean_is_close() {
        let mut rng = SimRng::seed(23);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exp_micros(1_000.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1_000.0).abs() < 50.0, "observed mean {mean}");
        assert_eq!(rng.exp_micros(0.0), 1);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SimRng::seed(31);
        let mut counts = [0u64; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_skew_prefers_low_ranks() {
        let zipf = Zipf::new(1_000, 1.0);
        let mut rng = SimRng::seed(37);
        let mut head = 0u64;
        let n = 50_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1 over 1000 items, ranks 0..10 carry ~39% of mass.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.30, "head fraction {frac}");
    }

    #[test]
    fn zipf_sample_in_domain() {
        let zipf = Zipf::new(17, 0.8);
        let mut rng = SimRng::seed(41);
        for _ in 0..5_000 {
            assert!(zipf.sample(&mut rng) < 17);
        }
        assert_eq!(zipf.len(), 17);
        assert!(!zipf.is_empty());
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn zipf_rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn zipf_rejects_negative_exponent() {
        let _ = Zipf::new(10, -0.5);
    }
}
