//! A small, dependency-free JSON representation, parser and printer.
//!
//! The simulator must build with no network access, so it cannot rely on
//! `serde_json` for its machine-readable interfaces (`ssdsim --json`,
//! `--config`, `--bench-json`, trace files). This module provides the
//! subset of JSON the repository needs: a tree value type, a strict
//! recursive-descent parser, and compact/pretty printers.
//!
//! Integers are kept exact: numeric literals without a fraction or
//! exponent parse into [`JsonValue::U64`]/[`JsonValue::I64`] so 64-bit
//! counters and seeds survive a round trip that an `f64`-only model would
//! corrupt above 2^53.
//!
//! # Example
//!
//! ```
//! use jitgc_sim::json::JsonValue;
//!
//! let v = JsonValue::parse(r#"{"iops": 1200.5, "ops": 18446744073709551615}"#).unwrap();
//! assert_eq!(v.get("ops").unwrap().as_u64(), Some(u64::MAX));
//! assert_eq!(v.get("iops").unwrap().as_f64(), Some(1200.5));
//! ```

use std::fmt;

/// A parsed JSON document (or a document being built for printing).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// A fractional or exponent-form number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved when printing.
    Object(Vec<(String, JsonValue)>),
}

/// A parse or extraction failure, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed construct.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required object key.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the key when it is absent.
    pub fn req(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a signed integer (negative literals or in-range
    /// unsigned ones).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::I64(v) => Some(v),
            JsonValue::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a float; integer literals convert.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::F64(v) => Some(v),
            JsonValue::U64(v) => Some(v as f64),
            JsonValue::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::U64(v) => {
                out.push_str(&v.to_string());
            }
            JsonValue::I64(v) => {
                out.push_str(&v.to_string());
            }
            JsonValue::F64(v) => render_f64(out, *v),
            JsonValue::String(s) => render_string(out, s),
            JsonValue::Array(items) => {
                render_seq(out, indent, depth, items.len(), '[', ']', |out, i, d| {
                    items[i].render(out, indent, d);
                });
            }
            JsonValue::Object(fields) => {
                render_seq(out, indent, depth, fields.len(), '{', '}', |out, i, d| {
                    let (key, value) = &fields[i];
                    render_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, d);
                });
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(u64::from(v))
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::U64(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        if v >= 0 {
            JsonValue::U64(v as u64)
        } else {
            JsonValue::I64(v)
        }
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_owned())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<JsonValue>> From<Option<T>> for JsonValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(JsonValue::Null, Into::into)
    }
}

/// Incremental object builder so call sites read like a field list.
///
/// # Example
///
/// ```
/// use jitgc_sim::json::ObjectBuilder;
///
/// let v = ObjectBuilder::new().field("a", 1u64).field("b", true).build();
/// assert_eq!(v.to_compact(), r#"{"a":1,"b":true}"#);
/// ```
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    fields: Vec<(String, JsonValue)>,
}

impl ObjectBuilder {
    /// Starts an empty object.
    #[must_use]
    pub fn new() -> Self {
        ObjectBuilder::default()
    }

    /// Appends one key/value pair.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

fn render_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is the shortest representation that round-trips; ensure a
        // fraction marker so the value re-parses as F64.
        let s = format!("{v:?}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional substitute.
        out.push_str("null");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", JsonValue::Null),
            Some(b't') => self.eat_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` and a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always on a char boundary).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| JsonError::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::U64(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::I64(-7));
        assert_eq!(JsonValue::parse("2.5").unwrap(), JsonValue::F64(2.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::F64(1000.0));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::String("hi".into())
        );
    }

    #[test]
    fn u64_integers_are_exact() {
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.to_compact(), "18446744073709551615");
    }

    #[test]
    fn parses_nested_structures() {
        let text = r#"{"a": [1, 2, {"b": null}], "c": {"d": false}}"#;
        let v = JsonValue::parse(text).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[2].get("b").unwrap().is_null());
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"back\\slash\ttab\u{8}\u{1f600}";
        let rendered = JsonValue::String(original.into()).to_compact();
        let back = JsonValue::parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn parses_surrogate_pair() {
        let v = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"\\q\"", "{} x"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_print_shape() {
        let v = ObjectBuilder::new()
            .field("x", 1u64)
            .field("y", vec![1u64, 2])
            .build();
        assert_eq!(
            v.to_pretty(),
            "{\n  \"x\": 1,\n  \"y\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn compact_round_trips() {
        let v = ObjectBuilder::new()
            .field("name", "jit")
            .field("ratio", 0.125)
            .field("n", 3u64)
            .field("neg", -9i64)
            .field("flag", true)
            .field("none", JsonValue::Null)
            .field("list", vec![0u64, 1])
            .build();
        let back = JsonValue::parse(&v.to_compact()).unwrap();
        assert_eq!(back, v);
        let back_pretty = JsonValue::parse(&v.to_pretty()).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn floats_always_reparse_as_floats() {
        let rendered = JsonValue::F64(3.0).to_compact();
        assert_eq!(rendered, "3.0");
        assert_eq!(JsonValue::parse(&rendered).unwrap(), JsonValue::F64(3.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_compact(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn req_reports_missing_field() {
        let v = JsonValue::parse("{}").unwrap();
        let err = v.req("seed").unwrap_err();
        assert!(err.to_string().contains("seed"));
    }

    #[test]
    fn option_conversion() {
        assert_eq!(JsonValue::from(None::<u64>), JsonValue::Null);
        assert_eq!(JsonValue::from(Some(3u64)), JsonValue::U64(3));
    }
}
