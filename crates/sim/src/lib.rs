//! Deterministic simulation kernel for the JIT-GC SSD simulator.
//!
//! This crate provides the foundational building blocks shared by every other
//! crate in the workspace:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond simulated time, so
//!   every run is exactly reproducible (no floating-point clock drift).
//! * [`ByteSize`] — a byte-count newtype with KiB/MiB/GiB constructors.
//! * [`EventQueue`] — a deterministic priority queue of timestamped events
//!   with stable FIFO ordering among equal timestamps.
//! * [`SimRng`] and [`Zipf`] — seeded randomness and the skewed-access
//!   sampler used by the workload generators.
//! * [`stats`] — histograms, the cumulative data histogram (CDH) used by the
//!   paper's direct-write predictor, EWMA bandwidth estimation, and online
//!   latency statistics.
//! * [`json`] — a dependency-free JSON tree, parser and printer backing the
//!   simulator's machine-readable interfaces.
//! * [`hash`] — the FxHash-style hasher used by hot-path hash maps.
//!
//! # Example
//!
//! ```
//! use jitgc_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_secs(5), "flusher tick");
//! queue.push(SimTime::from_secs(1), "request arrival");
//! let (when, what) = queue.pop().expect("queue is non-empty");
//! assert_eq!(when, SimTime::from_secs(1));
//! assert_eq!(what, "request arrival");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod event;
mod rng;
mod time;

pub mod hash;
pub mod json;
pub mod stats;

pub use bytes::ByteSize;
pub use event::EventQueue;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::{JsonError, JsonValue, ObjectBuilder};
pub use rng::{SimRng, Zipf};
pub use time::{SimDuration, SimTime};
