//! A fast, non-cryptographic hasher for hot-path hash maps.
//!
//! The page cache keys its Lpn→slot table by small integers; SipHash (the
//! standard-library default) burns most of its cycles defending against
//! hash-flooding that a simulator keyed by its own LPNs cannot suffer.
//! This is the Firefox `FxHasher` recipe: one rotate, one xor, one
//! multiply per word.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash recipe: `π` in fixed point, chosen for good
/// bit dispersion under wrapping multiplication.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// One-rotate-xor-multiply hasher; use via [`FxHashMap`]/[`FxHashSet`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// Builder for [`FxHasher`]; plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42), hash_one(42));
        assert_ne!(hash_one(42), hash_one(43));
    }

    #[test]
    fn sequential_keys_disperse() {
        // Low bits must differ for sequential keys or every LPN lands in
        // the same HashMap bucket.
        let mut low_bits = HashSet::new();
        for v in 0..256u64 {
            low_bits.insert(hash_one(v) & 0xFF);
        }
        assert!(low_bits.len() > 200, "only {} distinct", low_bits.len());
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&7), Some(&14));
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_writes_match_padding_behavior() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }
}
