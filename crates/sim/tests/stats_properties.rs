#![cfg(feature = "proptest")]

//! Property-based tests of the statistics primitives.

use jitgc_sim::stats::{Cdh, Histogram, LatencyRecorder, RunningStats};
use jitgc_sim::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The histogram quantile is monotone in the requested fraction and
    /// always covers at least the requested share of samples.
    #[test]
    fn histogram_quantile_is_monotone_and_covering(
        samples in proptest::collection::vec(0..1_000u64, 1..100),
        fa in 0.0..1.0f64,
        fb in 0.0..1.0f64,
    ) {
        let mut h = Histogram::new(10);
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if fa <= fb { (fa, fb) } else { (fb, fa) };
        let qlo = h.quantile_upper_edge(lo).expect("non-empty");
        let qhi = h.quantile_upper_edge(hi).expect("non-empty");
        prop_assert!(qlo <= qhi);
        // Coverage: at least ⌈hi·n⌉ samples are ≤ the returned edge.
        let covered = samples.iter().filter(|&&s| s <= qhi).count() as u64;
        let needed = (hi * samples.len() as f64).ceil() as u64;
        prop_assert!(covered >= needed, "covered {} needed {}", covered, needed);
    }

    /// CDH sliding window: after the window fills with new observations,
    /// old ones stop influencing the reservation.
    #[test]
    fn cdh_window_forgets(old in 1..100u64, new in 1..100u64) {
        let window = 8usize;
        let mut cdh = Cdh::new(10, window);
        for _ in 0..window {
            cdh.observe(old * 10);
        }
        for _ in 0..window {
            cdh.observe(new * 10);
        }
        // The reservation at 100 % now reflects only `new`.
        let edge = cdh.reserve_for(1.0).expect("observed");
        prop_assert_eq!(edge, new * 10);
    }

    /// Latency percentiles are monotone and bracketed by min/max.
    #[test]
    fn latency_percentiles_monotone(
        samples in proptest::collection::vec(1..10_000_000u64, 1..200),
    ) {
        let mut lat = LatencyRecorder::new();
        for &s in &samples {
            lat.record(SimDuration::from_micros(s));
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let vals: Vec<u64> = qs
            .iter()
            .map(|&q| lat.percentile(q).expect("non-empty").as_micros())
            .collect();
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{:?}", vals);
        let max = lat.max().expect("non-empty").as_micros();
        prop_assert!(*vals.last().expect("non-empty") <= max);
    }

    /// Welford statistics agree with naive two-pass computation.
    #[test]
    fn running_stats_match_naive(samples in proptest::collection::vec(-1e6..1e6f64, 1..100)) {
        let stats: RunningStats = samples.iter().copied().collect();
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((stats.mean().expect("non-empty") - mean).abs() < 1e-6);
        prop_assert!((stats.population_variance().expect("non-empty") - var).abs() < 1e-3);
    }

    /// The event queue dequeues in exact (time, insertion) order.
    #[test]
    fn event_queue_is_stable_priority(times in proptest::collection::vec(0..50u64, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort(); // stable by (time, insertion index)
        let drained: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_secs(), i))).collect();
        prop_assert_eq!(drained, expected);
    }
}
