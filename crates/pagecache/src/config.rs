//! Page cache configuration.

use jitgc_sim::json::{JsonError, JsonValue, ObjectBuilder};
use jitgc_sim::SimDuration;

/// Static configuration of a [`PageCache`](crate::PageCache).
///
/// # Example
///
/// ```
/// use jitgc_pagecache::PageCacheConfig;
/// use jitgc_sim::SimDuration;
///
/// let config = PageCacheConfig::builder()
///     .capacity_pages(2048)
///     .tau_expire(SimDuration::from_secs(30))
///     .tau_flush_permille(100) // flush pressure above 10 % dirty
///     .build();
/// assert_eq!(config.flush_threshold_pages(), 204);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageCacheConfig {
    capacity_pages: u64,
    tau_expire: SimDuration,
    tau_flush_permille: u64,
    throttle_permille: u64,
    flusher_period: SimDuration,
}

impl PageCacheConfig {
    /// Starts building a configuration. See [`PageCacheConfigBuilder`].
    #[must_use]
    pub fn builder() -> PageCacheConfigBuilder {
        PageCacheConfigBuilder::default()
    }

    /// Maximum number of pages the cache holds.
    #[must_use]
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Dirty-age expiration threshold `τ_expire`.
    #[must_use]
    pub fn tau_expire(&self) -> SimDuration {
        self.tau_expire
    }

    /// Dirty-pressure threshold in permille of capacity.
    #[must_use]
    pub fn tau_flush_permille(&self) -> u64 {
        self.tau_flush_permille
    }

    /// The dirty-page count that makes expired pages eligible for
    /// write-back (the flusher's second condition).
    #[must_use]
    pub fn flush_threshold_pages(&self) -> u64 {
        self.capacity_pages * self.tau_flush_permille / 1000
    }

    /// Hard dirty limit in permille of capacity (Linux's `dirty_ratio`).
    #[must_use]
    pub fn throttle_permille(&self) -> u64 {
        self.throttle_permille
    }

    /// The dirty-page count above which buffered writers are throttled:
    /// they must perform write-back themselves, synchronously — Linux's
    /// `balance_dirty_pages`. This is the mechanism that turns a
    /// GC-stalled flush path into application-visible stalls.
    #[must_use]
    pub fn throttle_threshold_pages(&self) -> u64 {
        self.capacity_pages * self.throttle_permille / 1000
    }

    /// The flusher wake-up period `p` the cache assumes when bucketing
    /// dirty pages by age for the predictor's incremental demand counters.
    /// Must match the engine's flusher period for the O(1) poll path to
    /// engage; a mismatch only costs speed (the predictor falls back to
    /// the full dirty-list scan), never correctness.
    #[must_use]
    pub fn flusher_period(&self) -> SimDuration {
        self.flusher_period
    }

    /// A copy of this configuration with the flusher period replaced —
    /// how an embedding simulator aligns the cache's age buckets with its
    /// own tick period without re-spelling the whole builder chain.
    ///
    /// # Panics
    ///
    /// Panics if `p` is zero.
    #[must_use]
    pub fn with_flusher_period(mut self, p: SimDuration) -> Self {
        assert!(!p.is_zero(), "flusher_period must be non-zero");
        self.flusher_period = p;
        self
    }

    /// Serializes to the repository's JSON config format.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("capacity_pages", self.capacity_pages)
            .field("tau_expire_us", self.tau_expire.as_micros())
            .field("tau_flush_permille", self.tau_flush_permille)
            .field("throttle_permille", self.throttle_permille)
            .field("flusher_period_us", self.flusher_period.as_micros())
            .build()
    }

    /// Parses the format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let u64_field = |key: &str| -> Result<u64, JsonError> {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be an integer")))
        };
        let mut builder = PageCacheConfig::builder()
            .capacity_pages(u64_field("capacity_pages")?)
            .tau_expire(SimDuration::from_micros(u64_field("tau_expire_us")?))
            .tau_flush_permille(u64_field("tau_flush_permille")?)
            .throttle_permille(u64_field("throttle_permille")?);
        // Older config files predate the flusher-period field; keep them
        // loading with the builder default.
        if let Some(us) = v.get("flusher_period_us").and_then(JsonValue::as_u64) {
            builder = builder.flusher_period(SimDuration::from_micros(us));
        }
        Ok(builder.build())
    }
}

/// Builder for [`PageCacheConfig`].
///
/// Defaults mirror a Linux desktop: 2 048 pages capacity, `τ_expire` 30 s,
/// `τ_flush` 10 % of capacity.
#[derive(Debug, Clone)]
pub struct PageCacheConfigBuilder {
    capacity_pages: u64,
    tau_expire: SimDuration,
    tau_flush_permille: u64,
    throttle_permille: u64,
    flusher_period: SimDuration,
}

impl Default for PageCacheConfigBuilder {
    fn default() -> Self {
        PageCacheConfigBuilder {
            capacity_pages: 2_048,
            tau_expire: SimDuration::from_secs(30),
            tau_flush_permille: 100,
            throttle_permille: 200,
            flusher_period: SimDuration::from_secs(5),
        }
    }
}

impl PageCacheConfigBuilder {
    /// Sets the cache capacity in pages.
    #[must_use]
    pub fn capacity_pages(mut self, pages: u64) -> Self {
        self.capacity_pages = pages;
        self
    }

    /// Sets the dirty-age expiration threshold.
    #[must_use]
    pub fn tau_expire(mut self, tau: SimDuration) -> Self {
        self.tau_expire = tau;
        self
    }

    /// Sets the dirty-pressure threshold in permille of capacity.
    #[must_use]
    pub fn tau_flush_permille(mut self, permille: u64) -> Self {
        self.tau_flush_permille = permille;
        self
    }

    /// Sets the hard dirty limit (writer throttling) in permille of
    /// capacity (Linux `dirty_ratio`; default 200 = 20 %).
    #[must_use]
    pub fn throttle_permille(mut self, permille: u64) -> Self {
        self.throttle_permille = permille;
        self
    }

    /// Sets the flusher wake-up period `p` used to bucket dirty pages by
    /// age (default 5 s, the paper's Linux default).
    #[must_use]
    pub fn flusher_period(mut self, p: SimDuration) -> Self {
        self.flusher_period = p;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or `τ_expire` is zero.
    #[must_use]
    pub fn build(self) -> PageCacheConfig {
        assert!(self.capacity_pages > 0, "cache capacity must be non-zero");
        assert!(
            !self.tau_expire.is_zero(),
            "tau_expire must be non-zero (a zero value means no caching)"
        );
        assert!(
            !self.flusher_period.is_zero(),
            "flusher_period must be non-zero"
        );
        PageCacheConfig {
            capacity_pages: self.capacity_pages,
            tau_expire: self.tau_expire,
            tau_flush_permille: self.tau_flush_permille,
            throttle_permille: self.throttle_permille,
            flusher_period: self.flusher_period,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let c = PageCacheConfig::builder()
            .capacity_pages(4_096)
            .tau_expire(SimDuration::from_secs(9))
            .tau_flush_permille(150)
            .throttle_permille(350)
            .flusher_period(SimDuration::from_millis(750))
            .build();
        let back = PageCacheConfig::from_json(&c.to_json()).expect("parse");
        assert_eq!(back, c);
    }

    #[test]
    fn json_without_flusher_period_uses_default() {
        let c = PageCacheConfig::builder().build();
        let mut v = c.to_json();
        if let JsonValue::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "flusher_period_us");
        }
        let back = PageCacheConfig::from_json(&v).expect("parse");
        assert_eq!(back, c);
    }

    #[test]
    fn defaults() {
        let c = PageCacheConfig::builder().build();
        assert_eq!(c.capacity_pages(), 2_048);
        assert_eq!(c.tau_expire(), SimDuration::from_secs(30));
        assert_eq!(c.tau_flush_permille(), 100);
        assert_eq!(c.flusher_period(), SimDuration::from_secs(5));
    }

    #[test]
    fn flush_threshold_derivation() {
        let c = PageCacheConfig::builder()
            .capacity_pages(1000)
            .tau_flush_permille(250)
            .build();
        assert_eq!(c.flush_threshold_pages(), 250);
    }

    #[test]
    fn throttle_threshold_derivation() {
        let c = PageCacheConfig::builder()
            .capacity_pages(1000)
            .throttle_permille(300)
            .build();
        assert_eq!(c.throttle_threshold_pages(), 300);
        assert_eq!(c.throttle_permille(), 300);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = PageCacheConfig::builder().capacity_pages(0).build();
    }

    #[test]
    #[should_panic(expected = "tau_expire must be non-zero")]
    fn zero_tau_expire_panics() {
        let _ = PageCacheConfig::builder()
            .tau_expire(SimDuration::ZERO)
            .build();
    }
}
