//! The write-back page cache proper.

use crate::{PageCacheConfig, PageCacheStats};
use jitgc_nand::Lpn;
use jitgc_sim::SimTime;
use std::collections::{BTreeSet, HashMap};

/// What a buffered write did to the cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteEffect {
    /// Dirty pages the cache had to write back *immediately* to make room
    /// (cache full of dirty data). The caller must submit these to the
    /// device now; they are unpredictable early flushes and one source of
    /// prediction error.
    pub forced_writebacks: Vec<Lpn>,
}

/// One flusher-thread wake-up's output: the dirty pages written back.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlushBatch {
    /// Flushed pages, oldest first. The caller submits these to the device.
    pub lpns: Vec<Lpn>,
    /// How many pages were flushed (all by `τ_expire` expiry; the paper's
    /// flusher model never writes back unexpired data).
    pub expired: usize,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    dirty: bool,
    last_update: SimTime,
    /// Sequence number breaking age ties deterministically.
    seq: u64,
    /// LRU tick (meaningful for clean entries).
    tick: u64,
}

/// A bounded write-back page cache with Linux-flusher semantics.
///
/// See the [crate documentation](crate) for the model. All mutating
/// operations take the current simulated time; the cache holds no clock.
#[derive(Debug)]
pub struct PageCache {
    config: PageCacheConfig,
    entries: HashMap<Lpn, Entry>,
    /// Dirty pages ordered oldest-first by (last_update, seq).
    dirty_order: BTreeSet<(SimTime, u64, Lpn)>,
    /// Clean pages ordered least-recently-used first by (tick).
    clean_order: BTreeSet<(u64, Lpn)>,
    next_seq: u64,
    next_tick: u64,
    stats: PageCacheStats,
}

impl PageCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: PageCacheConfig) -> Self {
        PageCache {
            config,
            entries: HashMap::new(),
            dirty_order: BTreeSet::new(),
            clean_order: BTreeSet::new(),
            next_seq: 0,
            next_tick: 0,
            stats: PageCacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &PageCacheConfig {
        &self.config
    }

    /// Cache statistics.
    #[must_use]
    pub fn stats(&self) -> &PageCacheStats {
        &self.stats
    }

    /// Number of cached pages (dirty + clean).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of dirty pages.
    #[must_use]
    pub fn dirty_count(&self) -> u64 {
        self.dirty_order.len() as u64
    }

    /// `true` if `lpn` is cached (dirty or clean).
    #[must_use]
    pub fn contains(&self, lpn: Lpn) -> bool {
        self.entries.contains_key(&lpn)
    }

    /// `true` if `lpn` is cached dirty.
    #[must_use]
    pub fn is_dirty(&self, lpn: Lpn) -> bool {
        self.entries.get(&lpn).is_some_and(|e| e.dirty)
    }

    /// A buffered write: marks `lpn` dirty with age zero. Rewriting an
    /// already-dirty page resets its age — the paper's `B → B′` case, which
    /// *delays* that page's flush.
    ///
    /// Returns the dirty pages (if any) that had to be force-written-back
    /// to make room.
    pub fn write(&mut self, lpn: Lpn, now: SimTime) -> WriteEffect {
        self.stats.writes += 1;
        let mut effect = WriteEffect::default();
        if let Some(entry) = self.entries.get(&lpn).copied() {
            if entry.dirty {
                self.dirty_order
                    .remove(&(entry.last_update, entry.seq, lpn));
            } else {
                self.clean_order.remove(&(entry.tick, lpn));
            }
        } else if self.entries.len() as u64 >= self.config.capacity_pages() {
            if let Some(victim) = self.evict_one() {
                effect.forced_writebacks.push(victim);
            }
        }
        let seq = self.bump_seq();
        let tick = self.bump_tick();
        self.entries.insert(
            lpn,
            Entry {
                dirty: true,
                last_update: now,
                seq,
                tick,
            },
        );
        self.dirty_order.insert((now, seq, lpn));
        effect
    }

    /// A buffered read: returns `true` on a cache hit. On a miss the page
    /// is assumed fetched from the device and cached clean.
    pub fn read(&mut self, lpn: Lpn, _now: SimTime) -> bool {
        if let Some(entry) = self.entries.get(&lpn).copied() {
            self.stats.read_hits += 1;
            if !entry.dirty {
                // Refresh LRU position.
                self.clean_order.remove(&(entry.tick, lpn));
                let tick = self.bump_tick();
                self.clean_order.insert((tick, lpn));
                self.entries
                    .get_mut(&lpn)
                    .expect("entry present")
                    .tick = tick;
            }
            true
        } else {
            self.stats.read_misses += 1;
            if self.entries.len() as u64 >= self.config.capacity_pages() {
                // Reads never force dirty writebacks; if everything is
                // dirty the fetched page simply is not cached.
                if self.clean_order.is_empty() {
                    return false;
                }
                self.evict_one();
            }
            let seq = self.bump_seq();
            let tick = self.bump_tick();
            self.entries.insert(
                lpn,
                Entry {
                    dirty: false,
                    last_update: SimTime::ZERO,
                    seq,
                    tick,
                },
            );
            self.clean_order.insert((tick, lpn));
            false
        }
    }

    /// One flusher-thread wake-up at time `now`, following the paper's
    /// model of the Linux flusher (Sec. 3.2.1): dirty data is written back
    /// when **both** conditions hold — it is older than `τ_expire` *and*
    /// the total amount of dirty data exceeds the `τ_flush` threshold.
    /// When the conditions are met, every expired page is flushed
    /// (oldest first).
    ///
    /// This AND semantics is what makes the buffered-write predictor's
    /// relaxation an *over*-estimate: assuming expired pages always flush
    /// ignores that `τ_flush` may gate them, so the prediction errs high
    /// by at most `τ_flush` worth of pages — the paper's stated bound.
    ///
    /// Flushed pages stay cached clean.
    pub fn flusher_tick(&mut self, now: SimTime) -> FlushBatch {
        let mut batch = FlushBatch::default();
        let threshold = self.config.flush_threshold_pages();
        if self.dirty_order.len() as u64 <= threshold {
            return batch;
        }
        while let Some(&(last_update, seq, lpn)) = self.dirty_order.first() {
            if now.saturating_since(last_update) < self.config.tau_expire() {
                break;
            }
            self.dirty_order.remove(&(last_update, seq, lpn));
            self.mark_clean(lpn);
            batch.lpns.push(lpn);
            batch.expired += 1;
        }
        self.stats.flushed_expired += batch.expired as u64;
        batch
    }

    /// Scans dirty pages oldest-first, yielding `(lpn, last_update)` — the
    /// exact information the paper's buffered-write predictor extracts.
    pub fn dirty_pages(&self) -> impl Iterator<Item = (Lpn, SimTime)> + '_ {
        self.dirty_order.iter().map(|&(t, _, lpn)| (lpn, t))
    }

    /// Writer throttling (Linux `balance_dirty_pages`): when total dirty
    /// data exceeds the hard `dirty_ratio` limit, the *writing process*
    /// must write back the oldest dirty pages itself, synchronously, until
    /// the count is back at the flush threshold. Returns the pages the
    /// caller must now submit to the device; they stay cached clean.
    pub fn throttle_excess(&mut self) -> Vec<Lpn> {
        let mut out = Vec::new();
        if self.dirty_order.len() as u64 <= self.config.throttle_threshold_pages() {
            return out;
        }
        let floor = self.config.flush_threshold_pages();
        while self.dirty_order.len() as u64 > floor {
            let &(last_update, seq, lpn) = self.dirty_order.first().expect("over threshold");
            self.dirty_order.remove(&(last_update, seq, lpn));
            self.mark_clean(lpn);
            out.push(lpn);
        }
        self.stats.throttled_writebacks += out.len() as u64;
        out
    }

    /// Drops `lpn` from the cache without writing it back, dirty or not.
    /// Used when a direct write supersedes the cached copy (a later flush
    /// of stale data must not clobber the device) and on TRIM.
    ///
    /// Returns `true` if the page was cached.
    pub fn invalidate(&mut self, lpn: Lpn) -> bool {
        let Some(entry) = self.entries.remove(&lpn) else {
            return false;
        };
        if entry.dirty {
            self.dirty_order.remove(&(entry.last_update, entry.seq, lpn));
        } else {
            self.clean_order.remove(&(entry.tick, lpn));
        }
        true
    }

    fn mark_clean(&mut self, lpn: Lpn) {
        let tick = self.bump_tick();
        let entry = self.entries.get_mut(&lpn).expect("flushed page cached");
        entry.dirty = false;
        entry.tick = tick;
        self.clean_order.insert((tick, lpn));
    }

    /// Evicts one page to make room: LRU clean if available, else the
    /// oldest dirty page (returned so the caller can write it back).
    fn evict_one(&mut self) -> Option<Lpn> {
        if let Some(&(tick, lpn)) = self.clean_order.first() {
            self.clean_order.remove(&(tick, lpn));
            self.entries.remove(&lpn);
            self.stats.clean_evictions += 1;
            None
        } else if let Some(&(t, seq, lpn)) = self.dirty_order.first() {
            self.dirty_order.remove(&(t, seq, lpn));
            self.entries.remove(&lpn);
            self.stats.forced_writebacks += 1;
            Some(lpn)
        } else {
            None
        }
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn bump_tick(&mut self) -> u64 {
        let t = self.next_tick;
        self.next_tick += 1;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_sim::SimDuration;

    fn cache(capacity: u64) -> PageCache {
        PageCache::new(
            PageCacheConfig::builder()
                .capacity_pages(capacity)
                .tau_expire(SimDuration::from_secs(30))
                .tau_flush_permille(100)
                .build(),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn write_makes_dirty() {
        let mut c = cache(8);
        c.write(Lpn(1), t(0));
        assert!(c.is_dirty(Lpn(1)));
        assert_eq!(c.dirty_count(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn expired_pages_flush_in_age_order() {
        let mut c = cache(8);
        c.write(Lpn(2), t(0));
        c.write(Lpn(1), t(5));
        let batch = c.flusher_tick(t(36));
        assert_eq!(batch.lpns, vec![Lpn(2), Lpn(1)]);
        assert_eq!(batch.expired, 2);
        assert_eq!(c.dirty_count(), 0);
        // Flushed pages stay cached clean.
        assert!(c.contains(Lpn(1)));
        assert!(!c.is_dirty(Lpn(1)));
    }

    #[test]
    fn unexpired_pages_stay_dirty() {
        let mut c = cache(100); // pressure threshold 10 pages
        c.write(Lpn(1), t(10));
        let batch = c.flusher_tick(t(35));
        assert!(batch.lpns.is_empty());
        assert!(c.is_dirty(Lpn(1)));
    }

    #[test]
    fn rewrite_resets_age_and_delays_flush() {
        // The paper's B → B′ case (Fig. 4): updating dirty data postpones
        // its write-back.
        let mut c = cache(8); // τ_flush threshold 0: expiry alone gates
        c.write(Lpn(1), t(0));
        c.write(Lpn(1), t(20)); // B′
        let batch = c.flusher_tick(t(35));
        assert!(batch.lpns.is_empty(), "age was reset at t=20");
        let batch = c.flusher_tick(t(50));
        assert_eq!(batch.lpns, vec![Lpn(1)]);
        // Still a single cached page, not two.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn tau_flush_gates_expired_pages() {
        // Capacity 20 → threshold 2 pages (10 %). The paper's flusher
        // writes back expired data only when total dirty data exceeds
        // τ_flush (both conditions ANDed).
        let mut c = cache(20);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(0));
        // Both expired at t=31, but dirty (2) ≤ threshold (2): gated.
        assert!(c.flusher_tick(t(31)).lpns.is_empty());
        assert_eq!(c.dirty_count(), 2);
        // A third dirty page crosses the threshold: every expired page
        // flushes, the young one stays.
        c.write(Lpn(2), t(32));
        let batch = c.flusher_tick(t(33));
        assert_eq!(batch.lpns, vec![Lpn(0), Lpn(1)]);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn unexpired_pages_never_flush_even_over_threshold() {
        let mut c = cache(20); // threshold 2
        for i in 0..5u64 {
            c.write(Lpn(i), t(i));
        }
        // Over threshold but nothing expired: the flusher waits.
        assert!(c.flusher_tick(t(6)).lpns.is_empty());
        assert_eq!(c.dirty_count(), 5);
    }

    #[test]
    fn full_cache_forces_dirty_writeback() {
        let mut c = cache(2);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(1));
        let effect = c.write(Lpn(2), t(2));
        assert_eq!(effect.forced_writebacks, vec![Lpn(0)]);
        assert_eq!(c.len(), 2);
        assert!(!c.contains(Lpn(0)));
        assert_eq!(c.stats().forced_writebacks, 1);
    }

    #[test]
    fn clean_pages_evicted_before_dirty() {
        let mut c = cache(2);
        c.write(Lpn(0), t(0));
        c.flusher_tick(t(31)); // Lpn(0) now clean
        c.write(Lpn(1), t(32));
        let effect = c.write(Lpn(2), t(33));
        assert!(effect.forced_writebacks.is_empty());
        assert!(!c.contains(Lpn(0)), "clean page evicted silently");
        assert_eq!(c.stats().clean_evictions, 1);
    }

    #[test]
    fn read_hit_and_miss() {
        let mut c = cache(4);
        c.write(Lpn(1), t(0));
        assert!(c.read(Lpn(1), t(1)));
        assert!(!c.read(Lpn(2), t(2)));
        // Miss cached the page clean.
        assert!(c.contains(Lpn(2)));
        assert!(!c.is_dirty(Lpn(2)));
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn read_miss_on_all_dirty_cache_does_not_evict() {
        let mut c = cache(2);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(1));
        assert!(!c.read(Lpn(2), t(2)));
        assert!(!c.contains(Lpn(2)), "no room without evicting dirty data");
        assert_eq!(c.dirty_count(), 2);
    }

    #[test]
    fn lru_clean_eviction_order_respects_recency() {
        let mut c = cache(3);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(1));
        c.flusher_tick(t(40)); // both clean
        // Touch Lpn(0) so Lpn(1) becomes LRU.
        assert!(c.read(Lpn(0), t(41)));
        c.write(Lpn(2), t(42));
        c.write(Lpn(3), t(43)); // must evict clean LRU = Lpn(1)
        assert!(c.contains(Lpn(0)));
        assert!(!c.contains(Lpn(1)));
    }

    #[test]
    fn dirty_pages_scan_is_oldest_first() {
        let mut c = cache(8);
        c.write(Lpn(3), t(2));
        c.write(Lpn(1), t(1));
        c.write(Lpn(2), t(3));
        let scan: Vec<(Lpn, SimTime)> = c.dirty_pages().collect();
        assert_eq!(
            scan,
            vec![(Lpn(1), t(1)), (Lpn(3), t(2)), (Lpn(2), t(3))]
        );
    }

    #[test]
    fn flush_exactly_at_expiry_boundary() {
        let mut c = cache(8);
        c.write(Lpn(1), t(0));
        // age == τ_expire counts as expired ("older than" is inclusive at
        // flusher granularity, matching the paper's Fig. 4 where pages
        // expire at the first wake-up at or after their deadline).
        let batch = c.flusher_tick(t(30));
        assert_eq!(batch.lpns, vec![Lpn(1)]);
    }

    #[test]
    fn same_timestamp_writes_flush_in_write_order() {
        let mut c = cache(8);
        c.write(Lpn(9), t(0));
        c.write(Lpn(4), t(0));
        c.write(Lpn(7), t(0));
        let batch = c.flusher_tick(t(30));
        assert_eq!(batch.lpns, vec![Lpn(9), Lpn(4), Lpn(7)]);
    }

    #[test]
    fn stats_total_writebacks() {
        let mut c = cache(2);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(1));
        c.write(Lpn(2), t(2)); // forced
        c.flusher_tick(t(40)); // expiry flushes
        assert_eq!(
            c.stats().total_writebacks(),
            c.stats().forced_writebacks + c.stats().flushed_expired
        );
        assert!(c.stats().total_writebacks() >= 2);
    }
}
