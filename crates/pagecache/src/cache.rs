//! The write-back page cache proper.
//!
//! # Data layout
//!
//! The cache used to keep a `HashMap<Lpn, Entry>` plus two `BTreeSet`
//! orderings (dirty-by-age, clean-by-recency). Every write and every
//! flusher step paid two tree updates with pointer-heavy node traffic.
//! It is now a **flat slab**: one `Vec<Slot>` holding every cached page,
//! an [`FxHashMap`] from `Lpn` to slot index, and two intrusive doubly
//! linked lists threaded through the slots with `u32` indices:
//!
//! * the **dirty list**, oldest first by `(last_update, seq)` — the
//!   flusher pops from its head, and [`PageCache::dirty_pages`] walks it
//!   without allocating;
//! * the **clean list** in LRU order — eviction pops the head, touches
//!   move a slot to the tail in O(1).
//!
//! Buffered writes almost always carry the youngest timestamp, so the
//! dirty list's sorted insert scans backward from the tail and is O(1)
//! in practice; it stays correct when the caller's clock is not
//! monotone (overlapping requests at queue depth > 1). Freed slots are
//! recycled through a free list threaded over the same `next` links, so
//! the slab never exceeds the configured capacity.
//!
//! # Dirty-age epoch counters
//!
//! On top of the dirty list the cache maintains a histogram of dirty
//! pages bucketed by *flusher epoch*: `e = ⌈last_update / p⌉` with `p`
//! the configured [`flusher_period`](PageCacheConfig::flusher_period).
//! Every dirty-list insert/remove adjusts one counter, so the
//! buffered-write predictor can read per-write-back-interval demand in
//! O(distinct epochs) instead of walking every dirty page
//! ([`dirty_epochs`](PageCache::dirty_epochs)). Pages sharing an epoch
//! share a write-back interval at every poll that is a multiple of `p`,
//! which is exactly when the engine polls.

use crate::{PageCacheConfig, PageCacheStats};
use jitgc_nand::Lpn;
use jitgc_sim::{FxHashMap, SimTime};

/// What a buffered write did to the cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteEffect {
    /// Dirty pages the cache had to write back *immediately* to make room
    /// (cache full of dirty data). The caller must submit these to the
    /// device now; they are unpredictable early flushes and one source of
    /// prediction error.
    pub forced_writebacks: Vec<Lpn>,
}

/// One flusher-thread wake-up's output: the dirty pages written back.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlushBatch {
    /// Flushed pages, oldest first. The caller submits these to the device.
    pub lpns: Vec<Lpn>,
    /// How many pages were flushed (all by `τ_expire` expiry; the paper's
    /// flusher model never writes back unexpired data).
    pub expired: usize,
}

/// Index sentinel terminating the intrusive lists.
const NIL: u32 = u32::MAX;

/// One cached page. A slot is always on exactly one list: dirty, clean,
/// or (when unoccupied) the free list, which reuses `next`.
#[derive(Debug, Clone, Copy)]
struct Slot {
    lpn: Lpn,
    dirty: bool,
    last_update: SimTime,
    /// Sequence number breaking age ties deterministically.
    seq: u64,
    prev: u32,
    next: u32,
}

/// A bounded write-back page cache with Linux-flusher semantics.
///
/// See the [crate documentation](crate) for the model. All mutating
/// operations take the current simulated time; the cache holds no clock.
#[derive(Debug)]
pub struct PageCache {
    config: PageCacheConfig,
    slots: Vec<Slot>,
    slot_of: FxHashMap<Lpn, u32>,
    /// Head of the free-slot list (threaded through `next`).
    free_head: u32,
    /// Dirty pages, oldest first by `(last_update, seq)`.
    dirty_head: u32,
    dirty_tail: u32,
    dirty_len: u64,
    /// Clean pages, least recently used at the head.
    clean_head: u32,
    clean_tail: u32,
    next_seq: u64,
    /// Dirty pages per flusher epoch `⌈last_update / p⌉`; zero counts are
    /// removed so iteration touches only live buckets.
    dirty_epochs: FxHashMap<u64, u64>,
    /// Cached `flusher_period` in microseconds (epoch divisor).
    period_us: u64,
    /// Bitmap of dirty LPNs (bit `l % 64` of word `l / 64`), maintained in
    /// lock-step with the dirty list so the predictor can snapshot the SIP
    /// set with one `memcpy` instead of walking the list.
    dirty_bits: Vec<u64>,
    stats: PageCacheStats,
}

impl PageCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: PageCacheConfig) -> Self {
        let period_us = config.flusher_period().as_micros();
        PageCache {
            config,
            slots: Vec::new(),
            slot_of: FxHashMap::default(),
            free_head: NIL,
            dirty_head: NIL,
            dirty_tail: NIL,
            dirty_len: 0,
            clean_head: NIL,
            clean_tail: NIL,
            next_seq: 0,
            dirty_epochs: FxHashMap::default(),
            period_us,
            dirty_bits: Vec::new(),
            stats: PageCacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &PageCacheConfig {
        &self.config
    }

    /// Cache statistics.
    #[must_use]
    pub fn stats(&self) -> &PageCacheStats {
        &self.stats
    }

    /// Number of cached pages (dirty + clean).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Number of dirty pages.
    #[must_use]
    pub fn dirty_count(&self) -> u64 {
        self.dirty_len
    }

    /// `true` if `lpn` is cached (dirty or clean).
    #[must_use]
    pub fn contains(&self, lpn: Lpn) -> bool {
        self.slot_of.contains_key(&lpn)
    }

    /// `true` if `lpn` is cached dirty.
    #[must_use]
    pub fn is_dirty(&self, lpn: Lpn) -> bool {
        self.slot_of
            .get(&lpn)
            .is_some_and(|&i| self.slots[i as usize].dirty)
    }

    /// A buffered write: marks `lpn` dirty with age zero. Rewriting an
    /// already-dirty page resets its age — the paper's `B → B′` case, which
    /// *delays* that page's flush.
    ///
    /// Returns the dirty pages (if any) that had to be force-written-back
    /// to make room.
    pub fn write(&mut self, lpn: Lpn, now: SimTime) -> WriteEffect {
        self.stats.writes += 1;
        let mut effect = WriteEffect::default();
        let idx = if let Some(&i) = self.slot_of.get(&lpn) {
            self.unlink(i);
            i
        } else {
            if self.slot_of.len() as u64 >= self.config.capacity_pages() {
                if let Some(victim) = self.evict_one() {
                    effect.forced_writebacks.push(victim);
                }
            }
            self.alloc_slot(lpn)
        };
        let seq = self.bump_seq();
        {
            let slot = &mut self.slots[idx as usize];
            slot.dirty = true;
            slot.last_update = now;
            slot.seq = seq;
        }
        self.dirty_insert_sorted(idx);
        effect
    }

    /// A buffered read: returns `true` on a cache hit. On a miss the page
    /// is assumed fetched from the device and cached clean.
    pub fn read(&mut self, lpn: Lpn, _now: SimTime) -> bool {
        if let Some(&i) = self.slot_of.get(&lpn) {
            self.stats.read_hits += 1;
            if !self.slots[i as usize].dirty {
                // Refresh LRU position: move to the most-recent tail.
                self.unlink(i);
                Self::link_tail(
                    &mut self.slots,
                    &mut self.clean_head,
                    &mut self.clean_tail,
                    i,
                );
            }
            true
        } else {
            self.stats.read_misses += 1;
            if self.slot_of.len() as u64 >= self.config.capacity_pages() {
                // Reads never force dirty writebacks; if everything is
                // dirty the fetched page simply is not cached.
                if self.clean_head == NIL {
                    return false;
                }
                self.evict_one();
            }
            let i = self.alloc_slot(lpn);
            {
                let slot = &mut self.slots[i as usize];
                slot.dirty = false;
                slot.last_update = SimTime::ZERO;
                slot.seq = 0;
            }
            Self::link_tail(
                &mut self.slots,
                &mut self.clean_head,
                &mut self.clean_tail,
                i,
            );
            false
        }
    }

    /// One flusher-thread wake-up at time `now`, following the paper's
    /// model of the Linux flusher (Sec. 3.2.1): dirty data is written back
    /// when **both** conditions hold — it is older than `τ_expire` *and*
    /// the total amount of dirty data exceeds the `τ_flush` threshold.
    /// When the conditions are met, every expired page is flushed
    /// (oldest first).
    ///
    /// This AND semantics is what makes the buffered-write predictor's
    /// relaxation an *over*-estimate: assuming expired pages always flush
    /// ignores that `τ_flush` may gate them, so the prediction errs high
    /// by at most `τ_flush` worth of pages — the paper's stated bound.
    ///
    /// Flushed pages stay cached clean.
    pub fn flusher_tick(&mut self, now: SimTime) -> FlushBatch {
        let mut batch = FlushBatch::default();
        let threshold = self.config.flush_threshold_pages();
        if self.dirty_len <= threshold {
            return batch;
        }
        while self.dirty_head != NIL {
            let head = self.dirty_head;
            let slot = &self.slots[head as usize];
            if now.saturating_since(slot.last_update) < self.config.tau_expire() {
                break;
            }
            let lpn = slot.lpn;
            self.mark_clean(head);
            batch.lpns.push(lpn);
            batch.expired += 1;
        }
        self.stats.flushed_expired += batch.expired as u64;
        batch
    }

    /// Scans dirty pages oldest-first, yielding `(lpn, last_update)` — the
    /// exact information the paper's buffered-write predictor extracts.
    /// A pointer walk over the intrusive dirty list: no allocation, no
    /// tree traversal.
    pub fn dirty_pages(&self) -> impl Iterator<Item = (Lpn, SimTime)> + '_ {
        std::iter::successors(
            (self.dirty_head != NIL).then_some(self.dirty_head),
            move |&i| {
                let next = self.slots[i as usize].next;
                (next != NIL).then_some(next)
            },
        )
        .map(move |i| {
            let slot = &self.slots[i as usize];
            (slot.lpn, slot.last_update)
        })
    }

    /// Iterates the dirty-age histogram as `(epoch, pages)` pairs, where
    /// `epoch = ⌈last_update / flusher_period⌉` in whole periods.
    /// Iteration order is unspecified; consumers must combine buckets
    /// order-independently (the predictor's demand sums are additive).
    pub fn dirty_epochs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.dirty_epochs.iter().map(|(&e, &n)| (e, n))
    }

    /// The dirty-LPN set as bitmap words: bit `l % 64` of word `l / 64`
    /// is set iff `Lpn(l)` is dirty. Exactly
    /// [`dirty_count`](Self::dirty_count) bits are set. The predictor
    /// snapshots this into the SIP list wholesale.
    #[must_use]
    pub fn dirty_lpn_words(&self) -> &[u64] {
        &self.dirty_bits
    }

    /// Writer throttling (Linux `balance_dirty_pages`): when total dirty
    /// data exceeds the hard `dirty_ratio` limit, the *writing process*
    /// must write back the oldest dirty pages itself, synchronously, until
    /// the count is back at the flush threshold. Returns the pages the
    /// caller must now submit to the device; they stay cached clean.
    pub fn throttle_excess(&mut self) -> Vec<Lpn> {
        let mut out = Vec::new();
        if self.dirty_len <= self.config.throttle_threshold_pages() {
            return out;
        }
        let floor = self.config.flush_threshold_pages();
        while self.dirty_len > floor {
            let head = self.dirty_head;
            debug_assert_ne!(head, NIL, "dirty_len over floor with empty list");
            let lpn = self.slots[head as usize].lpn;
            self.mark_clean(head);
            out.push(lpn);
        }
        self.stats.throttled_writebacks += out.len() as u64;
        out
    }

    /// Drops `lpn` from the cache without writing it back, dirty or not.
    /// Used when a direct write supersedes the cached copy (a later flush
    /// of stale data must not clobber the device) and on TRIM.
    ///
    /// Returns `true` if the page was cached.
    pub fn invalidate(&mut self, lpn: Lpn) -> bool {
        let Some(i) = self.slot_of.remove(&lpn) else {
            return false;
        };
        self.unlink(i);
        self.free_slot(i);
        true
    }

    // ------------------------------------------------------------------
    // Dirty-age epoch counters and dirty-LPN bitmap
    // ------------------------------------------------------------------

    /// Flusher epoch of a dirty timestamp: `⌈t / p⌉` in whole periods.
    fn epoch_of(&self, at: SimTime) -> u64 {
        at.as_micros().div_ceil(self.period_us)
    }

    /// Records `lpn` entering the dirty list with timestamp `at`.
    fn dirty_track_add(&mut self, lpn: Lpn, at: SimTime) {
        let e = self.epoch_of(at);
        *self.dirty_epochs.entry(e).or_insert(0) += 1;
        let w = (lpn.0 / 64) as usize;
        if w >= self.dirty_bits.len() {
            self.dirty_bits.resize(w + 1, 0);
        }
        debug_assert_eq!(self.dirty_bits[w] & (1 << (lpn.0 % 64)), 0);
        self.dirty_bits[w] |= 1 << (lpn.0 % 64);
    }

    /// Records `lpn` leaving the dirty list; `at` is the timestamp it was
    /// tracked under.
    fn dirty_track_remove(&mut self, lpn: Lpn, at: SimTime) {
        let e = self.epoch_of(at);
        match self.dirty_epochs.get_mut(&e) {
            Some(n) if *n > 1 => *n -= 1,
            Some(_) => {
                self.dirty_epochs.remove(&e);
            }
            None => debug_assert!(false, "epoch counter underflow at epoch {e}"),
        }
        let w = (lpn.0 / 64) as usize;
        debug_assert_ne!(self.dirty_bits[w] & (1 << (lpn.0 % 64)), 0);
        self.dirty_bits[w] &= !(1 << (lpn.0 % 64));
    }

    // ------------------------------------------------------------------
    // Slab plumbing
    // ------------------------------------------------------------------

    /// Takes a slot for `lpn` off the free list (or grows the slab) and
    /// registers it in the index. The slot's list links are left NIL.
    fn alloc_slot(&mut self, lpn: Lpn) -> u32 {
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slots[idx as usize].next;
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                lpn,
                dirty: false,
                last_update: SimTime::ZERO,
                seq: 0,
                prev: NIL,
                next: NIL,
            });
            idx
        };
        let slot = &mut self.slots[idx as usize];
        slot.lpn = lpn;
        slot.prev = NIL;
        slot.next = NIL;
        self.slot_of.insert(lpn, idx);
        idx
    }

    /// Returns an unlinked slot to the free list.
    fn free_slot(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.prev = NIL;
        slot.next = self.free_head;
        self.free_head = idx;
    }

    /// Unlinks `idx` from whichever list (dirty or clean) it is on.
    fn unlink(&mut self, idx: u32) {
        if self.slots[idx as usize].dirty {
            let (lpn, at) = {
                let slot = &self.slots[idx as usize];
                (slot.lpn, slot.last_update)
            };
            Self::detach(
                &mut self.slots,
                &mut self.dirty_head,
                &mut self.dirty_tail,
                idx,
            );
            self.dirty_len -= 1;
            self.dirty_track_remove(lpn, at);
        } else {
            Self::detach(
                &mut self.slots,
                &mut self.clean_head,
                &mut self.clean_tail,
                idx,
            );
        }
    }

    /// Moves the dirty slot `idx` (currently at the dirty head) onto the
    /// clean list's MRU tail.
    fn mark_clean(&mut self, idx: u32) {
        debug_assert!(self.slots[idx as usize].dirty);
        let (lpn, at) = {
            let slot = &self.slots[idx as usize];
            (slot.lpn, slot.last_update)
        };
        Self::detach(
            &mut self.slots,
            &mut self.dirty_head,
            &mut self.dirty_tail,
            idx,
        );
        self.dirty_len -= 1;
        self.dirty_track_remove(lpn, at);
        self.slots[idx as usize].dirty = false;
        Self::link_tail(
            &mut self.slots,
            &mut self.clean_head,
            &mut self.clean_tail,
            idx,
        );
    }

    /// Inserts the dirty slot `idx` into the dirty list keeping the
    /// oldest-first `(last_update, seq)` order. New writes are almost
    /// always the youngest, so the backward scan from the tail terminates
    /// immediately in the common case.
    fn dirty_insert_sorted(&mut self, idx: u32) {
        let (lpn, key) = {
            let slot = &self.slots[idx as usize];
            (slot.lpn, (slot.last_update, slot.seq))
        };
        self.dirty_track_add(lpn, key.0);
        let mut after = self.dirty_tail;
        while after != NIL {
            let slot = &self.slots[after as usize];
            if (slot.last_update, slot.seq) <= key {
                break;
            }
            after = slot.prev;
        }
        Self::link_after(
            &mut self.slots,
            &mut self.dirty_head,
            &mut self.dirty_tail,
            after,
            idx,
        );
        self.dirty_len += 1;
    }

    /// Evicts one page to make room: LRU clean if available, else the
    /// oldest dirty page (returned so the caller can write it back).
    fn evict_one(&mut self) -> Option<Lpn> {
        if self.clean_head != NIL {
            let idx = self.clean_head;
            let lpn = self.slots[idx as usize].lpn;
            Self::detach(
                &mut self.slots,
                &mut self.clean_head,
                &mut self.clean_tail,
                idx,
            );
            self.slot_of.remove(&lpn);
            self.free_slot(idx);
            self.stats.clean_evictions += 1;
            None
        } else if self.dirty_head != NIL {
            let idx = self.dirty_head;
            let lpn = self.slots[idx as usize].lpn;
            let at = self.slots[idx as usize].last_update;
            Self::detach(
                &mut self.slots,
                &mut self.dirty_head,
                &mut self.dirty_tail,
                idx,
            );
            self.dirty_len -= 1;
            self.dirty_track_remove(lpn, at);
            self.slot_of.remove(&lpn);
            self.free_slot(idx);
            self.stats.forced_writebacks += 1;
            Some(lpn)
        } else {
            None
        }
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    // ------------------------------------------------------------------
    // Intrusive-list primitives (associated fns so callers can split
    // borrows between the slab and the list heads)
    // ------------------------------------------------------------------

    /// Removes `idx` from the list rooted at `head`/`tail`.
    fn detach(slots: &mut [Slot], head: &mut u32, tail: &mut u32, idx: u32) {
        let (prev, next) = {
            let slot = &slots[idx as usize];
            (slot.prev, slot.next)
        };
        if prev != NIL {
            slots[prev as usize].next = next;
        } else {
            debug_assert_eq!(*head, idx, "slot not on the list it claims");
            *head = next;
        }
        if next != NIL {
            slots[next as usize].prev = prev;
        } else {
            debug_assert_eq!(*tail, idx, "slot not on the list it claims");
            *tail = prev;
        }
        slots[idx as usize].prev = NIL;
        slots[idx as usize].next = NIL;
    }

    /// Appends `idx` at the tail of the list rooted at `head`/`tail`.
    fn link_tail(slots: &mut [Slot], head: &mut u32, tail: &mut u32, idx: u32) {
        Self::link_after(slots, head, tail, *tail, idx);
    }

    /// Inserts `idx` right after `after` (`NIL` = at the head).
    fn link_after(slots: &mut [Slot], head: &mut u32, tail: &mut u32, after: u32, idx: u32) {
        let next = if after == NIL {
            *head
        } else {
            slots[after as usize].next
        };
        slots[idx as usize].prev = after;
        slots[idx as usize].next = next;
        if after != NIL {
            slots[after as usize].next = idx;
        } else {
            *head = idx;
        }
        if next != NIL {
            slots[next as usize].prev = idx;
        } else {
            *tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_sim::SimDuration;

    fn cache(capacity: u64) -> PageCache {
        PageCache::new(
            PageCacheConfig::builder()
                .capacity_pages(capacity)
                .tau_expire(SimDuration::from_secs(30))
                .tau_flush_permille(100)
                .build(),
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn write_makes_dirty() {
        let mut c = cache(8);
        c.write(Lpn(1), t(0));
        assert!(c.is_dirty(Lpn(1)));
        assert_eq!(c.dirty_count(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn expired_pages_flush_in_age_order() {
        let mut c = cache(8);
        c.write(Lpn(2), t(0));
        c.write(Lpn(1), t(5));
        let batch = c.flusher_tick(t(36));
        assert_eq!(batch.lpns, vec![Lpn(2), Lpn(1)]);
        assert_eq!(batch.expired, 2);
        assert_eq!(c.dirty_count(), 0);
        // Flushed pages stay cached clean.
        assert!(c.contains(Lpn(1)));
        assert!(!c.is_dirty(Lpn(1)));
    }

    #[test]
    fn unexpired_pages_stay_dirty() {
        let mut c = cache(100); // pressure threshold 10 pages
        c.write(Lpn(1), t(10));
        let batch = c.flusher_tick(t(35));
        assert!(batch.lpns.is_empty());
        assert!(c.is_dirty(Lpn(1)));
    }

    #[test]
    fn rewrite_resets_age_and_delays_flush() {
        // The paper's B → B′ case (Fig. 4): updating dirty data postpones
        // its write-back.
        let mut c = cache(8); // τ_flush threshold 0: expiry alone gates
        c.write(Lpn(1), t(0));
        c.write(Lpn(1), t(20)); // B′
        let batch = c.flusher_tick(t(35));
        assert!(batch.lpns.is_empty(), "age was reset at t=20");
        let batch = c.flusher_tick(t(50));
        assert_eq!(batch.lpns, vec![Lpn(1)]);
        // Still a single cached page, not two.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn tau_flush_gates_expired_pages() {
        // Capacity 20 → threshold 2 pages (10 %). The paper's flusher
        // writes back expired data only when total dirty data exceeds
        // τ_flush (both conditions ANDed).
        let mut c = cache(20);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(0));
        // Both expired at t=31, but dirty (2) ≤ threshold (2): gated.
        assert!(c.flusher_tick(t(31)).lpns.is_empty());
        assert_eq!(c.dirty_count(), 2);
        // A third dirty page crosses the threshold: every expired page
        // flushes, the young one stays.
        c.write(Lpn(2), t(32));
        let batch = c.flusher_tick(t(33));
        assert_eq!(batch.lpns, vec![Lpn(0), Lpn(1)]);
        assert_eq!(c.dirty_count(), 1);
    }

    #[test]
    fn unexpired_pages_never_flush_even_over_threshold() {
        let mut c = cache(20); // threshold 2
        for i in 0..5u64 {
            c.write(Lpn(i), t(i));
        }
        // Over threshold but nothing expired: the flusher waits.
        assert!(c.flusher_tick(t(6)).lpns.is_empty());
        assert_eq!(c.dirty_count(), 5);
    }

    #[test]
    fn full_cache_forces_dirty_writeback() {
        let mut c = cache(2);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(1));
        let effect = c.write(Lpn(2), t(2));
        assert_eq!(effect.forced_writebacks, vec![Lpn(0)]);
        assert_eq!(c.len(), 2);
        assert!(!c.contains(Lpn(0)));
        assert_eq!(c.stats().forced_writebacks, 1);
    }

    #[test]
    fn clean_pages_evicted_before_dirty() {
        let mut c = cache(2);
        c.write(Lpn(0), t(0));
        c.flusher_tick(t(31)); // Lpn(0) now clean
        c.write(Lpn(1), t(32));
        let effect = c.write(Lpn(2), t(33));
        assert!(effect.forced_writebacks.is_empty());
        assert!(!c.contains(Lpn(0)), "clean page evicted silently");
        assert_eq!(c.stats().clean_evictions, 1);
    }

    #[test]
    fn read_hit_and_miss() {
        let mut c = cache(4);
        c.write(Lpn(1), t(0));
        assert!(c.read(Lpn(1), t(1)));
        assert!(!c.read(Lpn(2), t(2)));
        // Miss cached the page clean.
        assert!(c.contains(Lpn(2)));
        assert!(!c.is_dirty(Lpn(2)));
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn read_miss_on_all_dirty_cache_does_not_evict() {
        let mut c = cache(2);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(1));
        assert!(!c.read(Lpn(2), t(2)));
        assert!(!c.contains(Lpn(2)), "no room without evicting dirty data");
        assert_eq!(c.dirty_count(), 2);
    }

    #[test]
    fn lru_clean_eviction_order_respects_recency() {
        let mut c = cache(3);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(1));
        c.flusher_tick(t(40)); // both clean
                               // Touch Lpn(0) so Lpn(1) becomes LRU.
        assert!(c.read(Lpn(0), t(41)));
        c.write(Lpn(2), t(42));
        c.write(Lpn(3), t(43)); // must evict clean LRU = Lpn(1)
        assert!(c.contains(Lpn(0)));
        assert!(!c.contains(Lpn(1)));
    }

    #[test]
    fn dirty_pages_scan_is_oldest_first() {
        let mut c = cache(8);
        c.write(Lpn(3), t(2));
        c.write(Lpn(1), t(1));
        c.write(Lpn(2), t(3));
        let scan: Vec<(Lpn, SimTime)> = c.dirty_pages().collect();
        assert_eq!(scan, vec![(Lpn(1), t(1)), (Lpn(3), t(2)), (Lpn(2), t(3))]);
    }

    #[test]
    fn flush_exactly_at_expiry_boundary() {
        let mut c = cache(8);
        c.write(Lpn(1), t(0));
        // age == τ_expire counts as expired ("older than" is inclusive at
        // flusher granularity, matching the paper's Fig. 4 where pages
        // expire at the first wake-up at or after their deadline).
        let batch = c.flusher_tick(t(30));
        assert_eq!(batch.lpns, vec![Lpn(1)]);
    }

    #[test]
    fn same_timestamp_writes_flush_in_write_order() {
        let mut c = cache(8);
        c.write(Lpn(9), t(0));
        c.write(Lpn(4), t(0));
        c.write(Lpn(7), t(0));
        let batch = c.flusher_tick(t(30));
        assert_eq!(batch.lpns, vec![Lpn(9), Lpn(4), Lpn(7)]);
    }

    #[test]
    fn stats_total_writebacks() {
        let mut c = cache(2);
        c.write(Lpn(0), t(0));
        c.write(Lpn(1), t(1));
        c.write(Lpn(2), t(2)); // forced
        c.flusher_tick(t(40)); // expiry flushes
        assert_eq!(
            c.stats().total_writebacks(),
            c.stats().forced_writebacks + c.stats().flushed_expired
        );
        assert!(c.stats().total_writebacks() >= 2);
    }

    #[test]
    fn out_of_order_timestamps_keep_dirty_list_sorted() {
        // Requests overlapping at queue depth > 1 can reach the cache
        // with non-monotone timestamps; the dirty list must still be
        // oldest-first.
        let mut c = cache(8);
        c.write(Lpn(0), t(10));
        c.write(Lpn(1), t(5));
        c.write(Lpn(2), t(7));
        let scan: Vec<(Lpn, SimTime)> = c.dirty_pages().collect();
        assert_eq!(scan, vec![(Lpn(1), t(5)), (Lpn(2), t(7)), (Lpn(0), t(10))]);
        let batch = c.flusher_tick(t(40));
        assert_eq!(batch.lpns, vec![Lpn(1), Lpn(2), Lpn(0)]);
    }

    #[test]
    fn slots_are_recycled_not_leaked() {
        let mut c = cache(4);
        for round in 0..50u64 {
            for i in 0..4u64 {
                c.write(Lpn(i), t(round));
            }
            c.flusher_tick(t(round) + SimDuration::from_secs(31));
            for i in 0..4u64 {
                c.invalidate(Lpn(i));
            }
        }
        assert!(c.is_empty());
        // The slab never grew beyond the configured capacity.
        assert!(c.slots.len() <= 4, "slab leaked slots: {}", c.slots.len());
    }

    #[test]
    fn epoch_counters_match_dirty_scan_under_churn() {
        let mut c = cache(6);
        let p_us = c.config().flusher_period().as_micros();
        for step in 0..400u64 {
            let lpn = Lpn(step % 11);
            // Sub-second timestamps so epochs straddle period boundaries.
            let now = SimTime::from_micros(step * 1_700_000);
            match step % 6 {
                0..=2 => {
                    c.write(lpn, now);
                }
                3 => {
                    c.read(lpn, now);
                }
                4 => {
                    c.invalidate(lpn);
                }
                _ => {
                    c.flusher_tick(now);
                }
            }
            let mut scanned: std::collections::BTreeMap<u64, u64> = Default::default();
            for (_, at) in c.dirty_pages() {
                *scanned.entry(at.as_micros().div_ceil(p_us)).or_insert(0) += 1;
            }
            let mut counted: std::collections::BTreeMap<u64, u64> = Default::default();
            for (e, n) in c.dirty_epochs() {
                assert!(n > 0, "zero bucket retained at step {step}");
                counted.insert(e, n);
            }
            assert_eq!(counted, scanned, "epoch histogram desynced at {step}");
            // The dirty-LPN bitmap tracks exactly the dirty set.
            let words = c.dirty_lpn_words();
            let popcount: u64 = words.iter().map(|w| u64::from(w.count_ones())).sum();
            assert_eq!(popcount, c.dirty_count(), "bitmap popcount at {step}");
            for (lpn, _) in c.dirty_pages() {
                assert_ne!(
                    words[(lpn.0 / 64) as usize] & (1 << (lpn.0 % 64)),
                    0,
                    "dirty {lpn:?} missing from bitmap at {step}"
                );
            }
        }
    }

    #[test]
    fn mixed_churn_preserves_list_integrity() {
        // Interleave every mutating operation and re-derive the dirty
        // count from a full scan each step.
        let mut c = cache(6);
        let mut expect_present: std::collections::BTreeSet<u64> = Default::default();
        for step in 0..200u64 {
            let lpn = Lpn(step % 9);
            match step % 5 {
                0 | 1 => {
                    c.write(lpn, t(step));
                    expect_present.insert(lpn.0);
                }
                2 => {
                    c.read(lpn, t(step));
                }
                3 => {
                    c.invalidate(lpn);
                    expect_present.remove(&lpn.0);
                }
                _ => {
                    c.flusher_tick(t(step));
                }
            }
            let scanned = c.dirty_pages().count() as u64;
            assert_eq!(scanned, c.dirty_count(), "dirty list desynced at {step}");
            assert!(c.len() as u64 <= 6);
            // The scan is sorted oldest-first.
            let ages: Vec<SimTime> = c.dirty_pages().map(|(_, at)| at).collect();
            assert!(ages.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
