//! Page cache statistics.

/// Cumulative counters for one [`PageCache`](crate::PageCache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PageCacheStats {
    /// Buffered writes absorbed by the cache.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Read misses (data had to come from the device).
    pub read_misses: u64,
    /// Dirty pages flushed because they aged past `τ_expire` (while total
    /// dirty data exceeded the `τ_flush` threshold).
    pub flushed_expired: u64,
    /// Dirty pages forcibly written back because the cache was full and a
    /// new page needed space.
    pub forced_writebacks: u64,
    /// Dirty pages written back synchronously by throttled writers
    /// (Linux `balance_dirty_pages`).
    pub throttled_writebacks: u64,
    /// Clean pages silently dropped to make room.
    pub clean_evictions: u64,
}

impl PageCacheStats {
    /// Total dirty pages written back to the device by any path.
    #[must_use]
    pub fn total_writebacks(&self) -> u64 {
        self.flushed_expired + self.forced_writebacks + self.throttled_writebacks
    }

    /// Read hit ratio, or `None` before the first read.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        let total = self.read_hits + self.read_misses;
        (total > 0).then(|| self.read_hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let s = PageCacheStats {
            flushed_expired: 8,
            forced_writebacks: 2,
            read_hits: 9,
            read_misses: 1,
            ..PageCacheStats::default()
        };
        assert_eq!(s.total_writebacks(), 10);
        assert_eq!(s.hit_ratio(), Some(0.9));
    }

    #[test]
    fn hit_ratio_none_without_reads() {
        assert_eq!(PageCacheStats::default().hit_ratio(), None);
    }
}
