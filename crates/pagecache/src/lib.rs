//! Linux-style write-back page cache model.
//!
//! The paper's buffered-write predictor works *because* the OS page cache
//! is predictable: dirty data written by applications sits in memory until
//! the flusher thread writes it back, and the flusher's rules are known.
//! This crate models exactly the behaviour the predictor exploits
//! (Sec. 3.2.1):
//!
//! * A dirty page becomes flushable once it is **older than `τ_expire`**
//!   (default 30 s); updating a page resets its age (the paper's `B → B′`
//!   example).
//! * The flusher writes expired pages back only while total dirty data
//!   exceeds the **`τ_flush` threshold** (default 10 % of cache capacity) —
//!   the paper's two flush conditions are ANDed, which is exactly why the
//!   predictor's relaxation of condition 2 over-estimates by at most
//!   `τ_flush`.
//! * The flusher runs every `p` seconds (default 5 s) — driven by the
//!   caller via [`PageCache::flusher_tick`]; the cache itself holds no
//!   clock.
//!
//! The cache also exposes [`PageCache::dirty_pages`], the dirty-age scan
//! the predictor performs, in deterministic oldest-first order.
//!
//! # Example
//!
//! ```
//! use jitgc_pagecache::{PageCache, PageCacheConfig};
//! use jitgc_nand::Lpn;
//! use jitgc_sim::{SimDuration, SimTime};
//!
//! let config = PageCacheConfig::builder()
//!     .capacity_pages(1024)
//!     .tau_expire(SimDuration::from_secs(30))
//!     .tau_flush_permille(0) // flush on expiry alone
//!     .build();
//! let mut cache = PageCache::new(config);
//!
//! cache.write(Lpn(7), SimTime::ZERO);
//! // Before expiry nothing is flushed...
//! assert!(cache.flusher_tick(SimTime::from_secs(5)).lpns.is_empty());
//! // ...after expiry the page is written back.
//! let batch = cache.flusher_tick(SimTime::from_secs(35));
//! assert_eq!(batch.lpns, vec![Lpn(7)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod stats;

pub use cache::{FlushBatch, PageCache, WriteEffect};
pub use config::{PageCacheConfig, PageCacheConfigBuilder};
pub use stats::PageCacheStats;
