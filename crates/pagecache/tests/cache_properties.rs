#![cfg(feature = "proptest")]

//! Property-based tests of the page cache's invariants.

use jitgc_nand::Lpn;
use jitgc_pagecache::{PageCache, PageCacheConfig};
use jitgc_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const CAPACITY: u64 = 32;

fn cache() -> PageCache {
    PageCache::new(
        PageCacheConfig::builder()
            .capacity_pages(CAPACITY)
            .tau_expire(SimDuration::from_secs(30))
            .tau_flush_permille(100)
            .throttle_permille(500)
            .build(),
    )
}

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Read(u64),
    Invalidate(u64),
    Flush,
    Throttle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..64u64).prop_map(Op::Write),
        2 => (0..64u64).prop_map(Op::Read),
        1 => (0..64u64).prop_map(Op::Invalidate),
        1 => Just(Op::Flush),
        1 => Just(Op::Throttle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The cache never exceeds capacity, dirty count never exceeds size,
    /// and every page handed out for write-back really was dirty.
    #[test]
    fn capacity_and_dirty_invariants(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut c = cache();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            match op {
                Op::Write(lpn) => {
                    let effect = c.write(Lpn(lpn), now);
                    // A forced write-back means the cache was at capacity.
                    if !effect.forced_writebacks.is_empty() {
                        prop_assert!(c.len() as u64 >= CAPACITY - 1);
                    }
                }
                Op::Read(lpn) => { let _ = c.read(Lpn(lpn), now); }
                Op::Invalidate(lpn) => { let _ = c.invalidate(Lpn(lpn)); }
                Op::Flush => {
                    for lpn in c.flusher_tick(now).lpns {
                        // Flushed pages stay cached, now clean.
                        prop_assert!(c.contains(lpn));
                        prop_assert!(!c.is_dirty(lpn));
                    }
                }
                Op::Throttle => {
                    for lpn in c.throttle_excess() {
                        prop_assert!(c.contains(lpn));
                        prop_assert!(!c.is_dirty(lpn));
                    }
                }
            }
            prop_assert!(c.len() as u64 <= CAPACITY);
            prop_assert!(c.dirty_count() <= c.len() as u64);
            // The dirty scan and the dirty counter agree.
            prop_assert_eq!(c.dirty_pages().count() as u64, c.dirty_count());
        }
    }

    /// Dirty pages are scanned oldest-first: last_update values are
    /// non-decreasing along the scan.
    #[test]
    fn dirty_scan_is_sorted(writes in proptest::collection::vec((0..64u64, 0..100u64), 1..100)) {
        let mut c = cache();
        for (lpn, at) in writes {
            c.write(Lpn(lpn), SimTime::from_secs(at));
        }
        let scan: Vec<SimTime> = c.dirty_pages().map(|(_, t)| t).collect();
        prop_assert!(scan.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Flusher AND-semantics: nothing flushes while the dirty total is at
    /// or below the τ_flush threshold, regardless of age.
    #[test]
    fn tau_flush_gates(count in 1..=3u64) {
        // Threshold is 10 % of 32 = 3 pages.
        let mut c = cache();
        for lpn in 0..count {
            c.write(Lpn(lpn), SimTime::ZERO);
        }
        let batch = c.flusher_tick(SimTime::from_secs(1_000));
        prop_assert!(batch.lpns.is_empty(), "dirty {} ≤ threshold 3 must gate", count);
    }

    /// Throttling brings the dirty count down to the flush threshold
    /// whenever it exceeded the hard limit, and not otherwise.
    #[test]
    fn throttle_restores_threshold(count in 0..32u64) {
        let mut c = cache();
        for lpn in 0..count {
            c.write(Lpn(lpn), SimTime::ZERO);
        }
        let throttle_limit = c.config().throttle_threshold_pages();
        let flush_floor = c.config().flush_threshold_pages();
        let before = c.dirty_count();
        let out = c.throttle_excess();
        if before > throttle_limit {
            prop_assert_eq!(c.dirty_count(), flush_floor);
            prop_assert_eq!(out.len() as u64, before - flush_floor);
        } else {
            prop_assert!(out.is_empty());
            prop_assert_eq!(c.dirty_count(), before);
        }
    }
}
