#![cfg(feature = "proptest")]

//! Property-based tests of the analytical model's invariants.
//!
//! Like the other `proptest`-gated suites in this workspace, this file
//! compiles only with `--features proptest`, which additionally requires
//! adding the `proptest` crate itself on a machine with registry access
//! (the feature is a bare `cfg` switch; see the workspace `Cargo.toml`).

use jitgc_core::system::{SystemConfig, VictimKind};
use jitgc_model::{predict, solve_cycle, Combo, PolicyModel, WorkloadSpec};
use jitgc_workload::BenchmarkKind;
use proptest::prelude::*;

/// A `small_for_tests` system with the given over-provisioning.
fn system_with_op(op_permille: u64) -> SystemConfig {
    let mut system = SystemConfig::small_for_tests();
    system.ftl = system.ftl.to_builder().op_permille(op_permille).build();
    system
}

fn any_policy() -> impl Strategy<Value = PolicyModel> {
    prop_oneof![
        Just(PolicyModel::NoBgc),
        (100..2000u64).prop_map(|permille| PolicyModel::Reserved { permille }),
        Just(PolicyModel::Idle),
        Just(PolicyModel::Adp),
        Just(PolicyModel::Jit { sip: true }),
        Just(PolicyModel::Jit { sip: false }),
    ]
}

fn any_benchmark() -> impl Strategy<Value = BenchmarkKind> {
    proptest::sample::select(BenchmarkKind::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every feasible prediction amplifies: device programs can never be
    /// fewer than host writes.
    #[test]
    fn waf_at_least_one(
        op in 50..600u64,
        policy in any_policy(),
        benchmark in any_benchmark(),
        iops in 50.0..2_000.0f64,
    ) {
        let system = system_with_op(op);
        let spec = WorkloadSpec::for_system(&system, iops, 512.0);
        let p = predict(&system, policy, benchmark, &spec);
        if p.feasible {
            prop_assert!(p.waf >= 1.0, "feasible WAF {} < 1", p.waf);
            prop_assert!(p.waf.is_finite());
        } else {
            prop_assert!(p.waf >= 1.0);
        }
    }

    /// More over-provisioning never hurts: WAF is non-increasing in OP
    /// for a fixed policy and workload (the workload spec is pinned to
    /// the smaller-OP system so only physical space grows).
    #[test]
    fn waf_monotone_non_increasing_in_op(
        op_lo in 50..400u64,
        extra in 50..600u64,
        policy in any_policy(),
        benchmark in any_benchmark(),
    ) {
        let lo = system_with_op(op_lo);
        let hi = system_with_op(op_lo + extra);
        let spec = WorkloadSpec::for_system(&lo, 500.0, 512.0);
        let p_lo = predict(&lo, policy, benchmark, &spec);
        let p_hi = predict(&hi, policy, benchmark, &spec);
        // 1e-6 relative slack for bisection tolerance.
        prop_assert!(
            p_hi.waf <= p_lo.waf * (1.0 + 1e-6),
            "WAF rose with OP: {} (OP {}) -> {} (OP {})",
            p_lo.waf, op_lo, p_hi.waf, op_lo + extra
        );
    }

    /// Lifetime scales with the erase budget: doubling per-block
    /// endurance never shortens predicted lifetime, and with WAF fixed it
    /// scales linearly.
    #[test]
    fn lifetime_monotone_in_endurance(
        endurance in 100..10_000u64,
        factor in 2..10u64,
        benchmark in any_benchmark(),
    ) {
        let base = SystemConfig::small_for_tests();
        let mut lo = base.clone();
        lo.ftl = lo.ftl.to_builder().endurance_limit(endurance).build();
        let mut hi = base;
        hi.ftl = hi.ftl.to_builder().endurance_limit(endurance * factor).build();
        let spec = WorkloadSpec::for_system(&lo, 500.0, 512.0);
        let p_lo = predict(&lo, PolicyModel::NoBgc, benchmark, &spec);
        let p_hi = predict(&hi, PolicyModel::NoBgc, benchmark, &spec);
        if let (Some(l_lo), Some(l_hi)) = (p_lo.lifetime_host_bytes, p_hi.lifetime_host_bytes) {
            prop_assert!(l_hi >= l_lo, "lifetime fell with endurance: {l_lo} -> {l_hi}");
            let ratio = l_hi / l_lo;
            prop_assert!(
                (ratio - factor as f64).abs() < 1e-6 * factor as f64,
                "lifetime not linear in erase budget: ratio {ratio}, factor {factor}"
            );
        } else {
            prop_assert!(false, "endurance set but lifetime missing");
        }
    }

    /// The FIFO-cycle solver reproduces the classical uniform-overwrite
    /// fixed point `x/(1 − e^(−x)) = 1/ρ` (WAF = x·ρ·A-form, Desnoyers):
    /// feed a single pure-Poisson combo and check the solved WAF against
    /// a direct numerical solution of the scalar fixed point.
    #[test]
    fn uniform_combo_matches_desnoyers_fixed_point(
        utilization in 0.40..0.95f64,
        pages in 10_000.0..1_000_000.0f64,
        rate in 0.001..10.0f64,
    ) {
        let t_pages = pages / utilization;
        let combo = Combo { pages, det: 0.0, poisson: rate, trim: 0.0, buffered: 0.0 };
        let solution = solve_cycle(&[combo], t_pages, 0.0)
            .expect("uniform overwrite below utilization 1 is feasible");

        // Scalar fixed point: x = λT solves x/(1 − e^(−x)) = 1/ρ, and
        // WAF = x / (1 − e^(−x)) · ρ ... equivalently WAF = t/(host per
        // cycle); solve by bisection on x.
        let rho = utilization;
        let f = |x: f64| x / (1.0 - (-x).exp()) - 1.0 / rho;
        let (mut lo, mut hi) = (1e-9, 50.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) > 0.0 { hi = mid } else { lo = mid }
        }
        let x = 0.5 * (lo + hi);
        let expected_waf = x / (1.0 - (-x).exp()) * rho;
        prop_assert!(
            (solution.waf - expected_waf).abs() <= 1e-3 * expected_waf,
            "solver WAF {} vs Desnoyers {} at rho {}",
            solution.waf, expected_waf, rho
        );
    }

    /// Small-scale end-to-end sanity: under the model's control
    /// conditions (No-BGC, FIFO victim) the model tracks the simulator
    /// within a factor of two on the small test system, for any seed.
    #[test]
    fn small_scale_model_tracks_simulator(seed in 0..500u64) {
        use jitgc_core::policy::NoBgc;
        use jitgc_core::system::SsdSystem;
        use jitgc_sim::SimDuration;
        use jitgc_workload::WorkloadConfig;

        let mut system = SystemConfig::small_for_tests();
        system.victim = VictimKind::Fifo;
        let spec = WorkloadSpec::for_system(&system, 500.0, 64.0);
        let model = predict(&system, PolicyModel::NoBgc, BenchmarkKind::Ycsb, &spec);

        let wl = WorkloadConfig::builder()
            .working_set_pages(spec.working_set_pages)
            .duration(SimDuration::from_secs(120))
            .mean_iops(spec.mean_iops)
            .burst_mean(spec.burst_mean)
            .seed(seed)
            .build();
        let report = SsdSystem::new(
            system.clone(),
            Box::new(NoBgc),
            BenchmarkKind::Ycsb.build(wl),
        )
        .run();
        let sim = report.waf.expect("host writes happened");
        let ratio = model.waf / sim;
        prop_assert!(
            (0.5..=2.0).contains(&ratio),
            "model {} vs sim {} (seed {seed}): ratio {ratio} outside [0.5, 2]",
            model.waf, sim
        );
    }
}
