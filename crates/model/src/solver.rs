//! The steady-state FIFO-cycle balance and its fixed-point solver.
//!
//! **Model.** A log-structured FTL under steady load behaves like a FIFO
//! cycle over its `t` physical data pages: the write frontier advances,
//! and by the time it returns to a block (one *cycle* later) the block is
//! cleaned — still-valid pages are copied to the frontier, dead ones are
//! dropped. Per cycle every physical page is programmed exactly once, so
//! with `D` host (device-level) page writes per cycle the write
//! amplification is `A = t / D`.
//!
//! Let the cycle last `T` seconds. A page of class `c` (see
//! [`Combo`](crate::Combo)) written at the frontier *survives* to its
//! cleaning one cycle later with probability
//!
//! ```text
//! s_c(T) = max(0, 1 − det_c·T) · exp(−(poisson_c + trim_c)·T)
//! ```
//!
//! — a deterministic sweep kills it with certainty once the sweep period
//! elapses, random overwrites and trims kill it memorylessly. Births into
//! class `c` per cycle are host writes plus copies of its survivors:
//! `b_c = w_c·T + b_c·s_c`, so `b_c = w_c·T / (1 − s_c)`. Since every
//! physical page is programmed once per cycle, the balance
//!
//! ```text
//! Σ_c  w_c·T / (1 − s_c(T))  =  t
//! ```
//!
//! pins `T`. The left side is strictly increasing in `T` (each term is
//! `x/(1−e^(−rx))`-shaped), starting from the steady *live* page count at
//! `T → 0`, so the root is unique and bisection is safe. For a uniform
//! workload this reduces to the classic mean-field FIFO result
//! `ρ·A·(1 − e^(−1/(ρA))) = 1` (Desnoyers; greedy selection on large
//! blocks behaves FIFO-like under uniform load).
//!
//! **JIT-GC's SIP term.** Just-in-time collection defers a victim block
//! until its soon-to-die pages have actually died, so pages that would be
//! copied but die within the prediction horizon `τ` are *not* copied —
//! provided their writes were buffered (only cache-visible writes are
//! predictable). We fold this in as an effective survival
//! `s'_c = s_c · (1 − buffered_c · (1 − s_c(τ)))`: the predictable share
//! of a class's one-horizon deaths is subtracted from its copy traffic.

use crate::Combo;

/// Survival probability of a class-`c` page over `dt` seconds.
#[must_use]
pub fn survival(c: &Combo, dt: f64) -> f64 {
    let det = (1.0 - c.det * dt).max(0.0);
    det * (-(c.poisson + c.trim) * dt).exp()
}

/// Effective survival with the SIP deferral term (`sip_horizon` in
/// seconds; pass 0 to disable).
#[must_use]
pub fn effective_survival(c: &Combo, dt: f64, sip_horizon: f64) -> f64 {
    let s = survival(c, dt);
    if sip_horizon <= 0.0 {
        return s;
    }
    let near_death = 1.0 - survival(c, sip_horizon);
    s * (1.0 - c.buffered.clamp(0.0, 1.0) * near_death)
}

/// Births into class `c` per cycle of length `dt` seconds:
/// `w_c·dt / (1 − s'_c)`, with the `dt → 0` limit (the steady live page
/// count `pages · w/(w + trim)`) taken analytically to keep bisection
/// stable near zero.
#[must_use]
pub fn births(c: &Combo, dt: f64, sip_horizon: f64) -> f64 {
    let w = c.det + c.poisson;
    if w <= 0.0 {
        // Never-written pages: all copied every cycle while live; with
        // any trim rate they eventually all die.
        return if c.trim > 0.0 { 0.0 } else { c.pages };
    }
    let decay = (w + c.trim) * dt;
    if decay < 1e-9 {
        return c.pages * w / (w + c.trim);
    }
    let s = effective_survival(c, dt, sip_horizon);
    c.pages * w * dt / (1.0 - s)
}

/// The steady *live* page count — the `T → 0` limit of total births,
/// i.e. the logical pages that hold data once trims reach equilibrium.
#[must_use]
pub fn live_pages(combos: &[Combo]) -> f64 {
    combos
        .iter()
        .map(|c| {
            let w = c.det + c.poisson;
            if w <= 0.0 && c.trim > 0.0 {
                0.0
            } else if w + c.trim <= 0.0 {
                c.pages
            } else {
                c.pages * w / (w + c.trim)
            }
        })
        .sum()
}

/// Result of solving the cycle balance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleSolution {
    /// Cycle length in seconds.
    pub cycle_secs: f64,
    /// Host (device-level) page writes per cycle.
    pub host_writes_per_cycle: f64,
    /// Write amplification `t / D` (≥ 1).
    pub waf: f64,
}

/// Solves `Σ births(T) = t_pages` for the cycle length `T` by bisection
/// and returns the implied WAF. Returns `None` when the configuration is
/// infeasible: the steady live page count (plus one spare page) does not
/// fit in `t_pages`, so utilization pins at 1 and WAF diverges.
#[must_use]
pub fn solve_cycle(combos: &[Combo], t_pages: f64, sip_horizon: f64) -> Option<CycleSolution> {
    let write_rate: f64 = combos.iter().map(Combo::write_rate).sum();
    if write_rate <= 0.0 || t_pages <= 0.0 {
        return None;
    }
    if live_pages(combos) >= t_pages - 1.0 {
        return None;
    }
    let total = |t: f64| -> f64 { combos.iter().map(|c| births(c, t, sip_horizon)).sum() };

    // Bracket: births(T) is increasing and unbounded, so double until we
    // pass t_pages. Start near one naive device-fill time.
    let mut hi = (t_pages / write_rate).max(1e-6);
    let mut doublings = 0;
    while total(hi) < t_pages {
        hi *= 2.0;
        doublings += 1;
        if doublings > 200 {
            return None;
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if total(mid) < t_pages {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    let cycle_secs = 0.5 * (lo + hi);
    let host_writes_per_cycle = write_rate * cycle_secs;
    Some(CycleSolution {
        cycle_secs,
        host_writes_per_cycle,
        waf: t_pages / host_writes_per_cycle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(pages: f64, rate: f64) -> Combo {
        Combo {
            pages,
            det: 0.0,
            poisson: rate / pages,
            trim: 0.0,
            buffered: 0.0,
        }
    }

    /// The classic mean-field FIFO closed form for a uniform workload:
    /// `A` satisfies `x/(1 − e^(−x)) = 1/ρ` with `x = 1/(ρA)`.
    fn classic_fifo_waf(rho: f64) -> f64 {
        let (mut lo, mut hi) = (1e-9f64, 50.0f64);
        for _ in 0..200 {
            let x = 0.5 * (lo + hi);
            if x / (1.0 - (-x).exp()) < 1.0 / rho {
                lo = x;
            } else {
                hi = x;
            }
        }
        1.0 / (rho * 0.5 * (lo + hi))
    }

    #[test]
    fn uniform_matches_the_closed_form() {
        for rho in [0.6, 0.8, 0.9, 0.95] {
            let t = 10_000.0;
            let ws = rho * t;
            let sol = solve_cycle(&[uniform(ws, 100.0)], t, 0.0).expect("feasible");
            let expected = classic_fifo_waf(rho);
            let rel = (sol.waf - expected).abs() / expected;
            assert!(
                rel < 1e-6,
                "rho {rho}: solver {} vs closed form {expected}",
                sol.waf
            );
        }
    }

    #[test]
    fn waf_is_at_least_one() {
        let sol = solve_cycle(&[uniform(5_000.0, 250.0)], 10_000.0, 0.0).unwrap();
        assert!(sol.waf >= 1.0);
    }

    #[test]
    fn pure_sequential_traffic_has_waf_one() {
        // A sweep whose period is long relative to nothing else: every
        // page dies deterministically before its block is cleaned once
        // the cycle exceeds the sweep period.
        let c = Combo {
            pages: 8_000.0,
            det: 100.0 / 8_000.0,
            poisson: 0.0,
            trim: 0.0,
            buffered: 0.0,
        };
        let sol = solve_cycle(&[c], 10_000.0, 0.0).expect("feasible");
        assert!(
            sol.waf < 1.05,
            "sequential sweep should be nearly copy-free, got {}",
            sol.waf
        );
    }

    #[test]
    fn more_op_means_less_waf() {
        let mut last = f64::INFINITY;
        for t in [9_000.0, 10_000.0, 12_000.0, 16_000.0] {
            let sol = solve_cycle(&[uniform(8_500.0, 100.0)], t, 0.0).expect("feasible");
            assert!(
                sol.waf < last,
                "WAF must fall as physical space grows: {} !< {last}",
                sol.waf
            );
            last = sol.waf;
        }
    }

    #[test]
    fn skew_under_oblivious_cleaning_raises_waf() {
        // 90 % of writes on 10 % of pages, same totals: hot churn forces
        // frequent cycles that recycle the mostly-still-valid cold
        // majority, so FIFO-cycle WAF *rises* — the classic argument for
        // hot/cold separation (Desnoyers).
        let t = 10_000.0;
        let uniform_sol = solve_cycle(&[uniform(9_000.0, 100.0)], t, 0.0).unwrap();
        let skewed = [
            Combo {
                pages: 900.0,
                det: 0.0,
                poisson: 90.0 / 900.0,
                trim: 0.0,
                buffered: 0.0,
            },
            Combo {
                pages: 8_100.0,
                det: 0.0,
                poisson: 10.0 / 8_100.0,
                trim: 0.0,
                buffered: 0.0,
            },
        ];
        let skewed_sol = solve_cycle(&skewed, t, 0.0).unwrap();
        assert!(
            skewed_sol.waf > uniform_sol.waf,
            "skew {} should cost more than uniform {} under oblivious cleaning",
            skewed_sol.waf,
            uniform_sol.waf
        );
    }

    #[test]
    fn sip_horizon_reduces_waf_for_buffered_traffic() {
        let mut c = uniform(9_000.0, 100.0);
        c.buffered = 0.9;
        let without = solve_cycle(&[c], 10_000.0, 0.0).unwrap();
        let with = solve_cycle(&[c], 10_000.0, 30.0).unwrap();
        assert!(
            with.waf < without.waf,
            "SIP deferral must not increase WAF: {} vs {}",
            with.waf,
            without.waf
        );
    }

    #[test]
    fn trim_lowers_waf() {
        let plain = solve_cycle(&[uniform(9_500.0, 100.0)], 10_000.0, 0.0).unwrap();
        let mut trimmed_combo = uniform(9_500.0, 100.0);
        trimmed_combo.trim = 0.2 * 100.0 / 9_500.0;
        let trimmed = solve_cycle(&[trimmed_combo], 10_000.0, 0.0).unwrap();
        assert!(trimmed.waf < plain.waf);
    }

    #[test]
    fn full_device_is_infeasible() {
        assert!(solve_cycle(&[uniform(10_000.0, 100.0)], 10_000.0, 0.0).is_none());
        assert!(solve_cycle(&[uniform(9_999.5, 100.0)], 10_000.0, 0.0).is_none());
    }

    #[test]
    fn static_data_is_carried_as_copies() {
        // Half the device holds never-rewritten data: the dynamic half
        // behaves like a device of half the spare area… worse WAF than
        // without the static load.
        let dynamic = uniform(4_000.0, 100.0);
        let static_data = Combo {
            pages: 4_500.0,
            det: 0.0,
            poisson: 0.0,
            trim: 0.0,
            buffered: 0.0,
        };
        let with_static = solve_cycle(&[dynamic, static_data], 10_000.0, 0.0).unwrap();
        let without = solve_cycle(&[dynamic], 5_500.0, 0.0).unwrap();
        assert!(with_static.waf > without.waf * 0.99);
        assert!(with_static.waf.is_finite());
    }
}
