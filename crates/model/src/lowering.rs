//! Lowers a [`WriteProfile`] into homogeneous address classes.
//!
//! The solver wants the working set partitioned into *combos*: sets of
//! pages that share the same deterministic rewrite rate, Poisson rewrite
//! rate, and trim rate. This module builds them in three steps:
//!
//! 1. **Partition** the address space at every stream-region boundary, so
//!    overlapping streams (Bonnie's seek writes inside its swept space,
//!    YCSB's memtable updates over its own log region) combine their
//!    rates instead of being double-counted as disjoint traffic.
//! 2. **Discretize** each stream's pattern over each interval into
//!    `(address mass, per-page host rate)` classes — one class for
//!    uniform, the profile's classes verbatim, and geometric rank
//!    buckets for Zipf.
//! 3. **Flatten** buffered rates through the page cache: a page
//!    rewritten while still dirty coalesces, so a host per-page rate `λ`
//!    becomes a device rate `λ/(1 + λW)` for the write-back window `W`
//!    (a Poisson process observed with dead time `W`); deterministic
//!    sweeps are clipped to one device write per `W`. Then the classes
//!    of streams sharing an interval are cross-multiplied (scatter
//!    independence) into the final combos.

use jitgc_workload::{AccessPattern, WriteProfile, WriteStream};

/// One homogeneous class of pages. All rates are *device-level*
/// per-page rates in 1/s; `pages` is the class size in pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Combo {
    /// Number of pages in the class.
    pub pages: f64,
    /// Deterministic (sequential-sweep) rewrite rate per page.
    pub det: f64,
    /// Poisson (random overwrite) rewrite rate per page.
    pub poisson: f64,
    /// Trim rate per page (invalidates without a device write).
    pub trim: f64,
    /// Rate-weighted fraction of this class's writes that were buffered
    /// — the share of its deaths the SIP list can predict.
    pub buffered: f64,
}

impl Combo {
    /// Total device write rate into this class, pages/s.
    #[must_use]
    pub fn write_rate(&self) -> f64 {
        self.pages * (self.det + self.poisson)
    }
}

/// Number of geometric rank buckets a Zipf stream is discretized into
/// (covers up to 2^30 pages).
const MAX_ZIPF_BUCKETS: usize = 30;

/// Per-stream rate classes over one elementary interval:
/// `(address mass within the interval, per-page device rate, buffered)`.
/// Deterministic streams return an extra scalar det rate instead.
struct IntervalStream {
    det: f64,
    det_buffered_rate: f64,
    classes: Vec<(f64, f64, f64)>,
}

/// Zipf rank-bucket masses: splits ranks `0..n` into geometric buckets
/// and returns `(rank_mass, probability_mass)` per bucket, where
/// `rank_mass` is the fraction of ranks (= of addresses, after
/// scattering) and `probability_mass` the fraction of traffic.
fn zipf_buckets(n: u64, theta: f64) -> Vec<(f64, f64)> {
    debug_assert!(n > 0);
    // Exact harmonic sums; regions are device-scale (≤ a few million
    // pages), so a linear pass is cheap and avoids integral-approximation
    // error where the skew matters most (the first few ranks).
    let mut edges: Vec<u64> = Vec::with_capacity(MAX_ZIPF_BUCKETS + 1);
    let mut e = 0u64;
    let mut width = 1u64;
    while e < n && edges.len() < MAX_ZIPF_BUCKETS {
        edges.push(e);
        e = (e + width).min(n);
        width *= 2;
    }
    edges.push(n);
    let mut buckets = Vec::with_capacity(edges.len() - 1);
    let mut total = 0.0f64;
    for pair in edges.windows(2) {
        let mut mass = 0.0f64;
        for k in pair[0]..pair[1] {
            mass += ((k + 1) as f64).powf(-theta);
        }
        total += mass;
        buckets.push(((pair[1] - pair[0]) as f64 / n as f64, mass));
    }
    for b in &mut buckets {
        b.1 /= total;
    }
    buckets
}

/// Cache-flattens a per-page host rate: the direct share passes 1:1, the
/// buffered share coalesces while dirty (dead time `window` seconds).
fn flatten(host_rate: f64, buffered: f64, window: f64) -> f64 {
    let buffered_dev = if window > 0.0 {
        host_rate / (1.0 + host_rate * window)
    } else {
        host_rate
    };
    (1.0 - buffered) * host_rate + buffered * buffered_dev
}

/// A stream's contribution over the elementary interval `[lo, hi)`
/// (fractions of the working set). `page_rate` is the stream's total
/// host page rate (write or trim pages/s); `window` the write-back
/// window in seconds (0 to disable cache flattening, e.g. for trims).
fn stream_on_interval(
    stream: &WriteStream,
    lo: f64,
    hi: f64,
    ws_pages: f64,
    page_rate: f64,
    window: f64,
) -> Option<IntervalStream> {
    let (s_lo, s_hi) = (stream.start_frac, stream.start_frac + stream.len_frac);
    if hi <= s_lo + 1e-12 || lo >= s_hi - 1e-12 {
        return None;
    }
    let region_pages = stream.len_frac * ws_pages;
    let rate = stream.page_share * page_rate;
    // Per-page host rate if the stream spread uniformly over its region.
    let base = rate / region_pages;
    match &stream.pattern {
        AccessPattern::SequentialCycle => {
            // One deterministic rewrite per sweep period; buffered sweeps
            // faster than the write-back window coalesce down to one
            // device write per window.
            let capped = if window > 0.0 {
                base.min(1.0 / window)
            } else {
                base
            };
            let det = (1.0 - stream.buffered_fraction) * base + stream.buffered_fraction * capped;
            Some(IntervalStream {
                det,
                det_buffered_rate: stream.buffered_fraction * det,
                classes: Vec::new(),
            })
        }
        AccessPattern::Uniform => Some(IntervalStream {
            det: 0.0,
            det_buffered_rate: 0.0,
            classes: vec![(
                1.0,
                flatten(base, stream.buffered_fraction, window),
                stream.buffered_fraction,
            )],
        }),
        AccessPattern::Zipf { theta } => {
            let n = (region_pages.round() as u64).max(1);
            let classes = zipf_buckets(n, *theta)
                .into_iter()
                .map(|(rank_mass, prob_mass)| {
                    let per_page = rate * prob_mass / (rank_mass * region_pages);
                    (
                        rank_mass,
                        flatten(per_page, stream.buffered_fraction, window),
                        stream.buffered_fraction,
                    )
                })
                .collect();
            Some(IntervalStream {
                det: 0.0,
                det_buffered_rate: 0.0,
                classes,
            })
        }
        AccessPattern::Classes(classes) => {
            let weight: f64 = classes.iter().map(|&(m, w)| m * w).sum();
            let lowered = classes
                .iter()
                .map(|&(mass, w)| {
                    let per_page = base * w / weight;
                    (
                        mass,
                        flatten(per_page, stream.buffered_fraction, window),
                        stream.buffered_fraction,
                    )
                })
                .collect();
            Some(IntervalStream {
                det: 0.0,
                det_buffered_rate: 0.0,
                classes: lowered,
            })
        }
    }
}

/// Lowers a profile into solver combos.
///
/// * `ws_pages` — logical working set size in pages.
/// * `write_page_rate` — host written pages/s (before cache absorption).
/// * `trim_page_rate` — host trimmed pages/s.
/// * `write_back_window` — mean dirty dwell time in seconds.
#[must_use]
pub fn lower_profile(
    profile: &WriteProfile,
    ws_pages: f64,
    write_page_rate: f64,
    trim_page_rate: f64,
    write_back_window: f64,
) -> Vec<Combo> {
    let mut bounds: Vec<f64> = vec![0.0, 1.0];
    for s in profile.streams.iter().chain(&profile.trim_streams) {
        bounds.push(s.start_frac);
        bounds.push(s.start_frac + s.len_frac);
    }
    bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
    bounds.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut combos = Vec::new();
    for pair in bounds.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        let interval_pages = (hi - lo) * ws_pages;
        if interval_pages < 0.5 {
            continue;
        }
        let mut det = 0.0;
        let mut det_buffered_rate = 0.0;
        let mut per_stream: Vec<Vec<(f64, f64, f64)>> = Vec::new();
        for s in &profile.streams {
            if let Some(c) =
                stream_on_interval(s, lo, hi, ws_pages, write_page_rate, write_back_window)
            {
                det += c.det;
                det_buffered_rate += c.det_buffered_rate;
                if !c.classes.is_empty() {
                    per_stream.push(c.classes);
                }
            }
        }
        // Trims bypass the cache-coalescing model: the page cache drops
        // the range and the invalidation reaches the FTL directly.
        let mut trim = 0.0;
        for s in &profile.trim_streams {
            if let Some(c) = stream_on_interval(s, lo, hi, ws_pages, trim_page_rate, 0.0) {
                trim += c.det + c.classes.iter().map(|&(m, r, _)| m * r).sum::<f64>();
            }
        }
        // Cross-product of the interval's stream mixtures: scattering is
        // independent across streams, so a page draws one class from
        // each.
        let mut acc: Vec<(f64, f64, f64)> = vec![(1.0, 0.0, 0.0)]; // (mass, poisson, buffered·rate)
        for classes in &per_stream {
            let mut next = Vec::with_capacity(acc.len() * classes.len());
            for &(mass, rate, brate) in &acc {
                for &(m, r, b) in classes {
                    next.push((mass * m, rate + r, brate + b * r));
                }
            }
            acc = next;
        }
        for (mass, poisson, brate) in acc {
            let pages = interval_pages * mass;
            if pages < 1e-9 {
                continue;
            }
            let total_rate = det + poisson;
            let buffered = if total_rate > 0.0 {
                (det_buffered_rate + brate) / total_rate
            } else {
                0.0
            };
            combos.push(Combo {
                pages,
                det,
                poisson,
                trim,
                buffered,
            });
        }
    }
    combos
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_workload::BenchmarkKind;

    fn total_pages(combos: &[Combo]) -> f64 {
        combos.iter().map(|c| c.pages).sum()
    }

    fn total_rate(combos: &[Combo]) -> f64 {
        combos.iter().map(Combo::write_rate).sum()
    }

    #[test]
    fn combos_cover_the_working_set() {
        for kind in BenchmarkKind::all() {
            let profile = kind.write_profile();
            let combos = lower_profile(&profile, 10_000.0, 500.0, 10.0, 0.0);
            let covered = total_pages(&combos);
            assert!(
                (covered - 10_000.0).abs() < 1.0,
                "{kind}: combos cover {covered} of 10000 pages"
            );
        }
    }

    #[test]
    fn without_cache_window_rates_are_conserved() {
        for kind in BenchmarkKind::all() {
            let profile = kind.write_profile();
            let combos = lower_profile(&profile, 10_000.0, 500.0, 0.0, 0.0);
            let rate = total_rate(&combos);
            assert!(
                (rate - 500.0).abs() < 0.5,
                "{kind}: lowered rate {rate} of 500 pages/s"
            );
        }
    }

    #[test]
    fn cache_window_absorbs_writes() {
        for kind in [BenchmarkKind::Ycsb, BenchmarkKind::Postmark] {
            let profile = kind.write_profile();
            let hot = lower_profile(&profile, 10_000.0, 500.0, 0.0, 3.0);
            let cold = lower_profile(&profile, 10_000.0, 500.0, 0.0, 0.0);
            assert!(
                total_rate(&hot) < total_rate(&cold) - 1.0,
                "{kind}: write-back window absorbed nothing"
            );
        }
    }

    #[test]
    fn tpcc_direct_writes_barely_flattened() {
        let profile = BenchmarkKind::TpcC.write_profile();
        let hot = lower_profile(&profile, 10_000.0, 500.0, 0.0, 3.0);
        let cold = lower_profile(&profile, 10_000.0, 500.0, 0.0, 0.0);
        let ratio = total_rate(&hot) / total_rate(&cold);
        assert!(
            ratio > 0.99,
            "TPC-C is 99.9 % direct; flattening removed {:.1} %",
            (1.0 - ratio) * 100.0
        );
    }

    #[test]
    fn zipf_buckets_are_normalized_and_skewed() {
        let buckets = zipf_buckets(10_000, 0.99);
        let addr: f64 = buckets.iter().map(|b| b.0).sum();
        let prob: f64 = buckets.iter().map(|b| b.1).sum();
        assert!((addr - 1.0).abs() < 1e-9);
        assert!((prob - 1.0).abs() < 1e-9);
        // The first bucket is a single rank but carries far more than its
        // address share of traffic.
        assert!(buckets[0].1 > 50.0 * buckets[0].0 / 10_000.0);
        // Per-page intensity decreases along the buckets.
        let intensities: Vec<f64> = buckets.iter().map(|b| b.1 / b.0).collect();
        for w in intensities.windows(2) {
            assert!(w[0] > w[1], "bucket intensity must decrease");
        }
    }

    #[test]
    fn overlapping_streams_combine_rates() {
        // Bonnie: seek writes land inside the swept space, so every combo
        // must carry both the det sweep rate and the Poisson seek rate.
        let profile = BenchmarkKind::Bonnie.write_profile();
        let combos = lower_profile(&profile, 10_000.0, 500.0, 0.0, 0.0);
        for c in &combos {
            assert!(c.det > 0.0, "sweep missing from combo {c:?}");
            assert!(c.poisson > 0.0, "seek writes missing from combo {c:?}");
        }
    }

    #[test]
    fn trim_rates_reach_combos() {
        let profile = BenchmarkKind::Postmark.write_profile();
        let combos = lower_profile(&profile, 10_000.0, 500.0, 25.0, 0.0);
        let trim_rate: f64 = combos.iter().map(|c| c.pages * c.trim).sum();
        assert!(
            (trim_rate - 25.0).abs() < 0.5,
            "trim rate {trim_rate} of 25 pages/s"
        );
    }
}
