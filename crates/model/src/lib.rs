//! Analytical mean-field WAF/lifetime model for the JIT-GC simulator.
//!
//! Where the simulator replays every I/O, this crate *solves* for the
//! steady state: given the device geometry ([`FtlConfig`]), the host
//! stack constants ([`SystemConfig`]), a GC policy, and a benchmark's
//! [write profile](jitgc_workload::WriteProfile), it predicts write
//! amplification, lifetime, and a foreground-stall proxy in
//! microseconds of compute instead of minutes of simulation. That makes
//! it a *screening layer* for design-space sweeps (`ssdsim --sweep
//! --screen model` evaluates every cell analytically and simulates only
//! the predicted Pareto frontier) and an independent correctness check
//! on the simulator — the two implementations share no code beyond the
//! config types, so agreement is evidence for both.
//!
//! The model chain (in the spirit of Desnoyers' and Li/Lee/Lui's
//! mean-field GC analyses; DESIGN.md §13 has the full derivation):
//!
//! 1. Lower the benchmark's declarative write profile into homogeneous
//!    address classes with deterministic / Poisson / trim per-page
//!    rates, flattening buffered traffic through the page cache's
//!    write-back window ([`lower_profile`]).
//! 2. Solve the steady-state FIFO-cycle balance
//!    `Σ_c w_c·T/(1 − s_c(T)) = t` for the GC cycle length, which pins
//!    WAF = `t / (host writes per cycle)` ([`solve_cycle`]). JIT-GC's
//!    SIP deferral enters as an effective-survival reduction on the
//!    predictable (buffered) share of soon-to-die pages.
//! 3. Map the GC policy to the capacity reserve it withholds from the
//!    rotation, derive lifetime from the erase budget ÷ WAF, and score
//!    a stall proxy from GC debt × reserve headroom ([`predict`]).
//!
//! ```
//! use jitgc_core::system::SystemConfig;
//! use jitgc_model::{predict, PolicyModel, WorkloadSpec};
//! use jitgc_workload::BenchmarkKind;
//!
//! let system = SystemConfig::default_sim();
//! let spec = WorkloadSpec::for_system(&system, 250.0, 1024.0);
//! let p = predict(&system, PolicyModel::Jit { sip: true }, BenchmarkKind::Ycsb, &spec);
//! assert!(p.feasible && p.waf >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lowering;
mod solver;

pub use lowering::{lower_profile, Combo};
pub use solver::{births, effective_survival, live_pages, solve_cycle, survival, CycleSolution};

use jitgc_core::system::SystemConfig;
use jitgc_workload::BenchmarkKind;

/// WAF reported for configurations whose steady live data does not fit
/// in the physical space the policy leaves available (utilization pins
/// at 1, real WAF diverges). Finite so predictions stay JSON-safe and
/// sort after every feasible cell.
pub const INFEASIBLE_WAF: f64 = 1e12;

/// The GC policy, as the model sees it: how much capacity it withholds
/// and whether SIP deferral applies. [`PolicyKind`] in `jitgc-bench`
/// maps onto this 1:1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyModel {
    /// Foreground-only GC: no reserve beyond the GC scratch blocks.
    NoBgc,
    /// Background GC holding `permille/1000 × C_OP` free (500 = L-BGC,
    /// 1500 = A-BGC).
    Reserved {
        /// Reserve size in permille of the over-provisioned capacity.
        permille: u64,
    },
    /// Idle-time BGC (Park et al.): modeled as holding half the OP free,
    /// between L-BGC and nothing — it collects when idle but enforces no
    /// target.
    Idle,
    /// The paper's adaptive device-internal baseline: modeled like
    /// demand-driven reservation without SIP deferral.
    Adp,
    /// JIT-GC: reserves one prediction horizon of write demand; with
    /// `sip`, soon-to-die buffered pages are deferred out of GC copies.
    Jit {
        /// Whether SIP victim filtering is enabled.
        sip: bool,
    },
}

/// The workload-shape knobs the model needs beyond the benchmark kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Logical working set in pages.
    pub working_set_pages: u64,
    /// Mean request arrival rate (requests/s).
    pub mean_iops: f64,
    /// Mean macro-burst length in requests (sizes the stall proxy's
    /// headroom term).
    pub burst_mean: f64,
}

impl WorkloadSpec {
    /// The experiment harness's working-set convention: the logical
    /// space minus half the OP stays untouched (puts A-BGC exactly at
    /// its feasibility bound).
    #[must_use]
    pub fn for_system(system: &SystemConfig, mean_iops: f64, burst_mean: f64) -> Self {
        WorkloadSpec {
            working_set_pages: system.ftl.user_pages() - system.ftl.op_pages() / 2,
            mean_iops,
            burst_mean,
        }
    }
}

/// The model's output for one `(system, policy, benchmark)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted write amplification (device programs / host device
    /// writes). [`INFEASIBLE_WAF`] when the configuration cannot reach a
    /// steady state.
    pub waf: f64,
    /// Whether a steady state exists (live data fits the available
    /// physical space).
    pub feasible: bool,
    /// Host bytes writable before the erase budget is exhausted, if the
    /// FTL models endurance. Counts device-level host bytes, matching
    /// the simulator's `lifetime_host_bytes`.
    pub lifetime_host_bytes: Option<f64>,
    /// Relative foreground-stall score: GC debt discounted by reserve
    /// headroom against bursts. Only the *ordering* across cells is
    /// meaningful.
    pub stall_proxy: f64,
    /// Pages the policy withholds from the data rotation.
    pub reserve_pages: f64,
    /// Host write-page rate before cache absorption (pages/s).
    pub host_write_rate: f64,
    /// Device write-page rate after cache absorption (pages/s).
    pub device_write_rate: f64,
    /// Steady live pages / available physical pages.
    pub utilization: f64,
}

/// Predicts WAF, lifetime, and the stall proxy for one configuration
/// cell. Pure: same inputs, same outputs, no simulation state.
#[must_use]
pub fn predict(
    system: &SystemConfig,
    policy: PolicyModel,
    benchmark: BenchmarkKind,
    spec: &WorkloadSpec,
) -> Prediction {
    let profile = benchmark.write_profile();
    let ws = spec.working_set_pages as f64;
    let host_write_rate = spec.mean_iops * profile.write_pages_per_request;
    let trim_rate = spec.mean_iops * profile.trim_pages_per_request;
    let combos = lower_profile(
        &profile,
        ws,
        host_write_rate,
        trim_rate,
        system.write_back_window(),
    );
    let device_write_rate: f64 = combos.iter().map(Combo::write_rate).sum();

    let ftl = &system.ftl;
    let op_pages = ftl.op_pages() as f64;
    let tau = system.tau_expire().as_secs_f64();
    let reserve_pages = match policy {
        PolicyModel::NoBgc => 0.0,
        PolicyModel::Reserved { permille } => permille as f64 / 1000.0 * op_pages,
        PolicyModel::Idle => 0.5 * op_pages,
        // Demand-driven policies hold one prediction horizon of device
        // writes, clamped to A-BGC's feasibility ceiling.
        PolicyModel::Adp | PolicyModel::Jit { .. } => (device_write_rate * tau).min(1.5 * op_pages),
    };
    let t_pages = ftl.data_pages() as f64 - reserve_pages;
    let sip_horizon = match policy {
        PolicyModel::Jit { sip: true } => tau,
        _ => 0.0,
    };

    let solution = solve_cycle(&combos, t_pages, sip_horizon);
    let feasible = solution.is_some();
    let waf = solution.map_or(INFEASIBLE_WAF, |s| s.waf);
    let utilization = if t_pages > 0.0 {
        live_pages(&combos) / t_pages
    } else {
        f64::INFINITY
    };

    let page_size = ftl.geometry().page_size().as_u64() as f64;
    let lifetime_host_bytes = ftl.erase_budget().map(|erases| {
        let budget_pages = erases as f64 * f64::from(ftl.geometry().pages_per_block());
        budget_pages / waf * page_size
    });

    // Stall proxy: the chance a macro-burst overruns the free reserve
    // (forcing foreground GC), scaled by the GC debt the WAF implies.
    // JIT's reserve is *sized to* the predicted demand, so only the
    // unpredictable (direct) share of a burst can overrun it — this is
    // where TPC-C erodes JIT's edge (paper Fig. 7).
    let (_, gc_bw) = system.default_bandwidths();
    let debt = (waf - 1.0).max(0.0) * device_write_rate * page_size / gc_bw;
    let burst_pages = (spec.burst_mean * profile.write_pages_per_request).max(1.0);
    let surprise_burst = match policy {
        PolicyModel::Jit { .. } => {
            (burst_pages * (1.0 - profile.buffered_fraction())).max(0.02 * burst_pages)
        }
        _ => burst_pages,
    };
    let stall_proxy = if feasible {
        (-reserve_pages / surprise_burst).exp() * (1.0 + debt)
    } else {
        f64::MAX
    };

    Prediction {
        waf,
        feasible,
        lifetime_host_bytes,
        stall_proxy,
        reserve_pages,
        host_write_rate,
        device_write_rate,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(system: &SystemConfig) -> WorkloadSpec {
        WorkloadSpec::for_system(system, 250.0, 1024.0)
    }

    #[test]
    fn all_cells_predict_finitely() {
        let system = SystemConfig::default_sim();
        let s = spec(&system);
        for benchmark in BenchmarkKind::all() {
            for policy in [
                PolicyModel::NoBgc,
                PolicyModel::Reserved { permille: 500 },
                PolicyModel::Reserved { permille: 1_500 },
                PolicyModel::Idle,
                PolicyModel::Adp,
                PolicyModel::Jit { sip: true },
                PolicyModel::Jit { sip: false },
            ] {
                let p = predict(&system, policy, benchmark, &s);
                assert!(p.waf.is_finite());
                assert!(p.waf >= 1.0, "{benchmark}/{policy:?}: WAF {}", p.waf);
                assert!(p.stall_proxy >= 0.0);
                assert!(p.device_write_rate > 0.0);
                assert!(p.device_write_rate <= p.host_write_rate + 1e-9);
            }
        }
    }

    #[test]
    fn bigger_reserve_raises_waf() {
        let system = SystemConfig::default_sim();
        let s = spec(&system);
        let l = predict(
            &system,
            PolicyModel::Reserved { permille: 500 },
            BenchmarkKind::Ycsb,
            &s,
        );
        let a = predict(
            &system,
            PolicyModel::Reserved { permille: 1_500 },
            BenchmarkKind::Ycsb,
            &s,
        );
        assert!(
            a.waf > l.waf,
            "A-BGC {} must cost more than L-BGC {}",
            a.waf,
            l.waf
        );
    }

    #[test]
    fn bigger_reserve_lowers_stalls_at_moderate_utilization() {
        // At A-BGC's feasibility edge the model's WAF debt explodes and
        // swamps the headroom discount, so check the paper's stall
        // ordering on a roomier device (20 % OP) where both reserves run
        // at moderate utilization.
        let mut system = SystemConfig::default_sim();
        system.ftl = system.ftl.to_builder().op_permille(200).build();
        let s = spec(&system);
        let small = predict(
            &system,
            PolicyModel::Reserved { permille: 250 },
            BenchmarkKind::Ycsb,
            &s,
        );
        let large = predict(
            &system,
            PolicyModel::Reserved { permille: 750 },
            BenchmarkKind::Ycsb,
            &s,
        );
        assert!(large.waf > small.waf);
        assert!(
            large.stall_proxy < small.stall_proxy,
            "bigger reserve must stall less: {} vs {}",
            large.stall_proxy,
            small.stall_proxy
        );
    }

    #[test]
    fn sip_helps_buffered_workloads() {
        let system = SystemConfig::default_sim();
        let s = spec(&system);
        let with = predict(
            &system,
            PolicyModel::Jit { sip: true },
            BenchmarkKind::Ycsb,
            &s,
        );
        let without = predict(
            &system,
            PolicyModel::Jit { sip: false },
            BenchmarkKind::Ycsb,
            &s,
        );
        assert!(with.waf < without.waf);
        // TPC-C is 99.9 % direct: SIP has nothing to predict.
        let t_with = predict(
            &system,
            PolicyModel::Jit { sip: true },
            BenchmarkKind::TpcC,
            &s,
        );
        let t_without = predict(
            &system,
            PolicyModel::Jit { sip: false },
            BenchmarkKind::TpcC,
            &s,
        );
        assert!((t_with.waf - t_without.waf).abs() / t_without.waf < 0.01);
    }

    #[test]
    fn lifetime_scales_with_endurance() {
        let mut system = SystemConfig::default_sim();
        system.ftl = system.ftl.to_builder().endurance_limit(1_000).build();
        let s = spec(&system);
        let one = predict(
            &system,
            PolicyModel::Jit { sip: true },
            BenchmarkKind::Ycsb,
            &s,
        );
        system.ftl = system.ftl.to_builder().endurance_limit(3_000).build();
        let three = predict(
            &system,
            PolicyModel::Jit { sip: true },
            BenchmarkKind::Ycsb,
            &s,
        );
        let (l1, l3) = (
            one.lifetime_host_bytes.expect("endurance set"),
            three.lifetime_host_bytes.expect("endurance set"),
        );
        assert!(
            (l3 / l1 - 3.0).abs() < 1e-6,
            "3× endurance must give 3× lifetime at equal WAF: {l1} vs {l3}"
        );
    }

    #[test]
    fn unlimited_endurance_has_no_lifetime() {
        let system = SystemConfig::default_sim();
        let p = predict(
            &system,
            PolicyModel::NoBgc,
            BenchmarkKind::TpcC,
            &spec(&system),
        );
        assert!(p.lifetime_host_bytes.is_none());
    }

    #[test]
    fn overfull_configuration_is_flagged_infeasible() {
        let system = SystemConfig::default_sim();
        // Demand a reserve so large the working set no longer fits.
        let p = predict(
            &system,
            PolicyModel::Reserved { permille: 2_000 },
            BenchmarkKind::Ycsb,
            &spec(&system),
        );
        assert!(!p.feasible);
        assert_eq!(p.waf, INFEASIBLE_WAF);
        assert_eq!(p.stall_proxy, f64::MAX);
    }

    #[test]
    fn ycsb_jit_waf_lands_in_the_golden_band() {
        // The simulator's golden test pins YCSB/JIT-GC WAF to [4, 7];
        // the model must land in the same band.
        let system = SystemConfig::default_sim();
        let p = predict(
            &system,
            PolicyModel::Jit { sip: true },
            BenchmarkKind::Ycsb,
            &spec(&system),
        );
        assert!(
            p.waf > 3.0 && p.waf < 8.0,
            "YCSB/JIT predicted WAF {} far from the simulator's band",
            p.waf
        );
    }

    #[test]
    fn bonnie_sequential_sweeps_are_nearly_free() {
        let system = SystemConfig::default_sim();
        let p = predict(
            &system,
            PolicyModel::Reserved { permille: 500 },
            BenchmarkKind::Bonnie,
            &spec(&system),
        );
        assert!(
            p.waf < 2.0,
            "Bonnie++ is sweep-dominated; WAF {} should be near 1",
            p.waf
        );
    }
}
