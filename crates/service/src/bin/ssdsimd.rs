//! `ssdsimd` — run the multi-tenant queue-pair service from the command
//! line: either the deterministic in-process closed-loop demo mix, or a
//! wire-protocol server over TCP / Unix sockets.
//!
//! ```text
//! ssdsimd [OPTIONS]
//!   --tenants name:profile:weight:iops:conc[,…]
//!                          the tenant roster; profile is
//!                          reader|writer|mixed, weight a positive
//!                          integer, iops the mean closed-loop arrival
//!                          rate, conc the application threads
//!                          (default writer:writer:1:1200:8,
//!                                   reader:reader:4:400:2,
//!                                   mixed:mixed:2:400:2)
//!   --policy <none|lbgc|abgc|adp|idle|jit|jit-nosip>  (default jit)
//!   --seconds <N>          simulated seconds per tenant stream (default 60)
//!   --seed <N>             base RNG seed                      (default 42)
//!   --sq-depth <N>         per-tenant submission-queue depth  (default 64)
//!   --dispatch-window <N>  device-side in-flight request cap  (default 32)
//!   --tier-yellow <F>      Yellow entry threshold             (default 0.50)
//!   --tier-red <F>         Red entry threshold                (default 0.75)
//!   --tier-black <F>       Black entry threshold              (default 0.90)
//!   --tier-hysteresis <F>  margin below entry to leave a tier (default 0.05)
//!   --no-backpressure      track tiers but never defer or shed
//!   --worker-threads <N>   trace-generation workers; reports are
//!                          byte-identical for any value        (default 1)
//!   --fast-forward on|off  engine quiescence fast-forward; reports are
//!                          byte-identical either way           (default on)
//!   --small                use the small test device (default: default_sim)
//!   --no-prefill           start from an erased device (default: aged)
//!   --json                 emit the deterministic service report as JSON
//!   --bench-json <path>    write a machine-readable perf record
//!                          (`ssdsim-bench/9`: wall-time fields, the
//!                          fast-forward counters and the full `service`
//!                          block)
//!   --listen <addr>        serve the wire protocol on a TCP address
//!                          instead of running the in-process demo
//!   --unix <path>          serve on a Unix socket (unix only)
//!   --sessions <N>         wire sessions to serve before reporting
//!                          (default: the tenant count)
//! ```
//!
//! Every knob is validated up front; a bad value names the offending knob
//! on stderr and exits 2.

use std::time::Instant;

use jitgc_core::system::SystemConfig;
use jitgc_service::{
    run_closed_loop_counting, serve, Endpoint, PolicyChoice, Service, ServiceConfig, ServiceReport,
    TenantProfile, TenantSpec, TierThresholds,
};
use jitgc_sim::json::{JsonValue, ObjectBuilder};
use jitgc_sim::SimTime;

struct Args {
    tenants: Vec<TenantSpec>,
    policy: PolicyChoice,
    seconds: u64,
    seed: u64,
    sq_depth: usize,
    dispatch_window: usize,
    tiers: TierThresholds,
    backpressure: bool,
    worker_threads: usize,
    fast_forward: bool,
    small: bool,
    prefill: bool,
    json: bool,
    bench_json: Option<String>,
    listen: Option<String>,
    unix: Option<String>,
    sessions: Option<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            tenants: default_tenants(),
            policy: PolicyChoice::Jit,
            seconds: 60,
            seed: 42,
            sq_depth: 64,
            dispatch_window: 32,
            tiers: TierThresholds::default(),
            backpressure: true,
            worker_threads: 1,
            fast_forward: true,
            small: false,
            prefill: true,
            json: false,
            bench_json: None,
            listen: None,
            unix: None,
            sessions: None,
        }
    }
}

fn default_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "writer".into(),
            weight: 1,
            profile: TenantProfile::Writer,
            mean_iops: 1_200.0,
            concurrency: 8,
        },
        TenantSpec {
            name: "reader".into(),
            weight: 4,
            profile: TenantProfile::Reader,
            mean_iops: 400.0,
            concurrency: 2,
        },
        TenantSpec {
            name: "mixed".into(),
            weight: 2,
            profile: TenantProfile::Mixed,
            mean_iops: 400.0,
            concurrency: 2,
        },
    ]
}

fn usage() -> ! {
    eprintln!("usage: ssdsimd [--tenants name:profile:weight:iops:conc[,…]]");
    eprintln!("               [--policy none|lbgc|abgc|adp|idle|jit|jit-nosip]");
    eprintln!("               [--seconds N] [--seed N] [--sq-depth N]");
    eprintln!("               [--dispatch-window N] [--tier-yellow F] [--tier-red F]");
    eprintln!("               [--tier-black F] [--tier-hysteresis F]");
    eprintln!("               [--no-backpressure] [--worker-threads N]");
    eprintln!("               [--fast-forward on|off] [--small]");
    eprintln!("               [--no-prefill] [--json] [--bench-json PATH]");
    eprintln!("               [--listen ADDR | --unix PATH] [--sessions N]");
    eprintln!("see the module docs (`ssdsimd.rs`) for value sets");
    std::process::exit(2)
}

fn fail(message: String) -> ! {
    eprintln!("{message}");
    std::process::exit(2)
}

/// Parses one `name:profile:weight:iops:conc` tenant token, naming the
/// offending field on error.
fn parse_tenant(token: &str) -> TenantSpec {
    let parts: Vec<&str> = token.split(':').collect();
    if parts.len() != 5 {
        fail(format!(
            "tenant `{token}` must be name:profile:weight:iops:concurrency"
        ));
    }
    let profile = TenantProfile::parse(parts[1]).unwrap_or_else(|| {
        fail(format!(
            "tenant `{}` has unknown profile `{}` (reader|writer|mixed)",
            parts[0], parts[1]
        ))
    });
    let weight = parts[2].parse().unwrap_or_else(|_| {
        fail(format!(
            "tenant `{}` has non-integer weight `{}`",
            parts[0], parts[2]
        ))
    });
    let mean_iops = parts[3].parse().unwrap_or_else(|_| {
        fail(format!(
            "tenant `{}` has non-numeric mean IOPS `{}`",
            parts[0], parts[3]
        ))
    });
    let concurrency = parts[4].parse().unwrap_or_else(|_| {
        fail(format!(
            "tenant `{}` has non-integer concurrency `{}`",
            parts[0], parts[4]
        ))
    });
    TenantSpec {
        name: parts[0].to_string(),
        weight,
        profile,
        mean_iops,
        concurrency,
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--tenants" => args.tenants = value().split(',').map(parse_tenant).collect(),
            "--policy" => {
                let v = value();
                args.policy =
                    PolicyChoice::parse(&v).unwrap_or_else(|| fail(format!("unknown policy: {v}")));
            }
            "--seconds" => args.seconds = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--sq-depth" => args.sq_depth = value().parse().unwrap_or_else(|_| usage()),
            "--dispatch-window" => {
                args.dispatch_window = value().parse().unwrap_or_else(|_| usage())
            }
            "--tier-yellow" => args.tiers.yellow = value().parse().unwrap_or_else(|_| usage()),
            "--tier-red" => args.tiers.red = value().parse().unwrap_or_else(|_| usage()),
            "--tier-black" => args.tiers.black = value().parse().unwrap_or_else(|_| usage()),
            "--tier-hysteresis" => {
                args.tiers.hysteresis = value().parse().unwrap_or_else(|_| usage())
            }
            "--no-backpressure" => args.backpressure = false,
            "--worker-threads" => args.worker_threads = value().parse().unwrap_or_else(|_| usage()),
            "--fast-forward" => {
                args.fast_forward = match value().as_str() {
                    "on" => true,
                    "off" => false,
                    v => fail(format!("--fast-forward must be on|off, got `{v}`")),
                }
            }
            "--small" => args.small = true,
            "--no-prefill" => args.prefill = false,
            "--json" => args.json = true,
            "--bench-json" => args.bench_json = Some(value()),
            "--listen" => args.listen = Some(value()),
            "--unix" => args.unix = Some(value()),
            "--sessions" => args.sessions = Some(value().parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            other => fail(format!("unknown flag: {other}")),
        }
    }
    args
}

/// The `--bench-json` perf record: wall-clock throughput of the simulator,
/// the quiescence fast-forward counters and the full deterministic
/// `service` block (schema `ssdsim-bench/9`).
fn perf_record(
    args: &Args,
    report: &ServiceReport,
    ticks_skipped: u64,
    ff_spans: u64,
    setup_secs: f64,
    run_secs: f64,
) -> JsonValue {
    let per_sec = |count: u64| -> f64 {
        if run_secs > 0.0 {
            count as f64 / run_secs
        } else {
            0.0
        }
    };
    ObjectBuilder::new()
        .field("schema", "ssdsim-bench/9")
        .field("benchmark", "service")
        .field("policy", report.device.policy.as_str())
        .field("seed", args.seed)
        .field("simulated_secs", report.duration_us as f64 / 1e6)
        .field("ops", report.device.ops)
        .field("host_pages_written", report.device.host_pages_written)
        .field("nand_pages_programmed", report.device.nand_pages_programmed)
        .field("wall_secs", setup_secs + run_secs)
        .field("setup_secs", setup_secs)
        .field("run_secs", run_secs)
        .field(
            "host_pages_per_wall_sec",
            per_sec(report.device.host_pages_written),
        )
        .field(
            "nand_pages_per_wall_sec",
            per_sec(report.device.nand_pages_programmed),
        )
        .field("ops_per_wall_sec", per_sec(report.device.ops))
        .field("worker_threads", args.worker_threads as u64)
        // Schema 9: the quiescence fast-forward telemetry (wall-clock
        // only; the deterministic report carries neither counter).
        .field("fast_forward", args.fast_forward)
        .field("ticks_skipped", ticks_skipped)
        .field("ff_spans", ff_spans)
        // Schema 8: the multi-tenant service block (deterministic).
        .field("service", report.to_json())
        .build()
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "n/a".to_owned(), |v| v.to_string())
}

fn print_table(report: &ServiceReport) {
    println!("policy          {}", report.device.policy);
    println!(
        "service         {} tenants, SQ depth {}, window {}, backpressure {}",
        report.tenants.len(),
        report.sq_depth,
        report.dispatch_window,
        if report.backpressure { "on" } else { "off" }
    );
    println!(
        "tiers           green {:.3}s / yellow {:.3}s / red {:.3}s / black {:.3}s ({} transitions)",
        report.tier.residency_us[0] as f64 / 1e6,
        report.tier.residency_us[1] as f64 / 1e6,
        report.tier.residency_us[2] as f64 / 1e6,
        report.tier.residency_us[3] as f64 / 1e6,
        report.tier.transitions.len() - 1
    );
    println!(
        "device          WAF {} / FGC {} / p999 {} µs",
        report
            .device
            .waf
            .map_or_else(|| "n/a".to_owned(), |w| format!("{w:.3}")),
        report.device.fgc_request_stalls + report.device.fgc_flush_stalls,
        report.device.latency_p999_us
    );
    println!(
        "{:<10}{:>7}{:>8}{:>10}{:>8}{:>9}{:>9}{:>8}{:>10}{:>10}",
        "tenant", "weight", "share", "done", "shed", "defer", "waf", "p50", "p999 µs", "max µs"
    );
    for t in &report.tenants {
        println!(
            "{:<10}{:>7}{:>8}{:>10}{:>8}{:>9}{:>9}{:>8}{:>10}{:>10}",
            t.name,
            t.weight,
            t.served_share
                .map_or_else(|| "n/a".to_owned(), |s| format!("{:.1}%", s * 100.0)),
            t.completed,
            t.shed,
            t.deferred,
            t.waf
                .map_or_else(|| "n/a".to_owned(), |w| format!("{w:.2}")),
            fmt_opt(t.latency_p50_us),
            fmt_opt(t.latency_p999_us),
            fmt_opt(t.latency_max_us),
        );
    }
}

fn main() {
    let args = parse_args();
    let mut system = if args.small {
        SystemConfig::small_for_tests()
    } else {
        SystemConfig::default_sim()
    };
    system.prefill = args.prefill;
    let cfg = ServiceConfig {
        tenants: args.tenants.clone(),
        sq_depth: args.sq_depth,
        dispatch_window: args.dispatch_window,
        tiers: args.tiers,
        backpressure: args.backpressure,
        worker_threads: args.worker_threads,
        fast_forward: args.fast_forward,
        seconds: args.seconds,
        seed: args.seed,
        system,
    };
    if let Err(message) = cfg.validate() {
        fail(message);
    }
    if args.listen.is_some() && args.unix.is_some() {
        fail("--listen and --unix are mutually exclusive".into());
    }

    let setup_start = Instant::now();
    let (report, ticks_skipped, ff_spans) = if args.listen.is_some() || args.unix.is_some() {
        let endpoint = if let Some(addr) = &args.listen {
            let listener = std::net::TcpListener::bind(addr)
                .unwrap_or_else(|e| fail(format!("cannot listen on {addr}: {e}")));
            eprintln!(
                "listening on {}",
                listener.local_addr().expect("bound socket has an address")
            );
            Endpoint::Tcp(listener)
        } else {
            #[cfg(unix)]
            {
                let path = args.unix.as_deref().expect("checked above");
                let listener = std::os::unix::net::UnixListener::bind(path)
                    .unwrap_or_else(|e| fail(format!("cannot listen on {path}: {e}")));
                eprintln!("listening on {path}");
                Endpoint::Unix(listener)
            }
            #[cfg(not(unix))]
            fail("--unix requires a unix platform".into())
        };
        let sessions = args.sessions.unwrap_or(cfg.tenants.len());
        let seconds = cfg.seconds;
        let service = Service::new(cfg, args.policy.build(&args_system(&args)));
        let mut service = serve(endpoint, service, sessions)
            .unwrap_or_else(|e| fail(format!("serve failed: {e}")));
        let report = service.finalize(SimTime::from_secs(seconds));
        (report, service.ticks_skipped(), service.ff_spans())
    } else {
        run_closed_loop_counting(&cfg, args.policy.build(&cfg.system))
    };
    let setup_plus_run = setup_start.elapsed().as_secs_f64();

    if let Some(path) = &args.bench_json {
        // The whole wall time is `run` here; the service builds its
        // engine inside the run (prefill included in setup would need
        // instrumentation the report does not carry).
        let record = perf_record(&args, &report, ticks_skipped, ff_spans, 0.0, setup_plus_run);
        std::fs::write(path, record.to_pretty()).expect("write bench JSON");
        eprintln!("wrote perf record to {path}");
    }
    if args.json {
        println!("{}", report.to_json().to_pretty());
    } else {
        print_table(&report);
    }
}

/// The system config for serve mode (rebuilt because `cfg` moved into the
/// service).
fn args_system(args: &Args) -> SystemConfig {
    let mut system = if args.small {
        SystemConfig::small_for_tests()
    } else {
        SystemConfig::default_sim()
    };
    system.prefill = args.prefill;
    system
}
