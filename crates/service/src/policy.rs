//! GC-policy selection for the service CLI and examples.
//!
//! A deliberately small mirror of the bench harness's policy matrix so
//! `ssdsimd` does not need a dependency on the experiment crate: the same
//! `jitgc-core` constructors, addressed by the CLI names the rest of the
//! repository uses.

use jitgc_core::policy::{AdpGc, GcPolicy, IdleGc, JitGc, NoBgc, ReservedCapacity};
use jitgc_core::system::SystemConfig;

/// Which background-GC policy the service's engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// No background GC.
    NoBgc,
    /// The paper's L-BGC: fixed reserve of `0.5 × C_OP`.
    Lbgc,
    /// The paper's A-BGC: fixed reserve of `1.5 × C_OP`.
    Abgc,
    /// The adaptive device-internal baseline.
    Adp,
    /// Idle-time-exploiting BGC.
    Idle,
    /// The paper's contribution.
    Jit,
    /// JIT-GC with SIP victim filtering disabled (ablation).
    JitNoSip,
}

impl PolicyChoice {
    /// Every selectable policy, in CLI listing order.
    pub const ALL: [PolicyChoice; 7] = [
        PolicyChoice::NoBgc,
        PolicyChoice::Lbgc,
        PolicyChoice::Abgc,
        PolicyChoice::Adp,
        PolicyChoice::Idle,
        PolicyChoice::Jit,
        PolicyChoice::JitNoSip,
    ];

    /// The `--policy` flag value selecting this policy.
    #[must_use]
    pub fn flag(self) -> &'static str {
        match self {
            PolicyChoice::NoBgc => "none",
            PolicyChoice::Lbgc => "lbgc",
            PolicyChoice::Abgc => "abgc",
            PolicyChoice::Adp => "adp",
            PolicyChoice::Idle => "idle",
            PolicyChoice::Jit => "jit",
            PolicyChoice::JitNoSip => "jit-nosip",
        }
    }

    /// Parses a `--policy` flag value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.flag() == s)
    }

    /// Instantiates the policy for the given system configuration.
    #[must_use]
    pub fn build(self, config: &SystemConfig) -> Box<dyn GcPolicy> {
        let (bw, gc_bw) = config.default_bandwidths();
        match self {
            PolicyChoice::NoBgc => Box::new(NoBgc),
            PolicyChoice::Lbgc => {
                Box::new(ReservedCapacity::of_op_permille(config.op_capacity(), 500))
            }
            PolicyChoice::Abgc => Box::new(ReservedCapacity::of_op_permille(
                config.op_capacity(),
                1_500,
            )),
            PolicyChoice::Adp => Box::new(AdpGc::new(
                config.flusher_period,
                config.tau_expire(),
                config.cdh_percentile,
                config.cdh_bin_bytes,
                bw,
                gc_bw,
            )),
            PolicyChoice::Idle => Box::new(IdleGc::default()),
            PolicyChoice::Jit => Box::new(JitGc::from_system_config(config)),
            PolicyChoice::JitNoSip => {
                Box::new(JitGc::from_system_config(config).without_sip_filtering())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_round_trip() {
        for p in PolicyChoice::ALL {
            assert_eq!(PolicyChoice::parse(p.flag()), Some(p));
        }
        assert_eq!(PolicyChoice::parse("magic"), None);
    }

    #[test]
    fn every_choice_builds() {
        let cfg = SystemConfig::small_for_tests();
        for p in PolicyChoice::ALL {
            assert!(!p.build(&cfg).name().is_empty());
        }
    }
}
