//! Network frontend: the wire protocol served over TCP or Unix sockets.
//!
//! Hand-rolled on `std::net` + `std::thread` + channels (the workspace is
//! offline-only; no async runtime). One reader thread per connection
//! parses [`Frame`]s into an event channel; a single dispatcher loop on
//! the calling thread owns the [`Service`] and does all submission,
//! pumping, and completion routing; one writer thread per connection
//! drains outbound frames.
//!
//! Unlike the in-process driver, the network path maps *wall-clock*
//! arrival times onto the service's virtual clock, so network runs are
//! only as reproducible as their clients — determinism is claimed for
//! [`run_closed_loop`](crate::run_closed_loop) only. Whenever the
//! dispatcher has queued work it drains it to completion in virtual time
//! before blocking on the next event, so every accepted submission is
//! answered promptly.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::mpsc;
use std::time::Instant;

use jitgc_sim::SimTime;

use crate::proto::{read_frame, write_frame, Frame};
use crate::queue::Completion;
use crate::service::Service;

/// Where the server listens.
pub enum Endpoint {
    /// A TCP listener (e.g. bound to `127.0.0.1:0`).
    Tcp(TcpListener),
    /// A Unix-domain socket listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

enum AnyStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl AnyStream {
    fn try_clone(&self) -> io::Result<AnyStream> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

enum Event {
    Connected(usize, mpsc::Sender<Frame>),
    Frame(usize, Frame),
    Disconnected(usize),
}

/// Runs queued work to completion in virtual time: the virtual clock may
/// jump ahead of the wall clock so accepted submissions always answer.
fn drain_all(service: &mut Service, vnow: &mut SimTime) {
    loop {
        service.pump(*vnow);
        if !service.has_queued() {
            return;
        }
        match service.next_window_free() {
            Some(t) => {
                *vnow = (*vnow).max(t);
                service.release_window(*vnow);
            }
            None => return,
        }
    }
}

/// Serves exactly `sessions` client sessions over `endpoint`, then
/// returns the service (so the caller can [`finalize`](Service::finalize)
/// and report). Each session is `HELLO → HELLO_OK`, submissions, `BYE`.
/// A `HELLO` naming an unknown tenant, or a tenant another live session
/// already claimed, drops that connection.
///
/// # Errors
///
/// Returns the first accept-loop I/O error; per-connection errors just
/// end that connection.
pub fn serve(endpoint: Endpoint, mut service: Service, sessions: usize) -> io::Result<Service> {
    let (events_tx, events_rx) = mpsc::channel::<Event>();
    let accept_tx = events_tx.clone();
    drop(events_tx);
    let acceptor = std::thread::spawn(move || -> io::Result<()> {
        let mut readers = Vec::new();
        for conn in 0..sessions {
            let stream = match &endpoint {
                Endpoint::Tcp(l) => AnyStream::Tcp(l.accept()?.0),
                #[cfg(unix)]
                Endpoint::Unix(l) => AnyStream::Unix(l.accept()?.0),
            };
            let mut read_half = stream.try_clone()?;
            let write_half = stream;
            let (out_tx, out_rx) = mpsc::channel::<Frame>();
            let events = accept_tx.clone();
            let _ = events.send(Event::Connected(conn, out_tx));
            readers.push(std::thread::spawn(move || {
                while let Ok(Some(frame)) = read_frame(&mut read_half) {
                    let bye = frame == Frame::Bye;
                    if events.send(Event::Frame(conn, frame)).is_err() || bye {
                        break;
                    }
                }
                let _ = events.send(Event::Disconnected(conn));
            }));
            // Writer threads die when the dispatcher drops their sender.
            std::thread::spawn(move || {
                let mut w = write_half;
                while let Ok(frame) = out_rx.recv() {
                    if write_frame(&mut w, &frame).is_err() {
                        break;
                    }
                }
            });
        }
        for r in readers {
            let _ = r.join();
        }
        Ok(())
    });

    let start = Instant::now();
    let mut vnow = SimTime::ZERO;
    let mut writers: HashMap<usize, mpsc::Sender<Frame>> = HashMap::new();
    // Per connection: the tenant it serves and wire-id bookkeeping
    // (service ids are assigned per tenant; the wire echoes client ids).
    let mut tenant_of: HashMap<usize, usize> = HashMap::new();
    let mut claimed: HashMap<usize, usize> = HashMap::new();
    let mut wire_ids: HashMap<(usize, u64), u64> = HashMap::new();

    while let Ok(event) = events_rx.recv() {
        vnow = vnow.max(SimTime::from_micros(start.elapsed().as_micros() as u64));
        match event {
            Event::Connected(conn, tx) => {
                writers.insert(conn, tx);
            }
            Event::Disconnected(conn) => {
                writers.remove(&conn);
                if let Some(tenant) = tenant_of.remove(&conn) {
                    claimed.remove(&tenant);
                }
            }
            Event::Frame(conn, Frame::Hello { name, .. }) => {
                let tenant = service.config().tenants.iter().position(|t| t.name == name);
                match tenant {
                    Some(t) if !claimed.contains_key(&t) => {
                        claimed.insert(t, conn);
                        tenant_of.insert(conn, t);
                        if let Some(tx) = writers.get(&conn) {
                            let _ = tx.send(Frame::HelloOk { tenant: t as u16 });
                        }
                    }
                    _ => {
                        // Unknown or already-claimed tenant: drop the
                        // connection by closing its writer.
                        writers.remove(&conn);
                    }
                }
            }
            Event::Frame(
                conn,
                Frame::Submit {
                    id,
                    kind,
                    lpn,
                    pages,
                },
            ) => {
                let Some(&tenant) = tenant_of.get(&conn) else {
                    continue; // SUBMIT before HELLO_OK: ignore.
                };
                let outcome = service.submit(tenant, kind, lpn, pages, vnow);
                wire_ids.insert((tenant, outcome.id()), id);
                drain_all(&mut service, &mut vnow);
                for (&c, &t) in &tenant_of {
                    for done in service.take_completions(t) {
                        route(&writers, &mut wire_ids, c, t, done);
                    }
                }
            }
            Event::Frame(_, _) => {}
        }
    }
    // The event channel closes once the acceptor has served `sessions`
    // connections and every reader thread has exited.
    acceptor
        .join()
        .map_err(|_| io::Error::other("acceptor thread panicked"))??;
    Ok(service)
}

fn route(
    writers: &HashMap<usize, mpsc::Sender<Frame>>,
    wire_ids: &mut HashMap<(usize, u64), u64>,
    conn: usize,
    tenant: usize,
    done: Completion,
) {
    let id = wire_ids.remove(&(tenant, done.id)).unwrap_or(done.id);
    if let Some(tx) = writers.get(&conn) {
        let _ = tx.send(Frame::Complete {
            id,
            status: done.status,
            submitted_us: done.submitted_at.as_micros(),
            completed_us: done.completed_at.as_micros(),
        });
    }
}

/// A minimal blocking client for tests and examples.
pub struct Client<S: Read + Write> {
    stream: S,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect_tcp(addr: std::net::SocketAddr) -> io::Result<Self> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect_unix(path: &std::path::Path) -> io::Result<Self> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected stream.
    pub fn new(stream: S) -> Self {
        Client { stream }
    }

    /// Opens the session as tenant `name`; returns the assigned index.
    ///
    /// # Errors
    ///
    /// Fails if the server drops the connection (unknown tenant) or
    /// answers with anything but `HELLO_OK`.
    pub fn hello(&mut self, name: &str, weight: u64) -> io::Result<u16> {
        write_frame(
            &mut self.stream,
            &Frame::Hello {
                weight,
                name: name.into(),
            },
        )?;
        match read_frame(&mut self.stream)? {
            Some(Frame::HelloOk { tenant }) => Ok(tenant),
            other => Err(io::Error::other(format!(
                "expected HELLO_OK, got {other:?}"
            ))),
        }
    }

    /// Submits one request.
    ///
    /// # Errors
    ///
    /// Propagates the write error.
    pub fn submit(
        &mut self,
        id: u64,
        kind: jitgc_workload::IoKind,
        lpn: u64,
        pages: u32,
    ) -> io::Result<()> {
        write_frame(
            &mut self.stream,
            &Frame::Submit {
                id,
                kind,
                lpn,
                pages,
            },
        )
    }

    /// Blocks for the next completion.
    ///
    /// # Errors
    ///
    /// Fails on EOF or a non-`COMPLETE` frame.
    pub fn next_completion(&mut self) -> io::Result<(u64, crate::queue::CompletionStatus)> {
        match read_frame(&mut self.stream)? {
            Some(Frame::Complete { id, status, .. }) => Ok((id, status)),
            other => Err(io::Error::other(format!(
                "expected COMPLETE, got {other:?}"
            ))),
        }
    }

    /// Ends the session.
    ///
    /// # Errors
    ///
    /// Propagates the write error.
    pub fn bye(mut self) -> io::Result<()> {
        write_frame(&mut self.stream, &Frame::Bye)
    }
}
