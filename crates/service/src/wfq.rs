//! Weighted fair queueing by virtual finish time.
//!
//! The arbiter keeps a per-tenant virtual *finish tag* and a global
//! virtual clock, all in fixed-point integer arithmetic so scheduling is
//! exactly reproducible. Dispatching a request of `cost` bytes from
//! tenant `i` advances that tenant's tag by `cost / weight_i` virtual
//! units (start-time fair queueing): a tenant with twice the weight pays
//! half the virtual time per byte and therefore wins the arbiter twice
//! as often at equal demand. While a tenant stays backlogged its tag
//! evolves only through its own dispatches — that lag behind the clock
//! *is* its earned service credit. Only when an idle tenant returns
//! ([`arrive`](WfqArbiter::arrive)) is its tag clamped up to the virtual
//! clock, so nobody banks credit while away.

/// Fixed-point scale of virtual time: one byte at weight 1 costs
/// `SCALE` virtual units, so integer division by the weight keeps ~20
/// bits of fraction.
const SCALE: u128 = 1 << 20;

/// The weighted-fair-queueing arbiter.
#[derive(Debug, Clone)]
pub struct WfqArbiter {
    weights: Vec<u64>,
    finish: Vec<u128>,
    virtual_time: u128,
    served_bytes: Vec<u64>,
}

impl WfqArbiter {
    /// Creates an arbiter for the given tenant weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is zero (validated upstream by
    /// [`ServiceConfig::validate`](crate::ServiceConfig::validate)).
    #[must_use]
    pub fn new(weights: &[u64]) -> Self {
        assert!(
            weights.iter().all(|&w| w > 0),
            "fair-queueing weights must be positive"
        );
        WfqArbiter {
            weights: weights.to_vec(),
            finish: vec![0; weights.len()],
            virtual_time: 0,
            served_bytes: vec![0; weights.len()],
        }
    }

    /// Notifies the arbiter that tenant `tenant` went from idle to
    /// backlogged: its finish tag is clamped up to the virtual clock so
    /// time spent idle earns no catch-up credit. Calling this for an
    /// already-backlogged tenant would erase its earned lag — the caller
    /// invokes it only on the empty→non-empty queue transition.
    pub fn arrive(&mut self, tenant: usize) {
        self.finish[tenant] = self.finish[tenant].max(self.virtual_time);
    }

    /// The virtual finish tag tenant `tenant` would carry after serving a
    /// request of `cost_bytes`.
    #[must_use]
    pub fn finish_tag(&self, tenant: usize, cost_bytes: u64) -> u128 {
        self.finish[tenant] + u128::from(cost_bytes) * SCALE / u128::from(self.weights[tenant])
    }

    /// Picks the next tenant to serve among `candidates` (tenant index +
    /// head-of-queue cost in bytes): the minimum virtual finish tag, ties
    /// broken by the lower tenant index. Deterministic for any candidate
    /// iteration order.
    #[must_use]
    pub fn pick(&self, candidates: impl Iterator<Item = (usize, u64)>) -> Option<usize> {
        candidates
            .map(|(tenant, cost)| (self.finish_tag(tenant, cost), tenant))
            .min()
            .map(|(_, tenant)| tenant)
    }

    /// Charges tenant `tenant` for a dispatched request of `cost_bytes`
    /// and advances the virtual clock to the request's start tag (the
    /// clock never moves backward).
    pub fn dispatch(&mut self, tenant: usize, cost_bytes: u64) {
        let start = self.finish[tenant];
        self.finish[tenant] =
            start + u128::from(cost_bytes) * SCALE / u128::from(self.weights[tenant]);
        self.virtual_time = self.virtual_time.max(start);
        self.served_bytes[tenant] += cost_bytes;
    }

    /// Total bytes served to tenant `tenant` so far.
    #[must_use]
    pub fn served_bytes(&self, tenant: usize) -> u64 {
        self.served_bytes[tenant]
    }

    /// The current virtual clock (diagnostic).
    #[must_use]
    pub fn virtual_time(&self) -> u128 {
        self.virtual_time
    }

    /// This tenant's configured weight as a fraction of the roster total.
    #[must_use]
    pub fn weight_share(&self, tenant: usize) -> f64 {
        let total: u64 = self.weights.iter().sum();
        self.weights[tenant] as f64 / total as f64
    }

    /// This tenant's served bytes as a fraction of all bytes served.
    /// `None` before the first dispatch.
    #[must_use]
    pub fn served_share(&self, tenant: usize) -> Option<f64> {
        let total: u64 = self.served_bytes.iter().sum();
        (total > 0).then(|| self.served_bytes[tenant] as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_sim::SimRng;

    /// Always-backlogged tenants with equal request sizes must converge
    /// to their weight shares.
    #[test]
    fn backlogged_tenants_serve_in_weight_proportion() {
        let mut wfq = WfqArbiter::new(&[1, 3]);
        for _ in 0..4_000 {
            let t = wfq
                .pick([(0usize, 4_096u64), (1, 4_096)].into_iter())
                .unwrap();
            wfq.dispatch(t, 4_096);
        }
        let share = wfq.served_share(0).unwrap();
        assert!((share - 0.25).abs() < 0.01, "weight-1 share {share}");
        assert!((wfq.weight_share(0) - 0.25).abs() < 1e-12);
    }

    /// Random weights and random per-request sizes, all tenants always
    /// backlogged: the served-byte share of every tenant converges to its
    /// weight share within a few percent, and every tenant progresses
    /// (no starvation). Mirrors the proptest suite at a fixed seed set so
    /// the invariant is exercised in default builds too.
    #[test]
    fn random_mixes_converge_to_weight_shares() {
        for seed in [1u64, 7, 99, 1234] {
            let mut rng = SimRng::seed(seed);
            let n = 2 + (rng.range_u64(0, 5) as usize);
            let weights: Vec<u64> = (0..n).map(|_| rng.range_u64(1, 17)).collect();
            let mut wfq = WfqArbiter::new(&weights);
            let mut served = vec![0u64; n];
            let total_bytes = 256u64 * 1024 * 1024;
            let mut dispatched = 0u64;
            while dispatched < total_bytes {
                let costs: Vec<(usize, u64)> = (0..n)
                    .map(|t| (t, (1 + rng.range_u64(0, 32)) * 4_096))
                    .collect();
                let t = wfq.pick(costs.iter().copied()).unwrap();
                let cost = costs[t].1;
                wfq.dispatch(t, cost);
                served[t] += cost;
                dispatched += cost;
            }
            let wsum: u64 = weights.iter().sum();
            for t in 0..n {
                assert!(served[t] > 0, "seed {seed}: tenant {t} starved");
                let share = served[t] as f64 / dispatched as f64;
                let want = weights[t] as f64 / wsum as f64;
                assert!(
                    (share - want).abs() < 0.03,
                    "seed {seed}: tenant {t} share {share:.3} vs weight share {want:.3}"
                );
            }
        }
    }

    /// A tenant that sat idle does not bank virtual time: on return it
    /// competes from the current clock, not from zero.
    #[test]
    fn idle_tenant_cannot_bank_credit() {
        let mut wfq = WfqArbiter::new(&[1, 1]);
        // Tenant 0 alone for a long stretch.
        for _ in 0..1_000 {
            wfq.dispatch(0, 4_096);
        }
        // Tenant 1 arrives; both backlogged from here on.
        wfq.arrive(1);
        let before = wfq.served_bytes(0);
        for _ in 0..200 {
            let t = wfq
                .pick([(0usize, 4_096u64), (1, 4_096)].into_iter())
                .unwrap();
            wfq.dispatch(t, 4_096);
        }
        let t0 = wfq.served_bytes(0) - before;
        let t1 = wfq.served_bytes(1);
        // Equal weights: the new arrival gets at most one extra quantum,
        // never a 1000-request catch-up burst.
        assert!(
            t1 <= t0 + 4_096,
            "returning tenant banked credit: {t1} vs {t0}"
        );
        assert!(t0 > 0, "incumbent starved by the returning tenant");
    }

    #[test]
    fn ties_break_to_the_lower_index() {
        let wfq = WfqArbiter::new(&[2, 2, 2]);
        assert_eq!(
            wfq.pick([(2usize, 100u64), (0, 100), (1, 100)].into_iter()),
            Some(0)
        );
    }

    #[test]
    fn empty_candidate_set_picks_nothing() {
        let wfq = WfqArbiter::new(&[1]);
        assert_eq!(wfq.pick(std::iter::empty()), None);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_weight_is_rejected() {
        let _ = WfqArbiter::new(&[1, 0]);
    }
}
