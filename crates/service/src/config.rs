//! Service configuration and named-knob validation.

use jitgc_core::system::SystemConfig;

/// The I/O personality a tenant's closed-loop driver generates.
///
/// The wire frontend accepts whatever a client submits; profiles exist so
/// the in-process deterministic driver (and the `ssdsimd` demo) can stand
/// up a recognisable tenant mix without a per-tenant workload DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantProfile {
    /// Latency-sensitive read-only tenant (point reads, 1–4 pages).
    Reader,
    /// Throughput-oriented writer (large 8–32-page writes, no reads).
    Writer,
    /// A 50/50 read/write tenant with small requests.
    Mixed,
}

impl TenantProfile {
    /// Display name, also the value accepted by the `--tenants` flag.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TenantProfile::Reader => "reader",
            TenantProfile::Writer => "writer",
            TenantProfile::Mixed => "mixed",
        }
    }

    /// Parses a `--tenants` profile token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reader" => Some(TenantProfile::Reader),
            "writer" => Some(TenantProfile::Writer),
            "mixed" => Some(TenantProfile::Mixed),
            _ => None,
        }
    }
}

impl std::fmt::Display for TenantProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One tenant of the service: an independent request stream with its own
/// queue pair, fair-queueing weight, and closed-loop think threads.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Display name (and the wire protocol's HELLO identity).
    pub name: String,
    /// Fair-queueing weight (> 0). The arbiter serves backlogged tenants
    /// in proportion to weight; backpressure tiers treat tenants whose
    /// weight is below the mix's mean as "low-weight".
    pub weight: u64,
    /// Request-stream personality for the in-process driver.
    pub profile: TenantProfile,
    /// Mean arrival rate of this tenant's closed-loop threads.
    pub mean_iops: f64,
    /// Closed-loop application threads (each keeps one request in flight).
    pub concurrency: u32,
}

/// Tier entry thresholds on the service's pressure signal, plus the
/// hysteresis margin for leaving a tier.
///
/// Pressure is `max(queue occupancy fraction, GC debt)` in `[0, 1]`.
/// A tier is entered when pressure reaches its threshold and left only
/// when pressure falls below `threshold − hysteresis`, so a signal
/// hovering at a boundary cannot oscillate the tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierThresholds {
    /// Entry threshold of Yellow (defer low-weight tenants' writes).
    pub yellow: f64,
    /// Entry threshold of Red (shed low-weight tenants' writes as Busy).
    pub red: f64,
    /// Entry threshold of Black (admit only reads).
    pub black: f64,
    /// Margin below a tier's entry threshold required to leave it.
    pub hysteresis: f64,
}

impl Default for TierThresholds {
    fn default() -> Self {
        TierThresholds {
            yellow: 0.50,
            red: 0.75,
            black: 0.90,
            hysteresis: 0.05,
        }
    }
}

/// Configuration of the whole multi-tenant service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The tenant roster (≥ 1 entry). The device's logical space is
    /// partitioned evenly across tenants.
    pub tenants: Vec<TenantSpec>,
    /// Per-tenant submission-queue depth (> 0). A full SQ blocks further
    /// submissions from that tenant (they wait in a stalled buffer and
    /// re-enter admission when the queue drains).
    pub sq_depth: usize,
    /// How many dispatched requests may be in flight at the device at
    /// once (> 0) — the service-side analogue of NVMe queue depth.
    pub dispatch_window: usize,
    /// Backpressure tier thresholds (strictly increasing).
    pub tiers: TierThresholds,
    /// Master switch: with backpressure off the tier policy still tracks
    /// pressure (for the report) but never defers or sheds.
    pub backpressure: bool,
    /// Worker threads for the parallel per-tenant trace-generation phase
    /// of the in-process driver (≥ 1, ≤ tenant count). Reports are
    /// byte-identical for any value.
    pub worker_threads: usize,
    /// Engine quiescence fast-forward (DESIGN.md §15; on by default).
    /// Byte-identical reports either way — purely a wall-clock switch,
    /// kept here so an A/B harness can flip it per run.
    pub fast_forward: bool,
    /// Simulated seconds each tenant's workload emits.
    pub seconds: u64,
    /// Base RNG seed; tenant `i` derives its stream seed from it.
    pub seed: u64,
    /// The backing device (engine) configuration.
    pub system: SystemConfig,
}

impl ServiceConfig {
    /// A small three-tenant configuration for tests and examples: one hot
    /// writer, one latency-sensitive reader, one mixed tenant, on the
    /// `small_for_tests` device.
    #[must_use]
    pub fn small_for_tests() -> Self {
        ServiceConfig {
            tenants: vec![
                TenantSpec {
                    name: "writer".into(),
                    weight: 1,
                    profile: TenantProfile::Writer,
                    mean_iops: 1_200.0,
                    concurrency: 8,
                },
                TenantSpec {
                    name: "reader".into(),
                    weight: 4,
                    profile: TenantProfile::Reader,
                    mean_iops: 400.0,
                    concurrency: 2,
                },
                TenantSpec {
                    name: "mixed".into(),
                    weight: 2,
                    profile: TenantProfile::Mixed,
                    mean_iops: 400.0,
                    concurrency: 2,
                },
            ],
            sq_depth: 16,
            dispatch_window: 8,
            tiers: TierThresholds::default(),
            backpressure: true,
            worker_threads: 1,
            fast_forward: true,
            seconds: 30,
            seed: 42,
            system: SystemConfig::small_for_tests(),
        }
    }

    /// Checks every knob, returning a human-readable error naming the
    /// offending one for the CLI to print instead of a panic deep in the
    /// scheduler. [`Service::new`](crate::Service::new) asserts this.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob when the tenant list
    /// is empty, any weight is zero, any concurrency or arrival rate is
    /// non-positive, the SQ depth or dispatch window is zero, the tier
    /// thresholds are not strictly increasing within `(0, 1]`, the
    /// hysteresis is negative or at least the Yellow threshold, the
    /// worker-thread count is zero or exceeds the tenant count, or the
    /// tenants' combined working set does not fit the device.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants.is_empty() {
            return Err("the service needs at least one tenant".into());
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight == 0 {
                return Err(format!(
                    "tenant {} ({}) has weight 0; fair-queueing weights must be positive",
                    i, t.name
                ));
            }
            if t.concurrency == 0 {
                return Err(format!(
                    "tenant {} ({}) has concurrency 0; a closed loop needs at least one thread",
                    i, t.name
                ));
            }
            if t.mean_iops.is_nan() || t.mean_iops <= 0.0 {
                return Err(format!(
                    "tenant {} ({}) has non-positive mean IOPS {}",
                    i, t.name, t.mean_iops
                ));
            }
        }
        if self.sq_depth == 0 {
            return Err("the submission-queue depth must be at least 1".into());
        }
        if self.dispatch_window == 0 {
            return Err("the dispatch window must be at least 1".into());
        }
        let t = &self.tiers;
        if !(t.yellow > 0.0 && t.yellow < t.red && t.red < t.black && t.black <= 1.0) {
            return Err(format!(
                "tier thresholds must be strictly increasing within (0, 1]: \
                 yellow {} < red {} < black {}",
                t.yellow, t.red, t.black
            ));
        }
        if !(t.hysteresis >= 0.0 && t.hysteresis < t.yellow) {
            return Err(format!(
                "tier hysteresis {} must be non-negative and below the Yellow threshold {}",
                t.hysteresis, t.yellow
            ));
        }
        if self.worker_threads == 0 {
            return Err("trace generation needs at least one worker thread".into());
        }
        if self.worker_threads > self.tenants.len() {
            return Err(format!(
                "{} worker threads exceed the {} tenants; extra workers would never find work",
                self.worker_threads,
                self.tenants.len()
            ));
        }
        if self.seconds == 0 {
            return Err("the run needs at least one simulated second".into());
        }
        let usable = self.system.ftl.user_pages() - self.system.ftl.op_pages() / 2;
        let per_tenant = usable / self.tenants.len() as u64;
        if per_tenant < 64 {
            return Err(format!(
                "{} tenants leave {per_tenant} pages each on this device; \
                 shrink the roster or grow the device",
                self.tenants.len()
            ));
        }
        Ok(())
    }

    /// Pages of logical space each tenant owns: the standard experiment
    /// working set (user capacity minus half the over-provisioning) split
    /// evenly across the roster.
    #[must_use]
    pub fn pages_per_tenant(&self) -> u64 {
        let usable = self.system.ftl.user_pages() - self.system.ftl.op_pages() / 2;
        usable / self.tenants.len() as u64
    }

    /// Mean weight of the roster; tenants strictly below it are the
    /// "low-weight" class that Yellow defers and Red sheds.
    #[must_use]
    pub fn mean_weight(&self) -> f64 {
        let sum: u64 = self.tenants.iter().map(|t| t.weight).sum();
        sum as f64 / self.tenants.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_validates() {
        assert_eq!(ServiceConfig::small_for_tests().validate(), Ok(()));
    }

    #[test]
    fn validate_names_the_offending_knob() {
        let err = |mutate: &dyn Fn(&mut ServiceConfig)| {
            let mut cfg = ServiceConfig::small_for_tests();
            mutate(&mut cfg);
            cfg.validate().unwrap_err()
        };
        assert!(err(&|c| c.tenants.clear()).contains("at least one tenant"));
        assert!(err(&|c| c.tenants[0].weight = 0).contains("weight 0"));
        assert!(err(&|c| c.tenants[1].concurrency = 0).contains("concurrency 0"));
        assert!(err(&|c| c.tenants[2].mean_iops = 0.0).contains("mean IOPS"));
        assert!(err(&|c| c.sq_depth = 0).contains("submission-queue depth"));
        assert!(err(&|c| c.dispatch_window = 0).contains("dispatch window"));
        assert!(err(&|c| c.tiers.red = 0.4).contains("strictly increasing"));
        assert!(err(&|c| c.tiers.black = 1.5).contains("strictly increasing"));
        assert!(err(&|c| c.tiers.hysteresis = 0.6).contains("hysteresis"));
        assert!(err(&|c| c.worker_threads = 0).contains("worker thread"));
        assert!(err(&|c| c.worker_threads = 9).contains("exceed"));
        assert!(err(&|c| c.seconds = 0).contains("simulated second"));
    }

    #[test]
    fn profile_parse_round_trips() {
        for p in [
            TenantProfile::Reader,
            TenantProfile::Writer,
            TenantProfile::Mixed,
        ] {
            assert_eq!(TenantProfile::parse(p.name()), Some(p));
        }
        assert_eq!(TenantProfile::parse("gamer"), None);
    }

    #[test]
    fn low_weight_class_is_below_mean() {
        let cfg = ServiceConfig::small_for_tests();
        // Weights 1, 4, 2 → mean 7/3 ≈ 2.33: writer and mixed are low.
        assert!((cfg.tenants[0].weight as f64) < cfg.mean_weight());
        assert!((cfg.tenants[1].weight as f64) > cfg.mean_weight());
    }
}
