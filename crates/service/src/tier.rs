//! Tiered backpressure: Green → Yellow → Red → Black with hysteresis.
//!
//! The service computes a scalar *pressure* in `[0, 1]` (the max of SQ
//! occupancy fraction and the engine's GC debt) and feeds it to a
//! [`TierPolicy`]. Tiers escalate immediately when pressure crosses an
//! entry threshold; they de-escalate only when pressure falls below the
//! entry threshold minus a hysteresis margin, so a pressure signal
//! sitting exactly at a boundary holds its tier instead of oscillating.
//!
//! What each tier *means* is enforced by the service, not here:
//! Green — admit and schedule everything; Yellow — the arbiter defers
//! low-weight tenants' writes while any other work is runnable; Red —
//! low-weight tenants' writes are shed at admission with an explicit
//! `Busy` completion; Black — only reads are admitted, every write is
//! shed.

use crate::config::TierThresholds;

/// The service's congestion tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// No pressure: admit and schedule everything.
    Green,
    /// Defer low-weight tenants' writes while other work is runnable.
    Yellow,
    /// Shed low-weight tenants' writes with `Busy` completions.
    Red,
    /// Admit only reads.
    Black,
}

impl Tier {
    /// All tiers in escalation order.
    pub const ALL: [Tier; 4] = [Tier::Green, Tier::Yellow, Tier::Red, Tier::Black];

    /// Display name (lower case, as reported in JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Green => "green",
            Tier::Yellow => "yellow",
            Tier::Red => "red",
            Tier::Black => "black",
        }
    }

    /// Index into per-tier accounting arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Tier::Green => 0,
            Tier::Yellow => 1,
            Tier::Red => 2,
            Tier::Black => 3,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hysteretic tier selection from a scalar pressure signal.
#[derive(Debug, Clone)]
pub struct TierPolicy {
    thresholds: TierThresholds,
    current: Tier,
}

impl TierPolicy {
    /// Creates a policy starting in Green.
    #[must_use]
    pub fn new(thresholds: TierThresholds) -> Self {
        TierPolicy {
            thresholds,
            current: Tier::Green,
        }
    }

    /// The current tier.
    #[must_use]
    pub fn current(&self) -> Tier {
        self.current
    }

    /// The configured thresholds.
    #[must_use]
    pub fn thresholds(&self) -> TierThresholds {
        self.thresholds
    }

    fn entry(&self, tier: Tier) -> f64 {
        match tier {
            Tier::Green => 0.0,
            Tier::Yellow => self.thresholds.yellow,
            Tier::Red => self.thresholds.red,
            Tier::Black => self.thresholds.black,
        }
    }

    /// Feeds one pressure observation and returns the (possibly new)
    /// tier. Escalation is immediate — pressure at or above an entry
    /// threshold jumps straight to the highest tier it qualifies for.
    /// De-escalation steps down only while pressure is below the current
    /// tier's entry threshold minus the hysteresis margin.
    pub fn update(&mut self, pressure: f64) -> Tier {
        let target = if pressure >= self.thresholds.black {
            Tier::Black
        } else if pressure >= self.thresholds.red {
            Tier::Red
        } else if pressure >= self.thresholds.yellow {
            Tier::Yellow
        } else {
            Tier::Green
        };
        if target > self.current {
            self.current = target;
        } else {
            while self.current > Tier::Green
                && pressure < self.entry(self.current) - self.thresholds.hysteresis
            {
                self.current = Tier::ALL[self.current.index() - 1];
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> TierPolicy {
        TierPolicy::new(TierThresholds {
            yellow: 0.5,
            red: 0.75,
            black: 0.9,
            hysteresis: 0.05,
        })
    }

    /// Full escalation ladder, then recovery, with hysteresis at every
    /// step of the way down.
    #[test]
    fn escalates_and_recovers_with_hysteresis() {
        let mut p = policy();
        assert_eq!(p.current(), Tier::Green);
        assert_eq!(p.update(0.4), Tier::Green);
        assert_eq!(p.update(0.5), Tier::Yellow);
        assert_eq!(p.update(0.75), Tier::Red);
        assert_eq!(p.update(0.95), Tier::Black);
        // Pressure back below Black's entry but within hysteresis: hold.
        assert_eq!(p.update(0.87), Tier::Black);
        // Below 0.9 − 0.05: drop one tier (0.84 ≥ 0.75 − 0.05 keeps Red).
        assert_eq!(p.update(0.84), Tier::Red);
        // A collapse drops through every tier whose exit bound it clears.
        assert_eq!(p.update(0.10), Tier::Green);
    }

    /// A signal oscillating exactly at a boundary must not flap the tier.
    #[test]
    fn no_oscillation_at_the_boundary() {
        let mut p = policy();
        assert_eq!(p.update(0.5), Tier::Yellow);
        for _ in 0..100 {
            // Dither within the hysteresis band around the threshold.
            assert_eq!(p.update(0.49), Tier::Yellow);
            assert_eq!(p.update(0.5), Tier::Yellow);
            assert_eq!(p.update(0.46), Tier::Yellow);
        }
        // Only a drop clear of the band releases the tier.
        assert_eq!(p.update(0.4499), Tier::Green);
    }

    /// Escalation can jump multiple tiers in one observation.
    #[test]
    fn spike_jumps_straight_to_black() {
        let mut p = policy();
        assert_eq!(p.update(1.0), Tier::Black);
    }

    #[test]
    fn tier_names_and_order() {
        assert!(Tier::Green < Tier::Yellow && Tier::Red < Tier::Black);
        assert_eq!(Tier::Red.name(), "red");
        assert_eq!(Tier::ALL[Tier::Black.index()], Tier::Black);
    }
}
