//! Deterministic in-process closed-loop driver.
//!
//! [`run_closed_loop`] stands up a [`Service`] and drives the configured
//! tenant mix against it entirely in virtual time. Each tenant runs
//! `concurrency` closed-loop application threads sharing one request
//! stream round-robin (the same model the engine uses for its own
//! `queue_depth`): a thread submits its next request no earlier than the
//! previous request's think-time gap and no earlier than its own previous
//! completion.
//!
//! # Determinism across worker threads
//!
//! `worker_threads` parallelism is confined to *trace generation*: each
//! tenant's request stream depends only on its own seed, so workers grab
//! tenant indices from an atomic counter, synthesize each stream
//! independently, and the results are scattered back by index. Everything
//! that involves the shared engine — submission, arbitration, stepping,
//! accounting — runs serially on the calling thread in one discrete-event
//! loop. The report is therefore byte-identical for any worker count.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use jitgc_core::policy::GcPolicy;
use jitgc_sim::SimTime;
use jitgc_workload::{IoRequest, Synthetic, Workload, WorkloadConfig};

use crate::config::{ServiceConfig, TenantProfile};
use crate::report::ServiceReport;
use crate::service::Service;

/// Odd 64-bit constant (golden-ratio based) decorrelating tenant seeds.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Synthesizes tenant `tenant`'s full request stream.
fn generate_trace(cfg: &ServiceConfig, tenant: usize) -> Vec<IoRequest> {
    let spec = &cfg.tenants[tenant];
    let wl_cfg = WorkloadConfig::builder()
        .working_set_pages(cfg.pages_per_tenant())
        .duration(jitgc_sim::SimDuration::from_secs(cfg.seconds))
        .mean_iops(spec.mean_iops)
        .seed(
            cfg.seed
                .wrapping_add((tenant as u64).wrapping_mul(SEED_STRIDE)),
        )
        .build();
    let builder = match spec.profile {
        TenantProfile::Reader => Synthetic::builder().read_fraction(1.0).pages(1, 4),
        TenantProfile::Writer => Synthetic::builder()
            .read_fraction(0.0)
            .buffered_fraction(0.7)
            .pages(8, 32),
        TenantProfile::Mixed => Synthetic::builder()
            .read_fraction(0.5)
            .buffered_fraction(0.7)
            .pages(1, 8),
    };
    let mut workload = builder.build(wl_cfg);
    let mut trace = Vec::new();
    while let Some(req) = workload.next_request() {
        trace.push(req);
    }
    trace
}

/// Generates every tenant's trace, fanning the independent streams out
/// over `cfg.worker_threads` workers.
fn generate_traces(cfg: &ServiceConfig) -> Vec<Vec<IoRequest>> {
    let n = cfg.tenants.len();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        for _ in 0..cfg.worker_threads.min(n) {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                tx.send((i, generate_trace(cfg, i)))
                    .expect("collector alive");
            });
        }
    });
    drop(tx);
    let mut traces: Vec<Vec<IoRequest>> = (0..n).map(|_| Vec::new()).collect();
    for (i, trace) in rx {
        traces[i] = trace;
    }
    traces
}

/// One tenant's closed-loop driving state.
struct TenantLoop {
    trace: Vec<IoRequest>,
    cursor: usize,
    prev_submit: SimTime,
    /// Per application thread: when it is free to submit again
    /// (`None` while its request is outstanding).
    slots: Vec<Option<SimTime>>,
    next_slot: usize,
    /// Outstanding request id → the slot waiting on it.
    pending: HashMap<u64, usize>,
}

impl TenantLoop {
    /// When this tenant submits next, if its stream has requests left and
    /// the round-robin slot is free.
    fn next_instant(&self) -> Option<SimTime> {
        let req = self.trace.get(self.cursor)?;
        let free = self.slots[self.next_slot]?;
        Some((self.prev_submit + req.gap).max(free))
    }
}

/// Runs the configured tenant mix to completion against a fresh service
/// and returns the report.
///
/// # Panics
///
/// Panics if [`ServiceConfig::validate`] rejects the configuration.
#[must_use]
pub fn run_closed_loop(cfg: &ServiceConfig, policy: Box<dyn GcPolicy>) -> ServiceReport {
    run_closed_loop_counting(cfg, policy).0
}

/// [`run_closed_loop`], additionally returning the engine's quiescence
/// fast-forward counters `(report, ticks_skipped, ff_spans)` — wall-clock
/// telemetry the deterministic report deliberately omits (the bench
/// harness records them; see `ssdsimd --bench-json`).
///
/// # Panics
///
/// Panics if [`ServiceConfig::validate`] rejects the configuration.
#[must_use]
pub fn run_closed_loop_counting(
    cfg: &ServiceConfig,
    policy: Box<dyn GcPolicy>,
) -> (ServiceReport, u64, u64) {
    if let Err(message) = cfg.validate() {
        panic!("invalid service config: {message}");
    }
    let traces = generate_traces(cfg);
    let mut service = Service::new(cfg.clone(), policy);
    let mut loops: Vec<TenantLoop> = traces
        .into_iter()
        .zip(&cfg.tenants)
        .map(|(trace, spec)| TenantLoop {
            trace,
            cursor: 0,
            prev_submit: SimTime::ZERO,
            slots: vec![Some(SimTime::ZERO); spec.concurrency as usize],
            next_slot: 0,
            pending: HashMap::new(),
        })
        .collect();
    let mut now = SimTime::ZERO;
    let mut last_completion = SimTime::ZERO;
    loop {
        let next_submit = loops.iter().filter_map(TenantLoop::next_instant).min();
        let window_free = if service.has_queued() {
            service.next_window_free()
        } else {
            None
        };
        let event = match (next_submit, window_free) {
            (Some(a), Some(b)) => a.min(b),
            (Some(t), None) | (None, Some(t)) => t,
            (None, None) => break,
        };
        now = now.max(event);
        service.release_window(now);
        for (tenant, l) in loops.iter_mut().enumerate() {
            while matches!(l.next_instant(), Some(t) if t <= now) {
                let req = l.trace[l.cursor];
                l.cursor += 1;
                l.prev_submit = now;
                let slot = l.next_slot;
                l.next_slot = (slot + 1) % l.slots.len();
                l.slots[slot] = None;
                let outcome = service.submit(tenant, req.kind, req.lpn.0, req.pages, now);
                l.pending.insert(outcome.id(), slot);
            }
        }
        service.pump(now);
        for (tenant, l) in loops.iter_mut().enumerate() {
            for c in service.take_completions(tenant) {
                let slot = l
                    .pending
                    .remove(&c.id)
                    .expect("completion matches an outstanding request");
                l.slots[slot] = Some(c.completed_at);
                last_completion = last_completion.max(c.completed_at);
            }
        }
    }
    let end = last_completion.max(SimTime::from_secs(cfg.seconds));
    let report = service.finalize(end);
    (report, service.ticks_skipped(), service.ff_spans())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_core::policy::NoBgc;

    fn quick_cfg() -> ServiceConfig {
        let mut cfg = ServiceConfig::small_for_tests();
        cfg.seconds = 5;
        cfg.system.prefill = false;
        cfg
    }

    #[test]
    fn traces_are_independent_of_worker_count() {
        let mut one = quick_cfg();
        one.worker_threads = 1;
        let mut all = quick_cfg();
        all.worker_threads = all.tenants.len();
        assert_eq!(generate_traces(&one), generate_traces(&all));
    }

    #[test]
    fn closed_loop_completes_every_request() {
        let report = run_closed_loop(&quick_cfg(), Box::new(NoBgc));
        for t in &report.tenants {
            assert!(t.submitted > 0, "{} submitted nothing", t.name);
            assert_eq!(
                t.submitted,
                t.completed + t.shed,
                "{} leaked requests",
                t.name
            );
        }
    }

    #[test]
    fn reports_are_deterministic_per_seed() {
        let a = run_closed_loop(&quick_cfg(), Box::new(NoBgc));
        let b = run_closed_loop(&quick_cfg(), Box::new(NoBgc));
        assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());
    }
}
