//! Queue-pair types: submissions, completions, and admission outcomes.

use jitgc_sim::SimTime;
use jitgc_workload::IoKind;

/// One entry in a tenant's submission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Submission {
    /// Per-tenant monotonically increasing request id.
    pub id: u64,
    /// Operation type.
    pub kind: IoKind,
    /// First logical page, in the tenant's *local* address space; the
    /// service relocates it into the tenant's partition of the device.
    pub lpn: u64,
    /// Consecutive pages touched (≥ 1).
    pub pages: u32,
    /// When the tenant submitted the request (virtual time).
    pub submitted_at: SimTime,
    /// Set once a Yellow-tier arbiter pass has skipped this entry.
    pub deferred: bool,
}

/// How a request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// The request executed on the device.
    Done,
    /// Backpressure shed the request with an explicit busy status; it
    /// never reached the device. The client may retry later.
    Busy,
}

impl CompletionStatus {
    /// Display name, as reported in JSON and on the wire.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CompletionStatus::Done => "done",
            CompletionStatus::Busy => "busy",
        }
    }
}

/// One entry in a tenant's completion queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The submission's id.
    pub id: u64,
    /// How the request ended.
    pub status: CompletionStatus,
    /// When the request was submitted (virtual time).
    pub submitted_at: SimTime,
    /// When the request completed or was shed (virtual time).
    pub completed_at: SimTime,
}

impl Completion {
    /// Submission-to-completion latency in virtual time.
    #[must_use]
    pub fn latency(&self) -> jitgc_sim::SimDuration {
        self.completed_at.saturating_since(self.submitted_at)
    }
}

/// What admission control did with a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued on the tenant's submission queue.
    Accepted(u64),
    /// The submission queue is full; the request waits in the tenant's
    /// stalled buffer and re-enters admission when the queue drains.
    Blocked(u64),
    /// Shed by Red/Black-tier backpressure: a [`CompletionStatus::Busy`]
    /// completion was posted immediately.
    Shed(u64),
}

impl SubmitOutcome {
    /// The request id regardless of outcome.
    #[must_use]
    pub fn id(self) -> u64 {
        match self {
            SubmitOutcome::Accepted(id) | SubmitOutcome::Blocked(id) | SubmitOutcome::Shed(id) => {
                id
            }
        }
    }
}
