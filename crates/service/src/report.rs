//! The service run report: per-tenant accounting, the tier timeline, and
//! the underlying device report.

use jitgc_core::system::SimReport;
use jitgc_sim::json::{JsonValue, ObjectBuilder};

use crate::config::{TenantProfile, TierThresholds};
use crate::tier::Tier;

/// One tenant's share of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Configured driver profile.
    pub profile: TenantProfile,
    /// Fair-queueing weight.
    pub weight: u64,
    /// Closed-loop application threads.
    pub concurrency: u32,
    /// Requests submitted (accepted + blocked + shed).
    pub submitted: u64,
    /// Requests that executed on the device.
    pub completed: u64,
    /// Requests shed by Red/Black backpressure with busy completions.
    pub shed: u64,
    /// Requests whose dispatch a Yellow-tier arbiter pass skipped at
    /// least once.
    pub deferred: u64,
    /// Submissions that found the submission queue full and stalled.
    pub blocked: u64,
    /// Read requests submitted.
    pub reads: u64,
    /// Write requests submitted (buffered + direct).
    pub writes: u64,
    /// TRIM requests submitted.
    pub trims: u64,
    /// Host pages the device absorbed while stepping this tenant's
    /// requests (includes flusher write-back the step triggered).
    pub host_pages_written: u64,
    /// NAND pages programmed while stepping this tenant's requests
    /// (includes GC migrations the step triggered).
    pub nand_pages_programmed: u64,
    /// Attributed write amplification (`nand / host`); `None` when this
    /// tenant's steps wrote nothing.
    pub waf: Option<f64>,
    /// Bytes the arbiter dispatched for this tenant.
    pub served_bytes: u64,
    /// `served_bytes` as a fraction of all dispatched bytes.
    pub served_share: Option<f64>,
    /// Configured weight as a fraction of the roster total.
    pub weight_share: f64,
    /// Mean submission-to-completion latency in virtual µs.
    pub latency_mean_us: Option<u64>,
    /// Median completion latency in virtual µs.
    pub latency_p50_us: Option<u64>,
    /// 99th-percentile completion latency in virtual µs.
    pub latency_p99_us: Option<u64>,
    /// 99.9th-percentile completion latency in virtual µs.
    pub latency_p999_us: Option<u64>,
    /// Worst completion latency in virtual µs.
    pub latency_max_us: Option<u64>,
}

impl TenantReport {
    /// Serializes one tenant's section.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("name", self.name.as_str())
            .field("profile", self.profile.name())
            .field("weight", self.weight)
            .field("concurrency", u64::from(self.concurrency))
            .field("submitted", self.submitted)
            .field("completed", self.completed)
            .field("shed", self.shed)
            .field("deferred", self.deferred)
            .field("blocked", self.blocked)
            .field("reads", self.reads)
            .field("writes", self.writes)
            .field("trims", self.trims)
            .field("host_pages_written", self.host_pages_written)
            .field("nand_pages_programmed", self.nand_pages_programmed)
            .field("waf", self.waf)
            .field("served_bytes", self.served_bytes)
            .field("served_share", self.served_share)
            .field("weight_share", self.weight_share)
            .field("latency_mean_us", self.latency_mean_us)
            .field("latency_p50_us", self.latency_p50_us)
            .field("latency_p99_us", self.latency_p99_us)
            .field("latency_p999_us", self.latency_p999_us)
            .field("latency_max_us", self.latency_max_us)
            .build()
    }
}

/// The backpressure tier timeline of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct TierReport {
    /// The thresholds the run used.
    pub thresholds: TierThresholds,
    /// Every tier transition as `(virtual µs, tier entered)`, starting
    /// with `(0, Green)`.
    pub transitions: Vec<(u64, Tier)>,
    /// Virtual µs spent in each tier (Green, Yellow, Red, Black); sums to
    /// the run duration.
    pub residency_us: [u64; 4],
    /// The tier at the end of the run.
    pub final_tier: Tier,
}

impl TierReport {
    /// Serializes the tier section.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let transitions: Vec<JsonValue> = self
            .transitions
            .iter()
            .map(|&(at_us, tier)| {
                ObjectBuilder::new()
                    .field("at_us", at_us)
                    .field("tier", tier.name())
                    .build()
            })
            .collect();
        let residency = ObjectBuilder::new()
            .field("green_us", self.residency_us[0])
            .field("yellow_us", self.residency_us[1])
            .field("red_us", self.residency_us[2])
            .field("black_us", self.residency_us[3])
            .build();
        ObjectBuilder::new()
            .field("yellow_threshold", self.thresholds.yellow)
            .field("red_threshold", self.thresholds.red)
            .field("black_threshold", self.thresholds.black)
            .field("hysteresis", self.thresholds.hysteresis)
            .field("transitions", JsonValue::Array(transitions))
            .field("residency", residency)
            .field("final_tier", self.final_tier.name())
            .build()
    }
}

/// Everything one service run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Per-tenant accounting, in roster order.
    pub tenants: Vec<TenantReport>,
    /// The backpressure tier timeline.
    pub tier: TierReport,
    /// Configured per-tenant submission-queue depth.
    pub sq_depth: usize,
    /// Configured device dispatch window.
    pub dispatch_window: usize,
    /// Whether backpressure actions (defer/shed) were enabled.
    pub backpressure: bool,
    /// The run's base seed.
    pub seed: u64,
    /// Virtual run length in µs.
    pub duration_us: u64,
    /// The engine's own report for the whole device.
    pub device: SimReport,
}

impl ServiceReport {
    /// The named tenant's report.
    #[must_use]
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Serializes the full service report. Deliberately excludes every
    /// knob that must not affect results (worker threads, wall time), so
    /// equal configurations produce byte-identical output.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let tenants: Vec<JsonValue> = self.tenants.iter().map(TenantReport::to_json).collect();
        ObjectBuilder::new()
            .field("sq_depth", self.sq_depth as u64)
            .field("dispatch_window", self.dispatch_window as u64)
            .field("backpressure", self.backpressure)
            .field("seed", self.seed)
            .field("duration_us", self.duration_us)
            .field("tenants", JsonValue::Array(tenants))
            .field("tier", self.tier.to_json())
            .field("device", self.device.to_json())
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_report_serializes_names() {
        let r = TierReport {
            thresholds: TierThresholds::default(),
            transitions: vec![(0, Tier::Green), (10, Tier::Yellow)],
            residency_us: [10, 90, 0, 0],
            final_tier: Tier::Yellow,
        };
        let text = r.to_json().to_pretty();
        assert!(text.contains("\"yellow\""));
        assert!(text.contains("\"yellow_us\": 90"));
        let v = JsonValue::parse(&text).expect("reparse");
        assert_eq!(v.get("final_tier").unwrap().as_str(), Some("yellow"));
    }
}
