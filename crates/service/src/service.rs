//! The multi-tenant service core: queue pairs, arbitration, backpressure.
//!
//! [`Service`] owns one [`SsdSystem`] engine and fronts it with NVMe-style
//! per-tenant queue pairs. Tenants [`submit`](Service::submit) requests
//! into bounded submission queues; [`pump`](Service::pump) lets the
//! weighted-fair-queueing arbiter pick among queue heads and step the
//! engine; completions appear on per-tenant completion queues. All timing
//! is virtual ([`SimTime`]), so the whole service is deterministic: the
//! same submission sequence produces byte-identical reports.
//!
//! Backpressure is tiered. The service folds two signals into one scalar
//! *pressure* — the fullest tenant's queue occupancy and the engine's
//! [GC debt](GcSignals::gc_debt) — and feeds it to a hysteretic
//! [`TierPolicy`]. Yellow defers low-weight tenants' writes while any
//! other work is runnable, Red sheds them with explicit busy completions,
//! Black admits only reads. "Low-weight" means below the roster's mean
//! weight.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use jitgc_core::policy::GcPolicy;
use jitgc_core::system::{SimReport, SsdSystem};
use jitgc_nand::Lpn;
use jitgc_sim::stats::LatencyRecorder;
use jitgc_sim::{SimDuration, SimTime};
use jitgc_workload::{IoKind, IoRequest, NullWorkload, WriteMix};

use crate::config::ServiceConfig;
use crate::queue::{Completion, CompletionStatus, Submission, SubmitOutcome};
use crate::report::{ServiceReport, TenantReport, TierReport};
use crate::tier::{Tier, TierPolicy};
use crate::wfq::WfqArbiter;

/// Per-tenant queue pair plus accounting.
#[derive(Debug)]
struct TenantState {
    /// Bounded submission queue the arbiter picks from.
    sq: VecDeque<Submission>,
    /// Submissions that found the SQ full; re-admitted in order as it
    /// drains (through a fresh tier check — pressure may have risen).
    stalled: VecDeque<Submission>,
    /// Completion queue, drained by [`Service::take_completions`].
    cq: VecDeque<Completion>,
    next_id: u64,
    submitted: u64,
    completed: u64,
    shed: u64,
    deferred: u64,
    blocked: u64,
    reads: u64,
    writes: u64,
    trims: u64,
    host_pages: u64,
    nand_pages: u64,
    latency: LatencyRecorder,
}

impl TenantState {
    fn new() -> Self {
        TenantState {
            sq: VecDeque::new(),
            stalled: VecDeque::new(),
            cq: VecDeque::new(),
            next_id: 0,
            submitted: 0,
            completed: 0,
            shed: 0,
            deferred: 0,
            blocked: 0,
            reads: 0,
            writes: 0,
            trims: 0,
            host_pages: 0,
            nand_pages: 0,
            latency: LatencyRecorder::new(),
        }
    }
}

/// The multi-tenant queue-pair frontend over one SSD engine.
pub struct Service {
    cfg: ServiceConfig,
    engine: SsdSystem,
    arbiter: WfqArbiter,
    tier: TierPolicy,
    tenants: Vec<TenantState>,
    low_weight: Vec<bool>,
    /// Completion times of requests dispatched to the device but not yet
    /// past their (virtual) completion — the NVMe-queue-depth analogue.
    inflight: BinaryHeap<Reverse<SimTime>>,
    pages_per_tenant: u64,
    page_bytes: u64,
    last_issue: SimTime,
    tier_transitions: Vec<(SimTime, Tier)>,
    tier_entered: SimTime,
    tier_residency: [SimDuration; 4],
}

impl Service {
    /// Builds the service: validates the configuration, constructs the
    /// engine over the tenants' combined working set, and ages (prefills)
    /// the device if the system configuration asks for it.
    ///
    /// # Panics
    ///
    /// Panics if [`ServiceConfig::validate`] rejects the configuration.
    #[must_use]
    pub fn new(cfg: ServiceConfig, policy: Box<dyn GcPolicy>) -> Self {
        if let Err(message) = cfg.validate() {
            panic!("invalid service config: {message}");
        }
        let pages_per_tenant = cfg.pages_per_tenant();
        let working_set = pages_per_tenant * cfg.tenants.len() as u64;
        // The engine never pulls from its workload when stepped
        // externally; the stub only sizes prefill and names the report.
        let stub = NullWorkload::new("service", working_set, WriteMix::new(0.5));
        let mut engine = SsdSystem::new(cfg.system.clone(), policy, Box::new(stub));
        engine.set_fast_forward(cfg.fast_forward);
        if cfg.system.prefill {
            engine.prefill();
        }
        let page_bytes = engine.ftl().device().geometry().page_size().as_u64();
        let weights: Vec<u64> = cfg.tenants.iter().map(|t| t.weight).collect();
        let mean = cfg.mean_weight();
        let low_weight = weights.iter().map(|&w| (w as f64) < mean).collect();
        let tier = TierPolicy::new(cfg.tiers);
        Service {
            arbiter: WfqArbiter::new(&weights),
            tenants: (0..cfg.tenants.len()).map(|_| TenantState::new()).collect(),
            low_weight,
            inflight: BinaryHeap::new(),
            pages_per_tenant,
            page_bytes,
            last_issue: SimTime::ZERO,
            tier_transitions: vec![(SimTime::ZERO, Tier::Green)],
            tier_entered: SimTime::ZERO,
            tier_residency: [SimDuration::ZERO; 4],
            tier,
            engine,
            cfg,
        }
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The current backpressure tier.
    #[must_use]
    pub fn tier(&self) -> Tier {
        self.tier.current()
    }

    /// Flusher ticks the engine's quiescence fast-forward elided so far
    /// (see [`SsdSystem::ticks_skipped`]). Not part of the report — the
    /// report stays byte-identical with the fast-forward off.
    #[must_use]
    pub fn ticks_skipped(&self) -> u64 {
        self.engine.ticks_skipped()
    }

    /// Fast-forwarded idle spans so far (see [`SsdSystem::ff_spans`]).
    #[must_use]
    pub fn ff_spans(&self) -> u64 {
        self.engine.ff_spans()
    }

    /// Pages of logical space each tenant owns.
    #[must_use]
    pub fn pages_per_tenant(&self) -> u64 {
        self.pages_per_tenant
    }

    /// Recomputes pressure and lets the tier policy react, recording the
    /// transition for the report timeline.
    fn refresh_tier(&mut self, now: SimTime) {
        let depth = self.cfg.sq_depth as f64;
        let occupancy = self
            .tenants
            .iter()
            .map(|t| (t.sq.len() + t.stalled.len()) as f64 / depth)
            .fold(0.0_f64, f64::max)
            .min(1.0);
        let pressure = occupancy.max(self.engine.gc_signals().gc_debt());
        let before = self.tier.current();
        let after = self.tier.update(pressure);
        if after != before {
            self.tier_residency[before.index()] += now.saturating_since(self.tier_entered);
            self.tier_entered = now;
            self.tier_transitions.push((now, after));
        }
    }

    /// Whether the current tier sheds a write from `tenant` at admission.
    fn sheds(&self, tenant: usize, kind: IoKind) -> bool {
        if !self.cfg.backpressure || !kind.is_write() {
            return false;
        }
        match self.tier.current() {
            Tier::Green | Tier::Yellow => false,
            Tier::Red => self.low_weight[tenant],
            Tier::Black => true,
        }
    }

    fn post(&mut self, tenant: usize, completion: Completion) {
        let t = &mut self.tenants[tenant];
        match completion.status {
            CompletionStatus::Done => {
                t.completed += 1;
                t.latency.record(completion.latency());
            }
            CompletionStatus::Busy => t.shed += 1,
        }
        t.cq.push_back(completion);
    }

    /// Moves stalled submissions into the SQ while room lasts, applying a
    /// fresh shed check to each (the tier may have risen since they
    /// stalled).
    fn drain_stalled(&mut self, tenant: usize, now: SimTime) {
        while self.tenants[tenant].sq.len() < self.cfg.sq_depth {
            let Some(sub) = self.tenants[tenant].stalled.pop_front() else {
                return;
            };
            if self.sheds(tenant, sub.kind) {
                self.post(
                    tenant,
                    Completion {
                        id: sub.id,
                        status: CompletionStatus::Busy,
                        submitted_at: sub.submitted_at,
                        completed_at: now,
                    },
                );
            } else {
                self.tenants[tenant].sq.push_back(sub);
            }
        }
    }

    /// Submits one request on tenant `tenant`'s queue pair at virtual time
    /// `now`. The LPN is tenant-local; the service relocates it into the
    /// tenant's partition. Returns what admission control did.
    pub fn submit(
        &mut self,
        tenant: usize,
        kind: IoKind,
        lpn: u64,
        pages: u32,
        now: SimTime,
    ) -> SubmitOutcome {
        self.refresh_tier(now);
        let t = &mut self.tenants[tenant];
        let id = t.next_id;
        t.next_id += 1;
        t.submitted += 1;
        match kind {
            IoKind::Read => t.reads += 1,
            IoKind::BufferedWrite | IoKind::DirectWrite => t.writes += 1,
            IoKind::Trim => t.trims += 1,
        }
        if self.sheds(tenant, kind) {
            self.post(
                tenant,
                Completion {
                    id,
                    status: CompletionStatus::Busy,
                    submitted_at: now,
                    completed_at: now,
                },
            );
            return SubmitOutcome::Shed(id);
        }
        let sub = Submission {
            id,
            kind,
            lpn,
            pages,
            submitted_at: now,
            deferred: false,
        };
        let t = &mut self.tenants[tenant];
        if t.sq.is_empty() && t.stalled.is_empty() {
            // Idle → backlogged: the arbiter clamps this tenant's virtual
            // tag to the clock so idle time earns no catch-up credit.
            self.arbiter.arrive(tenant);
        }
        let t = &mut self.tenants[tenant];
        if !t.stalled.is_empty() || t.sq.len() >= self.cfg.sq_depth {
            t.blocked += 1;
            t.stalled.push_back(sub);
            self.drain_stalled(tenant, now);
            SubmitOutcome::Blocked(id)
        } else {
            t.sq.push_back(sub);
            SubmitOutcome::Accepted(id)
        }
    }

    /// True while any submission queue or stalled buffer holds work.
    #[must_use]
    pub fn has_queued(&self) -> bool {
        self.tenants
            .iter()
            .any(|t| !t.sq.is_empty() || !t.stalled.is_empty())
    }

    /// Releases dispatch-window slots whose requests completed by `now`.
    pub fn release_window(&mut self, now: SimTime) {
        while matches!(self.inflight.peek(), Some(Reverse(t)) if *t <= now) {
            self.inflight.pop();
        }
    }

    /// When the earliest in-flight request completes, if any.
    #[must_use]
    pub fn next_window_free(&self) -> Option<SimTime> {
        self.inflight.peek().map(|Reverse(t)| *t)
    }

    /// Picks the next queue head per WFQ, honouring Yellow-tier deferral:
    /// a low-weight tenant's head write is skipped while any other
    /// candidate exists. Returns the chosen tenant.
    fn arbitrate(&mut self) -> Option<usize> {
        let deferring = self.cfg.backpressure && self.tier.current() >= Tier::Yellow;
        let heads: Vec<(usize, IoKind, u64)> = self
            .tenants
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                t.sq.front()
                    .map(|s| (i, s.kind, u64::from(s.pages) * self.page_bytes))
            })
            .collect();
        let eligible: Vec<(usize, u64)> = heads
            .iter()
            .filter(|(i, kind, _)| !(deferring && self.low_weight[*i] && kind.is_write()))
            .map(|&(i, _, cost)| (i, cost))
            .collect();
        if eligible.is_empty() {
            // Everything runnable is deferred: serve it anyway rather than
            // deadlock — Yellow slows low-weight writers, never stops them.
            return self
                .arbiter
                .pick(heads.iter().map(|&(i, _, cost)| (i, cost)));
        }
        if deferring && eligible.len() < heads.len() {
            for &(i, _, _) in &heads {
                if eligible.iter().all(|&(e, _)| e != i) {
                    let head = self.tenants[i].sq.front_mut().expect("head exists");
                    if !head.deferred {
                        head.deferred = true;
                        self.tenants[i].deferred += 1;
                    }
                }
            }
        }
        self.arbiter.pick(eligible.into_iter())
    }

    /// Dispatches queued submissions to the engine while the dispatch
    /// window has room, posting completions as they are computed. Returns
    /// how many requests were dispatched.
    pub fn pump(&mut self, now: SimTime) -> usize {
        self.release_window(now);
        let mut dispatched = 0;
        while self.inflight.len() < self.cfg.dispatch_window {
            self.refresh_tier(now);
            let Some(tenant) = self.arbitrate() else {
                break;
            };
            let sub = self.tenants[tenant].sq.pop_front().expect("picked head");
            self.drain_stalled(tenant, now);
            let base = tenant as u64 * self.pages_per_tenant;
            let span = u64::from(sub.pages).min(self.pages_per_tenant);
            let local = sub.lpn.min(self.pages_per_tenant - span);
            let req = IoRequest {
                gap: SimDuration::ZERO,
                kind: sub.kind,
                lpn: Lpn(base + local),
                pages: span as u32,
            };
            let issue = now.max(self.last_issue);
            self.last_issue = issue;
            let host_before = self.engine.ftl().stats().host_pages_written;
            let prog_before = self.engine.ftl().device().stats().programs;
            let done = self.engine.step(req, issue);
            // Attribute the step's device work — including any flusher
            // write-back or GC it triggered — to the tenant that ran it.
            let t = &mut self.tenants[tenant];
            t.host_pages += self.engine.ftl().stats().host_pages_written - host_before;
            t.nand_pages += self.engine.ftl().device().stats().programs - prog_before;
            self.arbiter
                .dispatch(tenant, u64::from(sub.pages) * self.page_bytes);
            self.post(
                tenant,
                Completion {
                    id: sub.id,
                    status: CompletionStatus::Done,
                    submitted_at: sub.submitted_at,
                    completed_at: done,
                },
            );
            if done > now {
                self.inflight.push(Reverse(done));
            }
            dispatched += 1;
        }
        dispatched
    }

    /// Drains tenant `tenant`'s completion queue.
    pub fn take_completions(&mut self, tenant: usize) -> Vec<Completion> {
        self.tenants[tenant].cq.drain(..).collect()
    }

    /// Lets the engine's background machinery (ticks, BGC) run up to `t`
    /// without dispatching host work.
    pub fn advance_to(&mut self, t: SimTime) {
        self.engine.advance_to(t);
    }

    /// Closes the run at virtual time `end` and assembles the service
    /// report (per-tenant accounting + tier timeline + device report).
    #[must_use]
    pub fn finalize(&mut self, end: SimTime) -> ServiceReport {
        self.engine.advance_to(end);
        let device: SimReport = self.engine.finalize(end);
        self.tier_residency[self.tier.current().index()] += end.saturating_since(self.tier_entered);
        self.tier_entered = end;
        let tenants = self
            .cfg
            .tenants
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let t = &self.tenants[i];
                let us = |q: f64| t.latency.percentile(q).map(|d| d.as_micros());
                TenantReport {
                    name: spec.name.clone(),
                    profile: spec.profile,
                    weight: spec.weight,
                    concurrency: spec.concurrency,
                    submitted: t.submitted,
                    completed: t.completed,
                    shed: t.shed,
                    deferred: t.deferred,
                    blocked: t.blocked,
                    reads: t.reads,
                    writes: t.writes,
                    trims: t.trims,
                    host_pages_written: t.host_pages,
                    nand_pages_programmed: t.nand_pages,
                    waf: (t.host_pages > 0).then(|| t.nand_pages as f64 / t.host_pages as f64),
                    served_bytes: self.arbiter.served_bytes(i),
                    served_share: self.arbiter.served_share(i),
                    weight_share: self.arbiter.weight_share(i),
                    latency_mean_us: t.latency.mean().map(|d| d.as_micros()),
                    latency_p50_us: us(0.50),
                    latency_p99_us: us(0.99),
                    latency_p999_us: us(0.999),
                    latency_max_us: t.latency.max().map(|d| d.as_micros()),
                }
            })
            .collect();
        ServiceReport {
            tenants,
            tier: TierReport {
                thresholds: self.cfg.tiers,
                transitions: self
                    .tier_transitions
                    .iter()
                    .map(|&(t, tier)| (t.as_micros(), tier))
                    .collect(),
                residency_us: [
                    self.tier_residency[0].as_micros(),
                    self.tier_residency[1].as_micros(),
                    self.tier_residency[2].as_micros(),
                    self.tier_residency[3].as_micros(),
                ],
                final_tier: self.tier.current(),
            },
            sq_depth: self.cfg.sq_depth,
            dispatch_window: self.cfg.dispatch_window,
            backpressure: self.cfg.backpressure,
            seed: self.cfg.seed,
            duration_us: end.as_micros(),
            device,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;

    fn policy() -> Box<dyn GcPolicy> {
        Box::new(jitgc_core::policy::NoBgc)
    }

    fn service() -> Service {
        let mut cfg = ServiceConfig::small_for_tests();
        cfg.system.prefill = false;
        Service::new(cfg, policy())
    }

    #[test]
    fn reads_complete_through_the_queue_pair() {
        let mut svc = service();
        let now = SimTime::from_millis(1);
        let out = svc.submit(1, IoKind::Read, 0, 1, now);
        assert!(matches!(out, SubmitOutcome::Accepted(0)));
        assert_eq!(svc.pump(now), 1);
        let done = svc.take_completions(1);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, CompletionStatus::Done);
        assert!(done[0].completed_at >= now);
    }

    #[test]
    fn full_sq_blocks_and_drains_in_order() {
        let mut svc = service();
        let now = SimTime::from_millis(1);
        let depth = svc.config().sq_depth;
        for i in 0..depth as u64 + 3 {
            let out = svc.submit(0, IoKind::Read, i, 1, now);
            if (i as usize) < depth {
                assert!(matches!(out, SubmitOutcome::Accepted(_)), "req {i}");
            } else {
                assert!(matches!(out, SubmitOutcome::Blocked(_)), "req {i}");
            }
        }
        // Pumping drains everything: stalled requests re-enter as the
        // queue empties.
        let mut total = 0;
        let mut now = now;
        while svc.has_queued() {
            total += svc.pump(now);
            now = svc
                .next_window_free()
                .unwrap_or(now + SimDuration::from_millis(1));
        }
        assert_eq!(total, depth + 3);
        let done = svc.take_completions(0);
        let ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(ids, (0..depth as u64 + 3).collect::<Vec<_>>());
    }

    #[test]
    fn black_tier_sheds_writes_but_admits_reads() {
        let mut svc = service();
        // Force Black by flooding tenant 0's queue pair far past depth.
        let now = SimTime::from_millis(1);
        for i in 0..64 {
            let _ = svc.submit(0, IoKind::Read, i, 1, now);
        }
        assert_eq!(svc.tier(), Tier::Black);
        let shed = svc.submit(1, IoKind::DirectWrite, 0, 1, now);
        assert!(matches!(shed, SubmitOutcome::Shed(_)));
        let read = svc.submit(1, IoKind::Read, 0, 1, now);
        assert!(matches!(read, SubmitOutcome::Accepted(_)));
        let done = svc.take_completions(1);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].status, CompletionStatus::Busy);
    }

    #[test]
    fn backpressure_off_never_sheds() {
        let mut cfg = ServiceConfig::small_for_tests();
        cfg.system.prefill = false;
        cfg.backpressure = false;
        let mut svc = Service::new(cfg, policy());
        let now = SimTime::from_millis(1);
        for i in 0..64 {
            let _ = svc.submit(0, IoKind::Read, i, 1, now);
        }
        assert_eq!(svc.tier(), Tier::Black, "tier still tracked for reports");
        let out = svc.submit(1, IoKind::DirectWrite, 0, 1, now);
        assert!(matches!(out, SubmitOutcome::Accepted(_)));
    }

    #[test]
    fn report_accounts_every_submission() {
        let mut svc = service();
        let mut now = SimTime::from_millis(1);
        for i in 0..20 {
            let _ = svc.submit((i % 3) as usize, IoKind::Read, i, 1, now);
            now += SimDuration::from_micros(500);
            svc.pump(now);
        }
        while svc.has_queued() {
            now += SimDuration::from_millis(1);
            svc.pump(now);
        }
        let report = svc.finalize(SimTime::from_secs(1));
        let total: u64 = report.tenants.iter().map(|t| t.submitted).sum();
        assert_eq!(total, 20);
        for t in &report.tenants {
            assert_eq!(t.submitted, t.completed + t.shed);
        }
        assert_eq!(report.tier.residency_us.iter().sum::<u64>(), 1_000_000);
    }
}
