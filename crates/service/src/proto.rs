//! Length-prefixed binary wire protocol for the network frontend.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload; the payload's first byte is the opcode. Integers are
//! little-endian, names are UTF-8. The protocol is intentionally tiny —
//! a session is `HELLO → HELLO_OK`, any number of `SUBMIT → COMPLETE`
//! exchanges (completions may arrive out of submission order and carry
//! virtual timestamps), then `BYE`.
//!
//! | opcode | frame      | body                                          |
//! |-------:|------------|-----------------------------------------------|
//! | `0x01` | `Hello`    | weight `u64`, name length `u16`, name bytes   |
//! | `0x81` | `HelloOk`  | tenant index `u16`                            |
//! | `0x02` | `Submit`   | id `u64`, kind `u8`, lpn `u64`, pages `u32`   |
//! | `0x82` | `Complete` | id `u64`, status `u8`, submitted µs `u64`, completed µs `u64` |
//! | `0x03` | `Bye`      | —                                             |
//!
//! Kind codes: 0 read, 1 buffered write, 2 direct write, 3 trim.
//! Status codes: 0 done, 1 busy (shed by backpressure).

use std::io::{self, Read, Write};

use jitgc_workload::IoKind;

use crate::queue::CompletionStatus;

/// Frames larger than this are rejected as corrupt (the largest legal
/// frame is a `Hello` with a 64 KiB name).
const MAX_FRAME: u32 = 1 << 17;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client opens a session as the named tenant.
    Hello {
        /// Requested fair-queueing weight (informational; the server's
        /// roster wins).
        weight: u64,
        /// Tenant name, matched against the server's roster.
        name: String,
    },
    /// Server accepts the session and assigns the tenant index.
    HelloOk {
        /// Roster index of the tenant.
        tenant: u16,
    },
    /// Client submits one request.
    Submit {
        /// Client-chosen request id, echoed in the completion.
        id: u64,
        /// Operation type.
        kind: IoKind,
        /// Tenant-local first LPN.
        lpn: u64,
        /// Pages touched.
        pages: u32,
    },
    /// Server posts one completion.
    Complete {
        /// The submission's id.
        id: u64,
        /// How the request ended.
        status: CompletionStatus,
        /// Submission virtual timestamp, µs.
        submitted_us: u64,
        /// Completion virtual timestamp, µs.
        completed_us: u64,
    },
    /// Client closes the session.
    Bye,
}

fn kind_code(kind: IoKind) -> u8 {
    match kind {
        IoKind::Read => 0,
        IoKind::BufferedWrite => 1,
        IoKind::DirectWrite => 2,
        IoKind::Trim => 3,
    }
}

fn kind_from(code: u8) -> io::Result<IoKind> {
    match code {
        0 => Ok(IoKind::Read),
        1 => Ok(IoKind::BufferedWrite),
        2 => Ok(IoKind::DirectWrite),
        3 => Ok(IoKind::Trim),
        other => Err(bad(format!("unknown kind code {other}"))),
    }
}

fn bad(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

impl Frame {
    /// Encodes the frame, including its length prefix.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Frame::Hello { weight, name } => {
                body.push(0x01);
                body.extend_from_slice(&weight.to_le_bytes());
                let bytes = name.as_bytes();
                body.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                body.extend_from_slice(bytes);
            }
            Frame::HelloOk { tenant } => {
                body.push(0x81);
                body.extend_from_slice(&tenant.to_le_bytes());
            }
            Frame::Submit {
                id,
                kind,
                lpn,
                pages,
            } => {
                body.push(0x02);
                body.extend_from_slice(&id.to_le_bytes());
                body.push(kind_code(*kind));
                body.extend_from_slice(&lpn.to_le_bytes());
                body.extend_from_slice(&pages.to_le_bytes());
            }
            Frame::Complete {
                id,
                status,
                submitted_us,
                completed_us,
            } => {
                body.push(0x82);
                body.extend_from_slice(&id.to_le_bytes());
                body.push(match status {
                    CompletionStatus::Done => 0,
                    CompletionStatus::Busy => 1,
                });
                body.extend_from_slice(&submitted_us.to_le_bytes());
                body.extend_from_slice(&completed_us.to_le_bytes());
            }
            Frame::Bye => body.push(0x03),
        }
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes one frame payload (without the length prefix).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on an unknown opcode, a truncated body, or a
    /// non-UTF-8 name.
    pub fn decode(payload: &[u8]) -> io::Result<Frame> {
        let mut cur = Cursor {
            buf: payload,
            at: 0,
        };
        let frame = match cur.u8()? {
            0x01 => {
                let weight = cur.u64()?;
                let len = cur.u16()? as usize;
                let name = String::from_utf8(cur.bytes(len)?.to_vec())
                    .map_err(|_| bad("tenant name is not UTF-8".into()))?;
                Frame::Hello { weight, name }
            }
            0x81 => Frame::HelloOk { tenant: cur.u16()? },
            0x02 => Frame::Submit {
                id: cur.u64()?,
                kind: kind_from(cur.u8()?)?,
                lpn: cur.u64()?,
                pages: cur.u32()?,
            },
            0x82 => Frame::Complete {
                id: cur.u64()?,
                status: match cur.u8()? {
                    0 => CompletionStatus::Done,
                    1 => CompletionStatus::Busy,
                    other => return Err(bad(format!("unknown status code {other}"))),
                },
                submitted_us: cur.u64()?,
                completed_us: cur.u64()?,
            },
            0x03 => Frame::Bye,
            other => return Err(bad(format!("unknown opcode {other:#04x}"))),
        };
        if cur.at != payload.len() {
            return Err(bad(format!(
                "{} trailing bytes after frame",
                payload.len() - cur.at
            )));
        }
        Ok(frame)
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn bytes(&mut self, n: usize) -> io::Result<&[u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated frame".into()))?;
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(
            self.bytes(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Writes one frame to `w`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads one frame from `r`; `Ok(None)` on a clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Returns `InvalidData` on an oversized or malformed frame and
/// propagates underlying I/O errors (including EOF mid-frame).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(bad(format!("frame of {len} bytes exceeds {MAX_FRAME}")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Frame::decode(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let encoded = frame.encode();
        let mut reader = &encoded[..];
        let decoded = read_frame(&mut reader)
            .expect("decodes")
            .expect("one frame");
        assert_eq!(decoded, frame);
        assert!(reader.is_empty(), "frame fully consumed");
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame::Hello {
            weight: 7,
            name: "reader".into(),
        });
        round_trip(Frame::HelloOk { tenant: 2 });
        round_trip(Frame::Submit {
            id: u64::MAX,
            kind: IoKind::DirectWrite,
            lpn: 123_456,
            pages: 32,
        });
        round_trip(Frame::Complete {
            id: 9,
            status: CompletionStatus::Busy,
            submitted_us: 1_000,
            completed_us: 2_500,
        });
        round_trip(Frame::Bye);
    }

    #[test]
    fn every_kind_code_round_trips() {
        for kind in [
            IoKind::Read,
            IoKind::BufferedWrite,
            IoKind::DirectWrite,
            IoKind::Trim,
        ] {
            round_trip(Frame::Submit {
                id: 1,
                kind,
                lpn: 0,
                pages: 1,
            });
        }
    }

    #[test]
    fn clean_eof_is_none() {
        let mut empty: &[u8] = &[];
        assert_eq!(read_frame(&mut empty).expect("clean EOF"), None);
    }

    #[test]
    fn truncated_and_malformed_frames_are_rejected() {
        // Truncated body.
        let mut encoded = Frame::HelloOk { tenant: 1 }.encode();
        encoded.truncate(5);
        assert!(read_frame(&mut &encoded[..]).is_err());
        // Unknown opcode.
        assert!(Frame::decode(&[0x7f]).is_err());
        // Trailing garbage.
        assert!(Frame::decode(&[0x03, 0xff]).is_err());
        // Oversized length prefix.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        // Bad status code.
        let mut complete = Frame::Complete {
            id: 1,
            status: CompletionStatus::Done,
            submitted_us: 0,
            completed_us: 0,
        }
        .encode();
        complete[4 + 1 + 8] = 9;
        assert!(read_frame(&mut &complete[..]).is_err());
    }
}
