//! Multi-tenant queue-pair frontend for the JIT-GC SSD engine.
//!
//! This crate turns the single-workload [`SsdSystem`] stepping API into a
//! long-lived, multi-tenant *service*: NVMe-style submission/completion
//! queue pairs per tenant, a weighted-fair-queueing arbiter that picks
//! queue heads by virtual finish time, and tiered
//! Green/Yellow/Red/Black backpressure driven by queue occupancy and the
//! engine's GC debt. The `ssdsimd` binary fronts it with a CLI and an
//! optional length-prefixed wire protocol over TCP or Unix sockets.
//!
//! The paper's thesis is that just-in-time GC keeps free capacity exactly
//! ahead of demand instead of hoarding a fixed reserve; a service front
//! makes the multi-tenant consequence measurable: under L-BGC a hot
//! writer's bursts push the device into foreground GC and a
//! latency-sensitive reader pays in p999, while JIT-GC plus tiered
//! shedding confines the damage to the tenant causing it.
//!
//! Everything is deterministic in virtual time: the in-process
//! closed-loop driver ([`run_closed_loop`]) produces byte-identical
//! reports for any `worker_threads` count, because worker threads only
//! pre-generate independent per-tenant request traces — all scheduling is
//! serial.
//!
//! # Example
//!
//! ```
//! use jitgc_service::{run_closed_loop, PolicyChoice, ServiceConfig};
//!
//! let mut cfg = ServiceConfig::small_for_tests();
//! cfg.seconds = 2;
//! cfg.system.prefill = false;
//! let report = run_closed_loop(&cfg, PolicyChoice::Jit.build(&cfg.system));
//! assert_eq!(report.tenants.len(), 3);
//! ```
//!
//! [`SsdSystem`]: jitgc_core::system::SsdSystem

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod driver;
mod net;
mod policy;
mod proto;
mod queue;
mod report;
mod service;
mod tier;
mod wfq;

pub use config::{ServiceConfig, TenantProfile, TenantSpec, TierThresholds};
pub use driver::{run_closed_loop, run_closed_loop_counting};
pub use net::{serve, Client, Endpoint};
pub use policy::PolicyChoice;
pub use proto::{read_frame, write_frame, Frame};
pub use queue::{Completion, CompletionStatus, Submission, SubmitOutcome};
pub use report::{ServiceReport, TenantReport, TierReport};
pub use service::Service;
pub use tier::{Tier, TierPolicy};
pub use wfq::WfqArbiter;
