//! End-to-end smoke tests for the multi-tenant service: determinism
//! across worker-thread counts, backpressure shedding, accounting
//! invariants, and the wire protocol over a Unix socket.

use jitgc_service::{run_closed_loop, PolicyChoice, Service, ServiceConfig, SubmitOutcome, Tier};
use jitgc_workload::IoKind;

/// A fast configuration: short run, no prefill aging.
fn quick() -> ServiceConfig {
    let mut cfg = ServiceConfig::small_for_tests();
    cfg.seconds = 2;
    cfg.system.prefill = false;
    cfg
}

fn run(cfg: &ServiceConfig) -> jitgc_service::ServiceReport {
    run_closed_loop(cfg, PolicyChoice::Jit.build(&cfg.system))
}

#[test]
fn report_is_byte_identical_across_worker_thread_counts() {
    let mut cfg = quick();
    cfg.worker_threads = 1;
    let one = run(&cfg).to_json().to_pretty();
    cfg.worker_threads = cfg.tenants.len();
    let many = run(&cfg).to_json().to_pretty();
    assert_eq!(one, many, "worker threads changed the report");
}

#[test]
fn same_seed_reproduces_and_seeds_differ() {
    let cfg = quick();
    let a = run(&cfg).to_json().to_pretty();
    let b = run(&cfg).to_json().to_pretty();
    assert_eq!(a, b, "same seed must reproduce byte-identically");
    let mut other = quick();
    other.seed = 43;
    let c = run(&other).to_json().to_pretty();
    assert_ne!(a, c, "different seeds should produce different runs");
}

#[test]
fn shallow_queues_shed_with_busy_completions() {
    let mut cfg = quick();
    cfg.sq_depth = 2;
    cfg.dispatch_window = 1;
    let report = run(&cfg);
    let shed: u64 = report.tenants.iter().map(|t| t.shed).sum();
    assert!(shed > 0, "2-deep SQs under this mix must shed");
    // Shedding requires at least reaching Red.
    assert!(
        report.tier.residency_us[2] + report.tier.residency_us[3] > 0,
        "sheds happened, so Red or Black residency must be nonzero"
    );
    // The reader never sheds: only writes are shed and it submits none.
    let reader = report.tenant("reader").expect("reader exists");
    assert_eq!(reader.shed, 0);
}

#[test]
fn accounting_and_tier_timeline_are_consistent() {
    let report = run(&quick());
    for t in &report.tenants {
        assert_eq!(
            t.submitted,
            t.completed + t.shed,
            "tenant {}: every submission completes or sheds",
            t.name
        );
        assert_eq!(t.submitted, t.reads + t.writes + t.trims);
    }
    assert_eq!(
        report.tier.residency_us.iter().sum::<u64>(),
        report.duration_us,
        "tier residency partitions the run"
    );
    let shares: f64 = report.tenants.iter().filter_map(|t| t.served_share).sum();
    assert!((shares - 1.0).abs() < 1e-9, "served shares sum to 1");
    let weights: f64 = report.tenants.iter().map(|t| t.weight_share).sum();
    assert!((weights - 1.0).abs() < 1e-9, "weight shares sum to 1");
}

#[test]
fn backpressure_off_still_reports_tiers_but_never_sheds() {
    let mut cfg = quick();
    cfg.sq_depth = 2;
    cfg.dispatch_window = 1;
    cfg.backpressure = false;
    let report = run(&cfg);
    assert_eq!(report.tenants.iter().map(|t| t.shed).sum::<u64>(), 0);
    assert_eq!(report.tenants.iter().map(|t| t.deferred).sum::<u64>(), 0);
}

#[cfg(unix)]
#[test]
fn wire_protocol_round_trips_over_a_unix_socket() {
    use jitgc_service::{serve, Client, CompletionStatus, Endpoint};
    use jitgc_sim::SimTime;

    let mut cfg = quick();
    cfg.system.prefill = false;
    let seconds = cfg.seconds;
    let path =
        std::env::temp_dir().join(format!("jitgc-service-smoke-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let listener = std::os::unix::net::UnixListener::bind(&path).expect("bind unix socket");
    let service = Service::new(cfg, PolicyChoice::Jit.build(&quick().system));

    let client_path = path.clone();
    let client = std::thread::spawn(move || {
        let mut c = Client::connect_unix(&client_path).expect("connect");
        let tenant = c.hello("reader", 4).expect("hello");
        assert_eq!(tenant, 1, "reader is roster index 1");
        for id in 0..8u64 {
            c.submit(id, IoKind::Read, id * 4, 2).expect("submit");
        }
        let mut done = 0;
        while done < 8 {
            let (id, status) = c.next_completion().expect("completion");
            assert!(id < 8);
            assert_eq!(status, CompletionStatus::Done);
            done += 1;
        }
        c.bye().expect("bye");
    });

    let mut service = serve(Endpoint::Unix(listener), service, 1).expect("serve");
    client.join().expect("client thread");
    let report = service.finalize(SimTime::from_secs(seconds));
    let reader = report.tenant("reader").expect("reader exists");
    assert_eq!(reader.completed, 8);
    assert_eq!(reader.shed, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn black_tier_is_reachable_and_recovers() {
    let mut cfg = quick();
    cfg.sq_depth = 4;
    let mut svc = Service::new(cfg, PolicyChoice::Jit.build(&quick().system));
    let now = jitgc_sim::SimTime::from_millis(1);
    for i in 0..64 {
        let _ = svc.submit(0, IoKind::Read, i, 1, now);
    }
    assert_eq!(svc.tier(), Tier::Black);
    let out = svc.submit(2, IoKind::BufferedWrite, 0, 1, now);
    assert!(matches!(out, SubmitOutcome::Shed(_)));
    // Drain everything; the tier must fall back to Green.
    let mut t = now;
    while svc.has_queued() {
        svc.pump(t);
        t = svc
            .next_window_free()
            .unwrap_or(t + jitgc_sim::SimDuration::from_millis(1));
    }
    svc.pump(t);
    let report = svc.finalize(jitgc_sim::SimTime::from_secs(1));
    assert_eq!(report.tier.final_tier, Tier::Green);
}
