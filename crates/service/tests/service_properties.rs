//! Property tests for the service's scheduling invariants (enable with
//! `--features proptest`; the feature adds the registry dependency and is
//! off in the offline default build).
//!
//! * WFQ fairness: always-backlogged tenants converge to their weight
//!   shares and nobody starves, for arbitrary weights and request sizes.
//! * WFQ isolation: an idle tenant cannot bank credit while away.
//! * Tier hysteresis: arbitrary pressure sequences can never escalate a
//!   tier without reaching its entry threshold, never de-escalate without
//!   clearing the hysteresis margin, and never oscillate on a signal that
//!   dithers inside the margin.

#![cfg(feature = "proptest")]

use jitgc_service::{ServiceConfig, TierThresholds};
use jitgc_service::{Tier, TierPolicy, WfqArbiter};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Backlogged tenants with arbitrary positive weights and arbitrary
    /// per-request sizes serve within a few percent of their weight
    /// shares, and every tenant makes progress.
    #[test]
    fn wfq_backlogged_shares_track_weights(
        weights in proptest::collection::vec(1u64..32, 2..6),
        sizes in proptest::collection::vec((0usize..6, 1u64..33), 2_000..3_000),
    ) {
        let n = weights.len();
        let mut wfq = WfqArbiter::new(&weights);
        let mut served = vec![0u64; n];
        let mut dispatched = 0u64;
        for &(pick_seed, pages) in &sizes {
            // Every tenant offers a head; sizes vary per round.
            let costs: Vec<(usize, u64)> = (0..n)
                .map(|t| (t, ((pick_seed + t) as u64 % pages + 1) * 4_096))
                .collect();
            let t = wfq.pick(costs.iter().copied()).unwrap();
            let c = costs[t].1;
            wfq.dispatch(t, c);
            served[t] += c;
            dispatched += c;
        }
        let wsum: u64 = weights.iter().sum();
        for t in 0..n {
            prop_assert!(served[t] > 0, "tenant {t} starved");
            let share = served[t] as f64 / dispatched as f64;
            let want = weights[t] as f64 / wsum as f64;
            prop_assert!(
                (share - want).abs() < 0.05,
                "tenant {t}: share {share:.3} vs weight {want:.3}"
            );
        }
    }

    /// However long a tenant idles, on return it gets at most one request
    /// of head start over an equally-weighted incumbent.
    #[test]
    fn wfq_idle_tenant_banks_no_credit(
        idle_rounds in 1usize..2_000,
        pages in 1u64..33,
    ) {
        let mut wfq = WfqArbiter::new(&[1, 1]);
        let cost = pages * 4_096;
        for _ in 0..idle_rounds {
            wfq.dispatch(0, cost);
        }
        wfq.arrive(1);
        let before = wfq.served_bytes(0);
        for _ in 0..100 {
            let t = wfq.pick([(0usize, cost), (1, cost)].into_iter()).unwrap();
            wfq.dispatch(t, cost);
        }
        let incumbent = wfq.served_bytes(0) - before;
        let returned = wfq.served_bytes(1);
        prop_assert!(
            returned <= incumbent + cost,
            "returning tenant banked {returned} vs {incumbent}"
        );
        prop_assert!(incumbent > 0, "incumbent starved");
    }

    /// For any pressure sequence: escalation requires the entry
    /// threshold, de-escalation requires clearing the hysteresis margin,
    /// and a maximal-pressure sample always lands in Black.
    #[test]
    fn tier_transitions_respect_thresholds(
        pressures in proptest::collection::vec(0.0f64..=1.0, 1..200),
    ) {
        let thresholds = TierThresholds::default();
        let mut policy = TierPolicy::new(thresholds);
        let entry = |t: Tier| match t {
            Tier::Green => 0.0,
            Tier::Yellow => thresholds.yellow,
            Tier::Red => thresholds.red,
            Tier::Black => thresholds.black,
        };
        let mut prev = Tier::Green;
        for &p in &pressures {
            let now = policy.update(p);
            if now > prev {
                prop_assert!(p >= entry(now), "entered {now} at pressure {p}");
            }
            if now < prev {
                // Every tier left on the way down was cleared by margin.
                prop_assert!(
                    p < entry(prev) - thresholds.hysteresis,
                    "left {prev} at pressure {p}"
                );
            }
            if p >= thresholds.black {
                prop_assert!(now == Tier::Black);
            }
            prev = now;
        }
    }

    /// A signal dithering inside the hysteresis band causes at most one
    /// transition, ever.
    #[test]
    fn tier_never_oscillates_inside_the_band(
        base in 0.46f64..0.50,
        jitter in proptest::collection::vec(-0.03f64..0.03, 1..100),
    ) {
        let thresholds = TierThresholds::default();
        let mut policy = TierPolicy::new(thresholds);
        let mut transitions = 0;
        let mut prev = policy.update(base);
        for &j in &jitter {
            let now = policy.update((base + j).clamp(0.0, 1.0));
            if now != prev {
                transitions += 1;
            }
            prev = now;
        }
        // 0.46..0.53 spans Yellow's entry (0.50) but stays above its exit
        // (0.45): one Green→Yellow transition at most, never back.
        prop_assert!(transitions <= 1, "tier oscillated {transitions} times");
    }

    /// `validate` accepts exactly the documented knob space for tier
    /// thresholds.
    #[test]
    fn tier_threshold_validation_matches_docs(
        yellow in 0.01f64..1.0,
        red in 0.01f64..1.0,
        black in 0.01f64..1.0,
        hysteresis in 0.0f64..1.0,
    ) {
        let mut cfg = ServiceConfig::small_for_tests();
        cfg.tiers = TierThresholds { yellow, red, black, hysteresis };
        let ok = yellow < red && red < black && black <= 1.0 && hysteresis < yellow;
        prop_assert_eq!(cfg.validate().is_ok(), ok);
    }
}
