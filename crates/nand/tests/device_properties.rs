#![cfg(feature = "proptest")]

//! Property-based tests of the NAND device state machine.

use jitgc_nand::{Geometry, Lpn, NandDevice, NandError, NandTiming, PageState, Ppn};
use proptest::prelude::*;

fn small_device() -> NandDevice {
    NandDevice::new(
        Geometry::builder()
            .blocks(4)
            .pages_per_block(8)
            .page_size_bytes(4096)
            .build(),
        NandTiming::mlc_20nm(),
    )
}

/// A random operation against the device.
#[derive(Debug, Clone)]
enum Op {
    Program(u64, u64),
    Read(u64),
    Invalidate(u64),
    Erase(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..32u64, 0..64u64).prop_map(|(p, l)| Op::Program(p, l)),
        (0..32u64).prop_map(Op::Read),
        (0..32u64).prop_map(Op::Invalidate),
        (0..4u32).prop_map(Op::Erase),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Page-state accounting never drifts regardless of the op sequence:
    /// valid + invalid + free always equals the device size, and each
    /// block's valid count matches a recount of its page states.
    #[test]
    fn page_accounting_is_conserved(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut dev = small_device();
        for op in ops {
            // Errors are fine (illegal transitions must be *rejected*,
            // not applied); state must stay consistent either way.
            match op {
                Op::Program(p, l) => { let _ = dev.program(Ppn(p), Lpn(l)); }
                Op::Read(p) => { let _ = dev.read(Ppn(p)); }
                Op::Invalidate(p) => { let _ = dev.invalidate(Ppn(p)); }
                Op::Erase(b) => { let _ = dev.erase(jitgc_nand::BlockId(b)); }
            }
            let total = dev.geometry().total_pages();
            prop_assert_eq!(
                dev.total_valid_pages() + dev.total_invalid_pages() + dev.total_free_pages(),
                total
            );
            for b in dev.geometry().block_ids() {
                let block = dev.block(b);
                let recount = block
                    .iter_pages()
                    .filter(|(_, s, _)| *s == PageState::Valid)
                    .count() as u32;
                prop_assert_eq!(block.valid_pages(), recount);
            }
        }
    }

    /// A page programmed with an LPN reports exactly that LPN until erase.
    #[test]
    fn oob_lpn_is_faithful(lpns in proptest::collection::vec(0..1000u64, 1..8)) {
        let mut dev = small_device();
        for (i, &lpn) in lpns.iter().enumerate() {
            dev.program(Ppn(i as u64), Lpn(lpn)).expect("sequential program");
        }
        for (i, &lpn) in lpns.iter().enumerate() {
            prop_assert_eq!(dev.page_lpn(Ppn(i as u64)), Some(Lpn(lpn)));
        }
        dev.erase(jitgc_nand::BlockId(0)).expect("in range");
        prop_assert_eq!(dev.page_lpn(Ppn(0)), None);
    }

    /// Sequential-program enforcement: programming pages of one block in
    /// any order other than 0,1,2,… fails without corrupting state.
    #[test]
    fn out_of_order_programs_rejected(offset in 1..8u32) {
        let mut dev = small_device();
        let ppn = Ppn(u64::from(offset));
        let result = dev.program(ppn, Lpn(0));
        let rejected = matches!(result, Err(NandError::ProgramOutOfOrder { .. }));
        prop_assert!(rejected, "expected out-of-order rejection, got {:?}", result);
        prop_assert_eq!(dev.total_valid_pages(), 0);
        prop_assert_eq!(dev.stats().programs, 0);
    }

    /// Operation time accounting: busy time equals the sum of per-op costs.
    #[test]
    fn busy_time_matches_op_counts(programs in 1..16u64, erases in 0..3u32) {
        let mut dev = small_device();
        for i in 0..programs {
            dev.program(Ppn(i), Lpn(i)).expect("sequential fill");
        }
        for b in 0..erases {
            dev.erase(jitgc_nand::BlockId(b)).expect("in range");
        }
        let t = *dev.timing();
        let expected = t.page_program_cost() * programs
            + t.block_erase_cost() * u64::from(erases);
        prop_assert_eq!(dev.stats().busy_time(), expected);
    }
}
