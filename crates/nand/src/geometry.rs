//! Physical device geometry.

use crate::{BlockId, Ppn};
use jitgc_sim::ByteSize;

/// The physical shape of a NAND device.
///
/// The simulator addresses pages with a flat [`Ppn`] space in block-major
/// order; `Geometry` provides the conversions and derived capacities.
/// Intra-device parallelism (the channel/chip hierarchy of a real SSD) is
/// folded into the [`NandTiming`](crate::NandTiming) parallelism factor —
/// policy comparisons are invariant to that constant-factor speedup, and a
/// flat space keeps the FTL exactly reproducible. *Inter*-device
/// parallelism is modelled explicitly one layer up: `jitgc-array` stripes
/// a logical volume over N whole devices, each with its own flat
/// geometry, and coordinates their GC (see DESIGN.md §9).
///
/// # Example
///
/// ```
/// use jitgc_nand::{BlockId, Geometry, Ppn};
///
/// let g = Geometry::builder()
///     .blocks(1024)
///     .pages_per_block(128)
///     .page_size_bytes(4096)
///     .build();
/// assert_eq!(g.total_pages(), 1024 * 128);
/// assert_eq!(g.block_of(Ppn(129)), BlockId(1));
/// assert_eq!(g.page_offset(Ppn(129)), 1);
/// assert_eq!(g.ppn(BlockId(1), 1), Ppn(129));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Geometry {
    blocks: u32,
    pages_per_block: u32,
    page_size: ByteSize,
}

impl Geometry {
    /// Starts building a geometry. See [`GeometryBuilder`].
    #[must_use]
    pub fn builder() -> GeometryBuilder {
        GeometryBuilder::default()
    }

    /// Number of erase blocks.
    #[must_use]
    pub const fn blocks(&self) -> u32 {
        self.blocks
    }

    /// Pages per erase block.
    #[must_use]
    pub const fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Bytes per page.
    #[must_use]
    pub const fn page_size(&self) -> ByteSize {
        self.page_size
    }

    /// Total number of physical pages.
    #[must_use]
    pub const fn total_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Total raw capacity in bytes.
    #[must_use]
    pub fn total_capacity(&self) -> ByteSize {
        self.page_size * self.total_pages()
    }

    /// Capacity of a single erase block.
    #[must_use]
    pub fn block_capacity(&self) -> ByteSize {
        self.page_size * u64::from(self.pages_per_block)
    }

    /// The block containing `ppn`.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` is outside the device.
    #[must_use]
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        assert!(self.contains(ppn), "ppn {ppn} outside device");
        BlockId((ppn.0 / u64::from(self.pages_per_block)) as u32)
    }

    /// The page offset of `ppn` within its block.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` is outside the device.
    #[must_use]
    pub fn page_offset(&self, ppn: Ppn) -> u32 {
        assert!(self.contains(ppn), "ppn {ppn} outside device");
        (ppn.0 % u64::from(self.pages_per_block)) as u32
    }

    /// The physical page at `offset` within `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` or `offset` is out of range.
    #[must_use]
    pub fn ppn(&self, block: BlockId, offset: u32) -> Ppn {
        assert!(block.0 < self.blocks, "block {block} outside device");
        assert!(
            offset < self.pages_per_block,
            "offset {offset} beyond block of {} pages",
            self.pages_per_block
        );
        Ppn(u64::from(block.0) * u64::from(self.pages_per_block) + u64::from(offset))
    }

    /// `true` if `ppn` addresses a page on this device.
    #[must_use]
    pub fn contains(&self, ppn: Ppn) -> bool {
        ppn.0 < self.total_pages()
    }

    /// Iterates every block id.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks).map(BlockId)
    }
}

/// Builder for [`Geometry`]; all fields have sensible defaults for a small
/// test device (64 blocks × 128 pages × 4 KiB = 32 MiB).
///
/// # Example
///
/// ```
/// use jitgc_nand::Geometry;
/// use jitgc_sim::ByteSize;
///
/// let g = Geometry::builder()
///     .capacity(ByteSize::mib(64))   // derives the block count
///     .pages_per_block(128)
///     .page_size_bytes(4096)
///     .build();
/// assert_eq!(g.total_capacity(), ByteSize::mib(64));
/// ```
#[derive(Debug, Clone)]
pub struct GeometryBuilder {
    blocks: Option<u32>,
    capacity: Option<ByteSize>,
    pages_per_block: u32,
    page_size: ByteSize,
}

impl Default for GeometryBuilder {
    fn default() -> Self {
        GeometryBuilder {
            blocks: None,
            capacity: None,
            pages_per_block: 128,
            page_size: ByteSize::kib(4),
        }
    }
}

impl GeometryBuilder {
    /// Sets the number of erase blocks directly. Mutually exclusive with
    /// [`capacity`](Self::capacity) (the later call wins).
    #[must_use]
    pub fn blocks(mut self, blocks: u32) -> Self {
        self.blocks = Some(blocks);
        self.capacity = None;
        self
    }

    /// Sets the total raw capacity; the block count is derived (rounding up
    /// to whole blocks). Mutually exclusive with [`blocks`](Self::blocks)
    /// (the later call wins).
    #[must_use]
    pub fn capacity(mut self, capacity: ByteSize) -> Self {
        self.capacity = Some(capacity);
        self.blocks = None;
        self
    }

    /// Sets pages per erase block (default 128).
    #[must_use]
    pub fn pages_per_block(mut self, pages: u32) -> Self {
        self.pages_per_block = pages;
        self
    }

    /// Sets the page size in bytes (default 4096).
    #[must_use]
    pub fn page_size_bytes(mut self, bytes: u64) -> Self {
        self.page_size = ByteSize::bytes(bytes);
        self
    }

    /// Sets the page size (default 4 KiB).
    #[must_use]
    pub fn page_size(mut self, size: ByteSize) -> Self {
        self.page_size = size;
        self
    }

    /// Finalizes the geometry.
    ///
    /// # Panics
    ///
    /// Panics if pages per block or page size is zero, or if the resulting
    /// device would have no blocks.
    #[must_use]
    pub fn build(self) -> Geometry {
        assert!(self.pages_per_block > 0, "pages per block must be non-zero");
        assert!(!self.page_size.is_zero(), "page size must be non-zero");
        let block_capacity = self.page_size.as_u64() * u64::from(self.pages_per_block);
        let blocks = match (self.blocks, self.capacity) {
            (Some(b), _) => b,
            (None, Some(cap)) => {
                u32::try_from(cap.as_u64().div_ceil(block_capacity)).expect("block count fits u32")
            }
            (None, None) => 64,
        };
        assert!(blocks > 0, "device must have at least one block");
        Geometry {
            blocks,
            pages_per_block: self.pages_per_block,
            page_size: self.page_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Geometry {
        Geometry::builder()
            .blocks(4)
            .pages_per_block(8)
            .page_size_bytes(4096)
            .build()
    }

    #[test]
    fn derived_capacities() {
        let g = small();
        assert_eq!(g.total_pages(), 32);
        assert_eq!(g.total_capacity(), ByteSize::kib(128));
        assert_eq!(g.block_capacity(), ByteSize::kib(32));
    }

    #[test]
    fn address_conversions_round_trip() {
        let g = small();
        for b in g.block_ids() {
            for off in 0..g.pages_per_block() {
                let ppn = g.ppn(b, off);
                assert_eq!(g.block_of(ppn), b);
                assert_eq!(g.page_offset(ppn), off);
            }
        }
    }

    #[test]
    fn contains_boundary() {
        let g = small();
        assert!(g.contains(Ppn(31)));
        assert!(!g.contains(Ppn(32)));
    }

    #[test]
    #[should_panic(expected = "outside device")]
    fn block_of_out_of_range_panics() {
        let _ = small().block_of(Ppn(32));
    }

    #[test]
    #[should_panic(expected = "beyond block")]
    fn ppn_offset_out_of_range_panics() {
        let _ = small().ppn(BlockId(0), 8);
    }

    #[test]
    fn capacity_builder_rounds_up() {
        let g = Geometry::builder()
            .capacity(ByteSize::kib(33)) // 1 block is 32 KiB
            .pages_per_block(8)
            .page_size_bytes(4096)
            .build();
        assert_eq!(g.blocks(), 2);
    }

    #[test]
    fn later_builder_call_wins() {
        let g = Geometry::builder()
            .blocks(100)
            .capacity(ByteSize::kib(32))
            .pages_per_block(8)
            .page_size_bytes(4096)
            .build();
        assert_eq!(g.blocks(), 1);
        let g2 = Geometry::builder()
            .capacity(ByteSize::kib(32))
            .blocks(100)
            .pages_per_block(8)
            .page_size_bytes(4096)
            .build();
        assert_eq!(g2.blocks(), 100);
    }

    #[test]
    fn default_build_is_valid() {
        let g = Geometry::builder().build();
        assert_eq!(g.blocks(), 64);
        assert_eq!(g.pages_per_block(), 128);
        assert_eq!(g.page_size(), ByteSize::kib(4));
    }

    #[test]
    #[should_panic(expected = "pages per block must be non-zero")]
    fn zero_pages_per_block_panics() {
        let _ = Geometry::builder().pages_per_block(0).build();
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = Geometry::builder().blocks(0).build();
    }
}
