//! The whole-device NAND model.

use crate::{
    Block, BlockId, FaultModel, Geometry, Lpn, NandError, NandStats, NandTiming, PageState, Ppn,
    WearReport,
};
use jitgc_sim::SimDuration;

/// Result of one [`NandDevice::copy_pages`] call: how far the batched
/// copy got and what it cost.
///
/// The call is op-for-op equivalent to the per-page
/// read → program (with retries) → invalidate sequence GC used to issue,
/// so every counter here mirrors what that loop would have accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CopyOutcome {
    /// Simulated array time consumed: every read (uncorrectable ones
    /// included — the transfer still happened) and every program attempt
    /// (failed ones included — a failed program still ties up the die).
    pub duration: SimDuration,
    /// Source pages fully relocated (programmed into the destination and
    /// invalidated at the source).
    pub copied: usize,
    /// Uncorrectable source reads among the reads this call performed.
    /// The raw data is relocated anyway (GC salvage); the caller decides
    /// how to account the loss.
    pub read_failures: u64,
    /// Failed program attempts; each consumed one destination page
    /// (programmed and immediately invalid) before the copy retried.
    pub program_retries: u64,
    /// `true` when the call stopped because the destination block filled
    /// up *after* the next source page had already been read. The caller
    /// must resume with `first_read_done = true` on a fresh destination
    /// so that read is not re-issued (nor its fault re-drawn).
    pub pending_read: bool,
}

/// A NAND flash device: a flat array of erase blocks plus a timing model
/// and operation/wear counters.
///
/// Each operation returns the simulated time it consumed, so the caller
/// (the FTL) owns the device timeline. The device itself is purely
/// mechanical — *all* placement and reclamation intelligence lives above it.
///
/// # Example
///
/// ```
/// use jitgc_nand::{Geometry, Lpn, NandDevice, NandTiming, PageState, Ppn};
///
/// # fn main() -> Result<(), jitgc_nand::NandError> {
/// let mut dev = NandDevice::new(Geometry::builder().build(), NandTiming::mlc_20nm());
/// dev.program(Ppn(0), Lpn(3))?;
/// dev.invalidate(Ppn(0))?; // LPN 3 was overwritten elsewhere
/// assert_eq!(dev.page_state(Ppn(0)), PageState::Invalid);
/// let block = dev.geometry().block_of(Ppn(0));
/// dev.erase(block)?;
/// assert_eq!(dev.page_state(Ppn(0)), PageState::Free);
/// assert_eq!(dev.stats().erases, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NandDevice {
    geometry: Geometry,
    timing: NandTiming,
    blocks: Vec<Block>,
    stats: NandStats,
    endurance_limit: Option<u64>,
    /// Wear-dependent fault injector; `None` (the default) performs no
    /// RNG draws, so a fault-free device behaves byte-identically to one
    /// built before the injector existed.
    fault: Option<FaultModel>,
    /// Device-wide page-state tallies, maintained incrementally on every
    /// program/invalidate/erase so `total_*_pages()` — polled by the GC
    /// policies on the hot path — never scans the block array.
    valid_total: u64,
    invalid_total: u64,
    free_total: u64,
}

impl NandDevice {
    /// Creates an erased device.
    #[must_use]
    pub fn new(geometry: Geometry, timing: NandTiming) -> Self {
        let blocks = (0..geometry.blocks())
            .map(|_| Block::new(geometry.pages_per_block()))
            .collect();
        NandDevice {
            free_total: geometry.total_pages(),
            geometry,
            timing,
            blocks,
            stats: NandStats::default(),
            endurance_limit: None,
            fault: None,
            valid_total: 0,
            invalid_total: 0,
        }
    }

    /// Sets a program/erase endurance limit; once a block's erase count
    /// reaches it, further erases fail with [`NandError::BlockWornOut`].
    /// 3 000 cycles is typical for 20 nm MLC.
    #[must_use]
    pub fn with_endurance_limit(mut self, cycles: u64) -> Self {
        self.endurance_limit = Some(cycles);
        self
    }

    /// Installs a wear-dependent fault injector. Operations on worn
    /// blocks may then fail with [`NandError::ProgramFailed`],
    /// [`NandError::EraseFailed`], or [`NandError::ReadFailed`].
    #[must_use]
    pub fn with_fault_model(mut self, fault: FaultModel) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The installed fault injector, if any.
    #[must_use]
    pub fn fault_model(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    /// The device geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The timing model.
    #[must_use]
    pub fn timing(&self) -> &NandTiming {
        &self.timing
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> &NandStats {
        &self.stats
    }

    /// Zeroes the operation counters. Per-block erase counts (physical
    /// wear) are state, not statistics, and are preserved.
    pub fn reset_stats(&mut self) {
        self.stats = NandStats::default();
    }

    /// Read-only access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn block(&self, block: BlockId) -> &Block {
        &self.blocks[block.0 as usize]
    }

    fn check_ppn(&self, ppn: Ppn) -> Result<(), NandError> {
        if self.geometry.contains(ppn) {
            Ok(())
        } else {
            Err(NandError::PpnOutOfRange {
                ppn,
                total_pages: self.geometry.total_pages(),
            })
        }
    }

    fn check_block(&self, block: BlockId) -> Result<(), NandError> {
        if block.0 < self.geometry.blocks() {
            Ok(())
        } else {
            Err(NandError::BlockOutOfRange {
                block,
                total_blocks: self.geometry.blocks(),
            })
        }
    }

    /// Reads one page, returning the simulated cost.
    ///
    /// # Errors
    ///
    /// [`NandError::PpnOutOfRange`] for a bad address,
    /// [`NandError::ReadUnwrittenPage`] when the page holds no data
    /// (reading a stale-but-programmed page is physically fine and allowed),
    /// or [`NandError::ReadFailed`] when the fault injector fires — the
    /// transfer time is still charged; only ECC came back defeated.
    pub fn read(&mut self, ppn: Ppn) -> Result<SimDuration, NandError> {
        self.check_ppn(ppn)?;
        let block = self.geometry.block_of(ppn);
        let offset = self.geometry.page_offset(ppn);
        if self.blocks[block.0 as usize].page_state(offset) == PageState::Free {
            return Err(NandError::ReadUnwrittenPage { ppn });
        }
        let worn = self.blocks[block.0 as usize].erase_count();
        if let Some(fault) = &mut self.fault {
            if fault.read_fails(worn) {
                self.stats.read_failures += 1;
                self.stats.read_time += self.timing.page_read_cost();
                return Err(NandError::ReadFailed { ppn });
            }
        }
        let cost = self.timing.page_read_cost();
        self.stats.reads += 1;
        self.stats.read_time += cost;
        Ok(cost)
    }

    /// Programs one page with `lpn` recorded in its OOB area, returning the
    /// simulated cost.
    ///
    /// # Errors
    ///
    /// [`NandError::PpnOutOfRange`] for a bad address,
    /// [`NandError::ProgramProgrammedPage`] on erase-before-write violation,
    /// [`NandError::ProgramOutOfOrder`] when `ppn` is not the block's
    /// next sequential page, or [`NandError::ProgramFailed`] when the
    /// fault injector fires — the page is then *consumed* (programmed
    /// and immediately invalid, unusable until the next erase), so a
    /// retrying FTL makes progress instead of hammering the same page.
    pub fn program(&mut self, ppn: Ppn, lpn: Lpn) -> Result<SimDuration, NandError> {
        self.check_ppn(ppn)?;
        let block_id = self.geometry.block_of(ppn);
        let offset = self.geometry.page_offset(ppn);
        let block = &mut self.blocks[block_id.0 as usize];
        match block.next_free_offset() {
            None => Err(NandError::ProgramProgrammedPage { ppn }),
            Some(expected) if expected != offset => {
                if offset < expected {
                    Err(NandError::ProgramProgrammedPage { ppn })
                } else {
                    Err(NandError::ProgramOutOfOrder {
                        ppn,
                        expected_offset: expected,
                    })
                }
            }
            Some(_) => {
                let worn = block.erase_count();
                if let Some(fault) = &mut self.fault {
                    if fault.program_fails(worn) {
                        block.program_next(lpn).expect("offset checked free");
                        block.invalidate(offset).expect("just programmed");
                        self.free_total -= 1;
                        self.invalid_total += 1;
                        self.stats.program_failures += 1;
                        self.stats.program_time += self.timing.page_program_cost();
                        return Err(NandError::ProgramFailed { ppn });
                    }
                }
                let block = &mut self.blocks[block_id.0 as usize];
                block.program_next(lpn).expect("offset checked free");
                self.free_total -= 1;
                self.valid_total += 1;
                let cost = self.timing.page_program_cost();
                self.stats.programs += 1;
                self.stats.program_time += cost;
                Ok(cost)
            }
        }
    }

    /// Erases one block, returning the simulated cost.
    ///
    /// # Errors
    ///
    /// [`NandError::BlockOutOfRange`] for a bad address,
    /// [`NandError::BlockWornOut`] when an endurance limit is configured
    /// and reached, or [`NandError::EraseFailed`] when the fault injector
    /// fires — the block keeps its page states and should be retired.
    pub fn erase(&mut self, block: BlockId) -> Result<SimDuration, NandError> {
        self.check_block(block)?;
        if let Some(limit) = self.endurance_limit {
            if self.blocks[block.0 as usize].erase_count() >= limit {
                return Err(NandError::BlockWornOut { block, limit });
            }
        }
        let worn = self.blocks[block.0 as usize].erase_count();
        if let Some(fault) = &mut self.fault {
            if fault.erase_fails(worn) {
                self.stats.erase_failures += 1;
                self.stats.erase_time += self.timing.block_erase_cost();
                return Err(NandError::EraseFailed { block });
            }
        }
        let b = &mut self.blocks[block.0 as usize];
        self.valid_total -= u64::from(b.valid_pages());
        self.invalid_total -= u64::from(b.invalid_pages());
        self.free_total += u64::from(b.pages()) - u64::from(b.free_pages());
        b.erase();
        let cost = self.timing.block_erase_cost();
        self.stats.erases += 1;
        self.stats.erase_time += cost;
        Ok(cost)
    }

    /// Marks a valid page invalid (metadata-only; consumes no array time).
    ///
    /// # Errors
    ///
    /// [`NandError::PpnOutOfRange`] for a bad address, or
    /// [`NandError::InvalidateNonValidPage`] unless the page is valid.
    pub fn invalidate(&mut self, ppn: Ppn) -> Result<(), NandError> {
        self.check_ppn(ppn)?;
        let block = self.geometry.block_of(ppn);
        let offset = self.geometry.page_offset(ppn);
        self.blocks[block.0 as usize]
            .invalidate(offset)
            .map_err(|_| NandError::InvalidateNonValidPage { ppn })?;
        self.valid_total -= 1;
        self.invalid_total += 1;
        self.stats.invalidations += 1;
        Ok(())
    }

    /// Relocates a batch of valid pages into the destination block — the
    /// vectorized form of GC's per-page read → program → invalidate loop.
    ///
    /// For each `(source, lpn)` pair, in slice order: read the source
    /// (fault draw against the source block's wear; uncorrectable data is
    /// salvaged, not dropped), program the destination's next sequential
    /// page (retrying past pages consumed by injected program failures),
    /// then invalidate the source. Fault draws therefore happen in
    /// exactly the per-operation order of the equivalent loop, so a
    /// seeded [`FaultModel`] produces the identical failure timeline
    /// either way. The batching amortizes per-call dispatch: destination
    /// bounds and wear are checked once, and the caller gets one outcome
    /// instead of three results per page.
    ///
    /// The new location of every copied page is appended to `dst_ppns`
    /// (index-aligned with the leading `copied` entries of `srcs`). When
    /// `first_read_done` is set, the first source page's read has already
    /// been performed (and its fault drawn) by the caller and is skipped
    /// here — GC reads a victim page *before* securing a destination for
    /// it, and resumed calls after a destination change must not re-read.
    ///
    /// The call stops early, with [`CopyOutcome::pending_read`] set, when
    /// the destination fills up; the caller allocates a fresh destination
    /// and resumes from `srcs[copied..]`.
    ///
    /// # Errors
    ///
    /// [`NandError::BlockOutOfRange`] / [`NandError::PpnOutOfRange`] for
    /// bad addresses, [`NandError::ReadUnwrittenPage`] when a source page
    /// holds no data, or [`NandError::InvalidateNonValidPage`] when a
    /// source page is not valid — all indicate caller bugs, as in the
    /// per-page loop.
    pub fn copy_pages(
        &mut self,
        srcs: &[(Ppn, Lpn)],
        dst: BlockId,
        first_read_done: bool,
        dst_ppns: &mut Vec<Ppn>,
    ) -> Result<CopyOutcome, NandError> {
        self.check_block(dst)?;
        let mut out = CopyOutcome::default();
        let read_cost = self.timing.page_read_cost();
        let program_cost = self.timing.page_program_cost();
        // No erase can happen mid-copy, so both wear inputs to the fault
        // probabilities are constants fetched once per call.
        let dst_worn = self.blocks[dst.0 as usize].erase_count();

        for (idx, &(src, lpn)) in srcs.iter().enumerate() {
            // Source read. The caller may have read the first page itself
            // (GC reads before it knows whether a destination exists).
            if idx > 0 || !first_read_done {
                self.check_ppn(src)?;
                let src_block = self.geometry.block_of(src);
                let src_offset = self.geometry.page_offset(src);
                let block = &self.blocks[src_block.0 as usize];
                if block.page_state(src_offset) == PageState::Free {
                    return Err(NandError::ReadUnwrittenPage { ppn: src });
                }
                let src_worn = block.erase_count();
                let uncorrectable = self.fault.as_mut().is_some_and(|f| f.read_fails(src_worn));
                if uncorrectable {
                    self.stats.read_failures += 1;
                    out.read_failures += 1;
                } else {
                    self.stats.reads += 1;
                }
                self.stats.read_time += read_cost;
                out.duration += read_cost;
            }

            // Program into the destination, retrying past consumed pages.
            let new_ppn = loop {
                let Some(dst_offset) = self.blocks[dst.0 as usize].next_free_offset() else {
                    // Destination full with this page's read already done:
                    // hand back to the caller for a fresh destination.
                    out.pending_read = true;
                    return Ok(out);
                };
                let failed = self
                    .fault
                    .as_mut()
                    .is_some_and(|f| f.program_fails(dst_worn));
                let block = &mut self.blocks[dst.0 as usize];
                block.program_next(lpn).expect("offset checked free");
                self.stats.program_time += program_cost;
                out.duration += program_cost;
                self.free_total -= 1;
                if failed {
                    // The page is consumed — programmed and immediately
                    // invalid — so the retry makes progress.
                    block.invalidate(dst_offset).expect("just programmed");
                    self.invalid_total += 1;
                    self.stats.program_failures += 1;
                    out.program_retries += 1;
                } else {
                    self.valid_total += 1;
                    self.stats.programs += 1;
                    break self.geometry.ppn(dst, dst_offset);
                }
            };

            // Retire the source copy.
            let src_block = self.geometry.block_of(src);
            let src_offset = self.geometry.page_offset(src);
            self.blocks[src_block.0 as usize]
                .invalidate(src_offset)
                .map_err(|_| NandError::InvalidateNonValidPage { ppn: src })?;
            self.valid_total -= 1;
            self.invalid_total += 1;
            self.stats.invalidations += 1;
            dst_ppns.push(new_ppn);
            out.copied += 1;
        }
        Ok(out)
    }

    /// State of the page at `ppn`.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` is out of range.
    #[must_use]
    pub fn page_state(&self, ppn: Ppn) -> PageState {
        let block = self.geometry.block_of(ppn);
        let offset = self.geometry.page_offset(ppn);
        self.blocks[block.0 as usize].page_state(offset)
    }

    /// OOB-recorded owner of the page at `ppn`.
    ///
    /// # Panics
    ///
    /// Panics if `ppn` is out of range.
    #[must_use]
    pub fn page_lpn(&self, ppn: Ppn) -> Option<Lpn> {
        let block = self.geometry.block_of(ppn);
        let offset = self.geometry.page_offset(ppn);
        self.blocks[block.0 as usize].page_lpn(offset)
    }

    /// Total valid pages across the device. O(1): read from the
    /// incrementally maintained tally (debug builds re-derive it from the
    /// block array and assert agreement).
    #[must_use]
    pub fn total_valid_pages(&self) -> u64 {
        debug_assert_eq!(
            self.valid_total,
            self.blocks
                .iter()
                .map(|b| u64::from(b.valid_pages()))
                .sum::<u64>(),
            "valid-page tally diverged from the block array"
        );
        self.valid_total
    }

    /// Total invalid pages across the device. O(1), see
    /// [`total_valid_pages`](Self::total_valid_pages).
    #[must_use]
    pub fn total_invalid_pages(&self) -> u64 {
        debug_assert_eq!(
            self.invalid_total,
            self.blocks
                .iter()
                .map(|b| u64::from(b.invalid_pages()))
                .sum::<u64>(),
            "invalid-page tally diverged from the block array"
        );
        self.invalid_total
    }

    /// Total free (programmable) pages across the device. O(1), see
    /// [`total_valid_pages`](Self::total_valid_pages).
    #[must_use]
    pub fn total_free_pages(&self) -> u64 {
        debug_assert_eq!(
            self.free_total,
            self.blocks
                .iter()
                .map(|b| u64::from(b.free_pages()))
                .sum::<u64>(),
            "free-page tally diverged from the block array"
        );
        self.free_total
    }

    /// The wear distribution across blocks.
    #[must_use]
    pub fn wear_report(&self) -> WearReport {
        WearReport::from_counts(self.blocks.iter().map(Block::erase_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultConfig;

    fn tiny() -> NandDevice {
        NandDevice::new(
            Geometry::builder()
                .blocks(2)
                .pages_per_block(4)
                .page_size_bytes(4096)
                .build(),
            NandTiming::mlc_20nm(),
        )
    }

    #[test]
    fn program_then_read() {
        let mut dev = tiny();
        dev.program(Ppn(0), Lpn(10)).expect("page 0 free");
        let cost = dev.read(Ppn(0)).expect("page programmed");
        assert_eq!(cost, dev.timing().page_read_cost());
        assert_eq!(dev.stats().reads, 1);
        assert_eq!(dev.stats().programs, 1);
    }

    #[test]
    fn read_free_page_fails() {
        let mut dev = tiny();
        assert!(matches!(
            dev.read(Ppn(0)),
            Err(NandError::ReadUnwrittenPage { .. })
        ));
    }

    #[test]
    fn read_invalid_page_succeeds() {
        // Physically, stale data is still readable; only free pages error.
        let mut dev = tiny();
        dev.program(Ppn(0), Lpn(1)).expect("free");
        dev.invalidate(Ppn(0)).expect("valid");
        assert!(dev.read(Ppn(0)).is_ok());
    }

    #[test]
    fn sequential_program_enforced() {
        let mut dev = tiny();
        assert!(matches!(
            dev.program(Ppn(2), Lpn(1)),
            Err(NandError::ProgramOutOfOrder {
                expected_offset: 0,
                ..
            })
        ));
        dev.program(Ppn(0), Lpn(1)).expect("in order");
        dev.program(Ppn(1), Lpn(2)).expect("in order");
        // Re-programming page 0 violates erase-before-write.
        assert!(matches!(
            dev.program(Ppn(0), Lpn(3)),
            Err(NandError::ProgramProgrammedPage { .. })
        ));
    }

    #[test]
    fn full_block_rejects_program() {
        let mut dev = tiny();
        for i in 0..4 {
            dev.program(Ppn(i), Lpn(i)).expect("in order");
        }
        assert!(dev.program(Ppn(3), Lpn(9)).is_err());
        // The next block is unaffected.
        dev.program(Ppn(4), Lpn(9)).expect("block 1 page 0 free");
    }

    #[test]
    fn erase_enables_rewrite() {
        let mut dev = tiny();
        for i in 0..4 {
            dev.program(Ppn(i), Lpn(i)).expect("in order");
        }
        dev.erase(BlockId(0)).expect("in range");
        assert_eq!(dev.page_state(Ppn(0)), PageState::Free);
        dev.program(Ppn(0), Lpn(20)).expect("erased");
        assert_eq!(dev.block(BlockId(0)).erase_count(), 1);
    }

    #[test]
    fn out_of_range_addresses_fail() {
        let mut dev = tiny();
        assert!(matches!(
            dev.read(Ppn(8)),
            Err(NandError::PpnOutOfRange { .. })
        ));
        assert!(matches!(
            dev.program(Ppn(8), Lpn(0)),
            Err(NandError::PpnOutOfRange { .. })
        ));
        assert!(matches!(
            dev.erase(BlockId(2)),
            Err(NandError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            dev.invalidate(Ppn(8)),
            Err(NandError::PpnOutOfRange { .. })
        ));
    }

    #[test]
    fn invalidate_requires_valid() {
        let mut dev = tiny();
        assert!(dev.invalidate(Ppn(0)).is_err());
        dev.program(Ppn(0), Lpn(0)).expect("free");
        dev.invalidate(Ppn(0)).expect("valid");
        assert!(dev.invalidate(Ppn(0)).is_err());
        assert_eq!(dev.stats().invalidations, 1);
    }

    #[test]
    fn endurance_limit_enforced() {
        let mut dev = tiny().with_endurance_limit(2);
        dev.erase(BlockId(0)).expect("cycle 1");
        dev.erase(BlockId(0)).expect("cycle 2");
        assert!(matches!(
            dev.erase(BlockId(0)),
            Err(NandError::BlockWornOut { limit: 2, .. })
        ));
        // Other blocks still erasable.
        dev.erase(BlockId(1)).expect("fresh block");
    }

    #[test]
    fn page_counts_are_consistent() {
        let mut dev = tiny();
        dev.program(Ppn(0), Lpn(0)).expect("free");
        dev.program(Ppn(1), Lpn(1)).expect("free");
        dev.invalidate(Ppn(0)).expect("valid");
        assert_eq!(dev.total_valid_pages(), 1);
        assert_eq!(dev.total_invalid_pages(), 1);
        assert_eq!(dev.total_free_pages(), 6);
        assert_eq!(
            dev.total_valid_pages() + dev.total_invalid_pages() + dev.total_free_pages(),
            dev.geometry().total_pages()
        );
    }

    #[test]
    fn wear_report_reflects_erases() {
        let mut dev = tiny();
        dev.erase(BlockId(0)).expect("in range");
        dev.erase(BlockId(0)).expect("in range");
        dev.erase(BlockId(1)).expect("in range");
        let wear = dev.wear_report();
        assert_eq!(wear.total, 3);
        assert_eq!(wear.max, 2);
        assert_eq!(wear.min, 1);
    }

    /// The per-page GC relocation sequence `copy_pages` replaces, kept
    /// here as the reference for equivalence tests.
    fn loop_copy(
        dev: &mut NandDevice,
        srcs: &[(Ppn, Lpn)],
        dst: BlockId,
    ) -> (SimDuration, Vec<Ppn>, u64, u64) {
        let mut duration = SimDuration::ZERO;
        let mut dsts = Vec::new();
        let mut read_failures = 0u64;
        let mut retries = 0u64;
        for &(src, lpn) in srcs {
            duration += match dev.read(src) {
                Ok(t) => t,
                Err(NandError::ReadFailed { .. }) => {
                    read_failures += 1;
                    dev.timing().page_read_cost()
                }
                Err(e) => panic!("source read: {e}"),
            };
            let new_ppn = loop {
                let offset = dev.block(dst).next_free_offset().expect("dst has space");
                let ppn = dev.geometry().ppn(dst, offset);
                match dev.program(ppn, lpn) {
                    Ok(t) => {
                        duration += t;
                        break ppn;
                    }
                    Err(NandError::ProgramFailed { .. }) => {
                        duration += dev.timing().page_program_cost();
                        retries += 1;
                    }
                    Err(e) => panic!("program: {e}"),
                }
            };
            dev.invalidate(src).expect("source is valid");
            dsts.push(new_ppn);
        }
        (duration, dsts, read_failures, retries)
    }

    fn assert_same_device_state(a: &NandDevice, b: &NandDevice) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.total_valid_pages(), b.total_valid_pages());
        assert_eq!(a.total_invalid_pages(), b.total_invalid_pages());
        assert_eq!(a.total_free_pages(), b.total_free_pages());
        for blk in 0..a.geometry().blocks() {
            let (ba, bb) = (a.block(BlockId(blk)), b.block(BlockId(blk)));
            assert_eq!(ba.erase_count(), bb.erase_count(), "block {blk} wear");
            assert_eq!(
                ba.iter_pages().collect::<Vec<_>>(),
                bb.iter_pages().collect::<Vec<_>>(),
                "block {blk} pages"
            );
        }
    }

    fn copy_fixture() -> NandDevice {
        let mut dev = NandDevice::new(
            Geometry::builder()
                .blocks(4)
                .pages_per_block(8)
                .page_size_bytes(4096)
                .build(),
            NandTiming::mlc_20nm(),
        );
        for i in 0..8 {
            dev.program(Ppn(i), Lpn(i)).expect("victim fill");
        }
        for off in [1, 3, 5] {
            dev.invalidate(Ppn(off)).expect("valid");
        }
        dev
    }

    fn victim_srcs(dev: &NandDevice, victim: BlockId) -> Vec<(Ppn, Lpn)> {
        dev.block(victim)
            .valid_lpns()
            .map(|(off, lpn)| (dev.geometry().ppn(victim, off), lpn))
            .collect()
    }

    #[test]
    fn copy_pages_matches_the_per_page_loop() {
        let mut looped = copy_fixture();
        let mut bulk = copy_fixture();
        let srcs = victim_srcs(&looped, BlockId(0));
        let (duration, dsts, _, _) = loop_copy(&mut looped, &srcs, BlockId(1));

        let mut bulk_dsts = Vec::new();
        let out = bulk
            .copy_pages(&srcs, BlockId(1), false, &mut bulk_dsts)
            .expect("copy");
        assert_eq!(out.copied, srcs.len());
        assert_eq!(out.duration, duration);
        assert!(!out.pending_read);
        assert_eq!(out.read_failures, 0);
        assert_eq!(out.program_retries, 0);
        assert_eq!(bulk_dsts, dsts);
        assert_same_device_state(&looped, &bulk);
    }

    #[test]
    fn copy_pages_stops_with_a_pending_read_when_the_destination_fills() {
        let mut dev = copy_fixture();
        // Leave only two free pages in the destination.
        for i in 0..6 {
            dev.program(Ppn(8 + i), Lpn(100 + i)).expect("dst fill");
        }
        let srcs = victim_srcs(&dev, BlockId(0));
        assert_eq!(srcs.len(), 5);

        let mut dsts = Vec::new();
        let out = dev
            .copy_pages(&srcs, BlockId(1), false, &mut dsts)
            .expect("copy");
        // Two pages fit; the third page's read already happened when the
        // full destination was discovered.
        assert_eq!(out.copied, 2);
        assert!(out.pending_read);
        assert_eq!(dsts.len(), 2);
        assert_eq!(dev.stats().reads, 3);

        // Resume on a fresh destination without re-reading.
        let out = dev
            .copy_pages(&srcs[2..], BlockId(2), true, &mut dsts)
            .expect("resume");
        assert_eq!(out.copied, 3);
        assert!(!out.pending_read);
        assert_eq!(dev.stats().reads, 5, "resume must not re-read");
        assert_eq!(dsts.len(), 5);
        assert_eq!(dev.block(BlockId(0)).valid_pages(), 0);
    }

    #[test]
    fn copy_pages_matches_the_loop_under_faults() {
        let mut saw_read_failure = false;
        let mut saw_program_retry = false;
        for seed in 0..10 {
            let fault = FaultConfig {
                seed,
                program_rate: 0.35,
                erase_rate: 0.0,
                read_rate: 0.35,
                wear_scale: 10,
            };
            let build = || {
                let mut dev = NandDevice::new(
                    Geometry::builder()
                        .blocks(4)
                        .pages_per_block(32)
                        .page_size_bytes(4096)
                        .build(),
                    NandTiming::mlc_20nm(),
                )
                .with_fault_model(FaultModel::new(fault));
                // Wear the victim and destination so faults can fire
                // (erase_rate is zero: these draw nothing).
                for blk in [BlockId(0), BlockId(1)] {
                    for _ in 0..5 {
                        dev.erase(blk).expect("erase never faults here");
                    }
                }
                // Fill the victim, tolerating injected program failures —
                // both devices share the seed, so they build identically.
                while let Some(off) = dev.block(BlockId(0)).next_free_offset() {
                    let ppn = dev.geometry().ppn(BlockId(0), off);
                    let _ = dev.program(ppn, Lpn(u64::from(off)));
                }
                dev
            };
            let mut looped = build();
            let mut bulk = build();
            let srcs: Vec<_> = victim_srcs(&looped, BlockId(0))
                .into_iter()
                .take(8)
                .collect();
            assert!(!srcs.is_empty(), "seed {seed} left no valid pages");

            let (duration, dsts, read_failures, retries) =
                loop_copy(&mut looped, &srcs, BlockId(1));
            let mut bulk_dsts = Vec::new();
            let out = bulk
                .copy_pages(&srcs, BlockId(1), false, &mut bulk_dsts)
                .expect("copy");
            assert_eq!(out.copied, srcs.len(), "seed {seed}");
            assert_eq!(out.duration, duration, "seed {seed}");
            assert_eq!(out.read_failures, read_failures, "seed {seed}");
            assert_eq!(out.program_retries, retries, "seed {seed}");
            assert_eq!(bulk_dsts, dsts, "seed {seed}");
            assert_same_device_state(&looped, &bulk);
            saw_read_failure |= read_failures > 0;
            saw_program_retry |= retries > 0;
        }
        assert!(saw_read_failure, "no seed injected an uncorrectable read");
        assert!(saw_program_retry, "no seed injected a program failure");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut dev = tiny();
        dev.program(Ppn(0), Lpn(0)).expect("free");
        dev.read(Ppn(0)).expect("programmed");
        dev.erase(BlockId(1)).expect("in range");
        let t = dev.timing();
        let expected = t.page_program_cost() + t.page_read_cost() + t.block_erase_cost();
        assert_eq!(dev.stats().busy_time(), expected);
    }
}
