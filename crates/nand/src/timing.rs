//! Operation timing models for different NAND generations.

use jitgc_sim::json::{JsonError, JsonValue, ObjectBuilder};
use jitgc_sim::{ByteSize, SimDuration};

/// Latency parameters of a NAND device plus the striping parallelism the
/// controller can exploit.
///
/// The paper's motivation (Sec. 1) is that program time and block size grow
/// with density — 0.2 ms / 64 pages-per-block at 130 nm versus 2.3 ms /
/// 384 pages-per-block at 25 nm — making GC ever more expensive. The
/// [`legacy_130nm`](NandTiming::legacy_130nm) and
/// [`dense_25nm`](NandTiming::dense_25nm) presets encode exactly those
/// numbers so the `ablation_nand_generation` bench can reproduce the trend;
/// [`mlc_20nm`](NandTiming::mlc_20nm) approximates the SM843T's 20 nm MLC
/// flash and is the default everywhere else.
///
/// `parallelism` collapses the channel/way hierarchy: a controller striping
/// over `n` independent dies sustains `n` concurrent array operations, so
/// effective per-page cost is the raw cost divided by `n`. Policy
/// comparisons are invariant to this constant, but it keeps absolute
/// IOPS/bandwidth in a realistic range.
///
/// # Example
///
/// ```
/// use jitgc_nand::NandTiming;
///
/// let t = NandTiming::mlc_20nm();
/// // Effective program cost is raw cost / parallelism.
/// assert!(t.page_program_cost() < t.raw_program_time());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NandTiming {
    read: SimDuration,
    program: SimDuration,
    erase: SimDuration,
    transfer_per_page: SimDuration,
    parallelism: u32,
}

impl NandTiming {
    /// Builds a custom timing model.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    #[must_use]
    pub fn new(
        read: SimDuration,
        program: SimDuration,
        erase: SimDuration,
        transfer_per_page: SimDuration,
        parallelism: u32,
    ) -> Self {
        assert!(parallelism > 0, "parallelism must be non-zero");
        NandTiming {
            read,
            program,
            erase,
            transfer_per_page,
            parallelism,
        }
    }

    /// 130 nm SLC-era flash: 0.2 ms program (paper Sec. 1), 25 µs read,
    /// 1.5 ms erase. Pair with 64 pages/block geometry.
    #[must_use]
    pub fn legacy_130nm() -> Self {
        NandTiming::new(
            SimDuration::from_micros(25),
            SimDuration::from_micros(200),
            SimDuration::from_micros(1_500),
            SimDuration::from_micros(20),
            8,
        )
    }

    /// 25 nm 3-bpc-era flash: 2.3 ms program (paper Sec. 1), 75 µs read,
    /// 3.8 ms erase. Pair with 384 pages/block geometry.
    #[must_use]
    pub fn dense_25nm() -> Self {
        NandTiming::new(
            SimDuration::from_micros(75),
            SimDuration::from_micros(2_300),
            SimDuration::from_micros(3_800),
            SimDuration::from_micros(20),
            8,
        )
    }

    /// 20 nm MLC flash approximating the Samsung SM843T (the paper's
    /// testbed): 50 µs read, 1.3 ms program, 3 ms erase, 8-way striping.
    #[must_use]
    pub fn mlc_20nm() -> Self {
        NandTiming::new(
            SimDuration::from_micros(50),
            SimDuration::from_micros(1_300),
            SimDuration::from_micros(3_000),
            SimDuration::from_micros(10),
            8,
        )
    }

    /// Raw array read time (before striping).
    #[must_use]
    pub fn raw_read_time(&self) -> SimDuration {
        self.read
    }

    /// Raw array program time (before striping).
    #[must_use]
    pub fn raw_program_time(&self) -> SimDuration {
        self.program
    }

    /// Raw block erase time (before striping).
    #[must_use]
    pub fn raw_erase_time(&self) -> SimDuration {
        self.erase
    }

    /// Bus transfer time per page.
    #[must_use]
    pub fn transfer_per_page(&self) -> SimDuration {
        self.transfer_per_page
    }

    /// Striping factor.
    #[must_use]
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// Effective cost of reading one page, amortized over striping.
    /// At least 1 µs so time always advances.
    #[must_use]
    pub fn page_read_cost(&self) -> SimDuration {
        Self::amortize(self.read + self.transfer_per_page, self.parallelism)
    }

    /// Effective cost of programming one page, amortized over striping.
    #[must_use]
    pub fn page_program_cost(&self) -> SimDuration {
        Self::amortize(self.program + self.transfer_per_page, self.parallelism)
    }

    /// Effective cost of erasing one block, amortized over striping.
    #[must_use]
    pub fn block_erase_cost(&self) -> SimDuration {
        Self::amortize(self.erase, self.parallelism)
    }

    /// Effective cost of migrating one valid page during GC
    /// (read + program).
    #[must_use]
    pub fn page_migrate_cost(&self) -> SimDuration {
        self.page_read_cost() + self.page_program_cost()
    }

    /// Sustained program bandwidth in bytes/second for the given page size
    /// (reporting helper; the paper's `B_w`/`B_gc` are *measured* online by
    /// the manager, not taken from here).
    #[must_use]
    pub fn program_bandwidth(&self, page_size: ByteSize) -> f64 {
        page_size.as_u64() as f64 / self.page_program_cost().as_secs_f64()
    }

    fn amortize(raw: SimDuration, parallelism: u32) -> SimDuration {
        (raw / u64::from(parallelism)).max(SimDuration::from_micros(1))
    }

    /// Serializes to the repository's JSON config format (all durations in
    /// microseconds).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("read_us", self.read.as_micros())
            .field("program_us", self.program.as_micros())
            .field("erase_us", self.erase.as_micros())
            .field("transfer_per_page_us", self.transfer_per_page.as_micros())
            .field("parallelism", self.parallelism)
            .build()
    }

    /// Parses the format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let micros = |key: &str| -> Result<SimDuration, JsonError> {
            v.req(key)?
                .as_u64()
                .map(SimDuration::from_micros)
                .ok_or_else(|| JsonError::new(format!("`{key}` must be an integer")))
        };
        let parallelism = v
            .req("parallelism")?
            .as_u64()
            .and_then(|p| u32::try_from(p).ok())
            .filter(|&p| p > 0)
            .ok_or_else(|| JsonError::new("`parallelism` must be a positive integer"))?;
        Ok(NandTiming::new(
            micros("read_us")?,
            micros("program_us")?,
            micros("erase_us")?,
            micros("transfer_per_page_us")?,
            parallelism,
        ))
    }
}

impl Default for NandTiming {
    fn default() -> Self {
        NandTiming::mlc_20nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips() {
        let t = NandTiming::dense_25nm();
        let back = NandTiming::from_json(&t.to_json()).expect("parse");
        assert_eq!(back, t);
        assert!(NandTiming::from_json(&JsonValue::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn presets_match_paper_numbers() {
        assert_eq!(
            NandTiming::legacy_130nm().raw_program_time(),
            SimDuration::from_micros(200)
        );
        assert_eq!(
            NandTiming::dense_25nm().raw_program_time(),
            SimDuration::from_micros(2_300)
        );
    }

    #[test]
    fn amortization_divides_by_parallelism() {
        let t = NandTiming::mlc_20nm();
        assert_eq!(
            t.page_program_cost(),
            SimDuration::from_micros((1_300 + 10) / 8)
        );
        assert_eq!(t.block_erase_cost(), SimDuration::from_micros(3_000 / 8));
    }

    #[test]
    fn costs_never_hit_zero() {
        let t = NandTiming::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            SimDuration::ZERO,
            64,
        );
        assert_eq!(t.page_read_cost(), SimDuration::from_micros(1));
        assert_eq!(t.page_program_cost(), SimDuration::from_micros(1));
        assert_eq!(t.block_erase_cost(), SimDuration::from_micros(1));
    }

    #[test]
    fn migrate_is_read_plus_program() {
        let t = NandTiming::mlc_20nm();
        assert_eq!(
            t.page_migrate_cost(),
            t.page_read_cost() + t.page_program_cost()
        );
    }

    #[test]
    fn program_bandwidth_is_positive() {
        let bw = NandTiming::mlc_20nm().program_bandwidth(ByteSize::kib(4));
        // 4 KiB / 163 µs ≈ 25 MB/s effective per the 8-way preset.
        assert!(bw > 10e6 && bw < 100e6, "bandwidth {bw}");
    }

    #[test]
    fn default_is_mlc() {
        assert_eq!(NandTiming::default(), NandTiming::mlc_20nm());
    }

    #[test]
    #[should_panic(expected = "parallelism must be non-zero")]
    fn zero_parallelism_panics() {
        let _ = NandTiming::new(
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
            SimDuration::ZERO,
            0,
        );
    }

    #[test]
    fn generation_trend_program_cost_grows() {
        // The paper's motivating trend: denser flash pays more per program.
        assert!(
            NandTiming::dense_25nm().page_program_cost()
                > NandTiming::legacy_130nm().page_program_cost()
        );
    }
}
