//! NAND flash device model for the JIT-GC simulator.
//!
//! This crate models the raw flash device the FTL manages: the physical
//! geometry, the per-page and per-block state machines that enforce flash
//! physics, operation timing, and wear/operation accounting.
//!
//! The two constraints that make garbage collection necessary at all are
//! enforced here as hard errors, so any FTL bug that violates them fails
//! loudly instead of silently corrupting the simulation:
//!
//! 1. **Erase-before-write** — a page can be programmed only once between
//!    block erases ([`NandError::ProgramProgrammedPage`]).
//! 2. **Sequential programming** — pages within a block must be programmed
//!    in order ([`NandError::ProgramOutOfOrder`]), as required by real MLC
//!    NAND to limit program disturb.
//!
//! # Example
//!
//! ```
//! use jitgc_nand::{Geometry, Lpn, NandDevice, NandTiming, Ppn};
//!
//! # fn main() -> Result<(), jitgc_nand::NandError> {
//! let geometry = Geometry::builder()
//!     .blocks(64)
//!     .pages_per_block(128)
//!     .page_size_bytes(4096)
//!     .build();
//! let mut device = NandDevice::new(geometry, NandTiming::mlc_20nm());
//!
//! // Program the first page of block 0 with host data for LPN 7.
//! let cost = device.program(Ppn(0), Lpn(7))?;
//! assert!(cost.as_micros() > 0);
//! assert_eq!(device.page_lpn(Ppn(0)), Some(Lpn(7)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod block;
mod device;
mod error;
mod fault;
mod geometry;
mod stats;
mod timing;

pub use address::{BlockId, Lpn, Ppn};
pub use block::{Block, PageState};
pub use device::{CopyOutcome, NandDevice};
pub use error::NandError;
pub use fault::{FaultConfig, FaultModel};
pub use geometry::{Geometry, GeometryBuilder};
pub use stats::{NandStats, WearReport};
pub use timing::NandTiming;
