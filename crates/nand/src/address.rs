//! Address newtypes: logical pages, physical pages, and blocks.

use std::fmt;

/// A **logical** page number — the host-visible address space.
///
/// The FTL maps each `Lpn` to at most one live [`Ppn`]; the NAND device
/// stores the owning `Lpn` in each programmed page's out-of-band (OOB) area
/// so garbage collection can relocate pages without a reverse-map lookup,
/// exactly as production FTLs do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lpn(pub u64);

/// A **physical** page number, indexing pages across the whole device in
/// block-major order: `ppn = block.0 × pages_per_block + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ppn(pub u64);

/// A physical erase-block number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BlockId(pub u32);

impl Lpn {
    /// The raw index.
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl Ppn {
    /// The raw index.
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl BlockId {
    /// The raw index.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl From<u64> for Lpn {
    fn from(v: u64) -> Self {
        Lpn(v)
    }
}

impl From<u64> for Ppn {
    fn from(v: u64) -> Self {
        Ppn(v)
    }
}

impl From<u32> for BlockId {
    fn from(v: u32) -> Self {
        BlockId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_tagged() {
        assert_eq!(Lpn(3).to_string(), "L3");
        assert_eq!(Ppn(4).to_string(), "P4");
        assert_eq!(BlockId(5).to_string(), "B5");
    }

    #[test]
    fn newtypes_are_distinct_types() {
        // Compile-time property; here we just exercise the accessors.
        assert_eq!(Lpn::from(9).index(), 9);
        assert_eq!(Ppn::from(9).index(), 9);
        assert_eq!(BlockId::from(9).index(), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Lpn(1) < Lpn(2));
        assert!(Ppn(1) < Ppn(2));
        assert!(BlockId(1) < BlockId(2));
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let l = Lpn(77);
        let json = serde_json::to_string(&l).expect("serialize");
        assert_eq!(serde_json::from_str::<Lpn>(&json).expect("parse"), l);
    }
}
