//! Per-block page state machine.

use crate::{Lpn, NandError, Ppn};

/// The lifecycle state of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PageState {
    /// Erased and programmable (once).
    Free,
    /// Programmed and holding the live copy of some LPN.
    Valid,
    /// Programmed but superseded; space is reclaimable only by erasing the
    /// whole block.
    Invalid,
}

/// One erase block: page states, OOB metadata, the sequential write
/// pointer, and the erase counter.
///
/// `Block` enforces flash physics locally (sequential programming,
/// erase-before-write); [`NandDevice`](crate::NandDevice) adds device-level
/// addressing and timing on top.
///
/// # Example
///
/// ```
/// use jitgc_nand::{Block, Lpn, PageState};
///
/// # fn main() -> Result<(), jitgc_nand::NandError> {
/// let mut block = Block::new(4);
/// block.program_next(Lpn(9))?;
/// assert_eq!(block.page_state(0), PageState::Valid);
/// assert_eq!(block.page_lpn(0), Some(Lpn(9)));
/// assert_eq!(block.valid_pages(), 1);
/// block.erase();
/// assert_eq!(block.page_state(0), PageState::Free);
/// assert_eq!(block.erase_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Block {
    states: Vec<PageState>,
    oob: Vec<Option<Lpn>>,
    write_ptr: u32,
    erase_count: u64,
    valid: u32,
}

impl Block {
    /// Creates an erased block of `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    #[must_use]
    pub fn new(pages: u32) -> Self {
        assert!(pages > 0, "block must have at least one page");
        Block {
            states: vec![PageState::Free; pages as usize],
            oob: vec![None; pages as usize],
            write_ptr: 0,
            erase_count: 0,
            valid: 0,
        }
    }

    /// Number of pages in the block.
    #[must_use]
    pub fn pages(&self) -> u32 {
        self.states.len() as u32
    }

    /// State of the page at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    #[must_use]
    pub fn page_state(&self, offset: u32) -> PageState {
        self.states[offset as usize]
    }

    /// OOB-recorded owner LPN of the page at `offset` (present for
    /// programmed pages, `None` for free ones).
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range.
    #[must_use]
    pub fn page_lpn(&self, offset: u32) -> Option<Lpn> {
        self.oob[offset as usize]
    }

    /// Programs the next sequential page, recording `lpn` in its OOB area,
    /// and returns the offset programmed.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ProgramProgrammedPage`] when the block is full
    /// (every page already programmed since the last erase).
    pub fn program_next(&mut self, lpn: Lpn) -> Result<u32, NandError> {
        if self.is_full() {
            return Err(NandError::ProgramProgrammedPage {
                // Report the first page: programming anywhere in a full
                // block would re-program it.
                ppn: Ppn(0),
            });
        }
        let offset = self.write_ptr;
        self.states[offset as usize] = PageState::Valid;
        self.oob[offset as usize] = Some(lpn);
        self.write_ptr += 1;
        self.valid += 1;
        Ok(offset)
    }

    /// The offset the next program must target, or `None` when full.
    #[must_use]
    pub fn next_free_offset(&self) -> Option<u32> {
        (!self.is_full()).then_some(self.write_ptr)
    }

    /// Marks the page at `offset` invalid.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::InvalidateNonValidPage`] unless the page is
    /// currently [`PageState::Valid`].
    pub fn invalidate(&mut self, offset: u32) -> Result<(), NandError> {
        match self.states.get_mut(offset as usize) {
            Some(s @ PageState::Valid) => {
                *s = PageState::Invalid;
                self.valid -= 1;
                Ok(())
            }
            _ => Err(NandError::InvalidateNonValidPage {
                ppn: Ppn(u64::from(offset)),
            }),
        }
    }

    /// Erases the block: all pages become [`PageState::Free`], OOB is
    /// cleared, the write pointer resets, and the erase counter increments.
    pub fn erase(&mut self) {
        self.states.fill(PageState::Free);
        self.oob.fill(None);
        self.write_ptr = 0;
        self.valid = 0;
        self.erase_count += 1;
    }

    /// Number of program/erase cycles this block has endured.
    #[must_use]
    pub fn erase_count(&self) -> u64 {
        self.erase_count
    }

    /// Number of pages currently valid.
    #[must_use]
    pub fn valid_pages(&self) -> u32 {
        self.valid
    }

    /// Number of pages currently invalid.
    #[must_use]
    pub fn invalid_pages(&self) -> u32 {
        self.write_ptr - self.valid
    }

    /// Number of pages still free (programmable).
    #[must_use]
    pub fn free_pages(&self) -> u32 {
        self.pages() - self.write_ptr
    }

    /// `true` when every page has been programmed since the last erase.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.write_ptr == self.pages()
    }

    /// `true` when no page has been programmed since the last erase.
    #[must_use]
    pub fn is_erased(&self) -> bool {
        self.write_ptr == 0
    }

    /// Iterates `(offset, state, oob_lpn)` for every page.
    pub fn iter_pages(&self) -> impl Iterator<Item = (u32, PageState, Option<Lpn>)> + '_ {
        self.states
            .iter()
            .zip(&self.oob)
            .enumerate()
            .map(|(i, (&s, &l))| (i as u32, s, l))
    }

    /// Iterates the offsets and LPNs of all currently valid pages — the set
    /// GC must migrate before erasing this block.
    pub fn valid_lpns(&self) -> impl Iterator<Item = (u32, Lpn)> + '_ {
        self.iter_pages()
            .filter(|&(_off, state, _lpn)| state == PageState::Valid)
            .map(|(off, _state, lpn)| (off, lpn.expect("valid page has OOB lpn")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_erased() {
        let b = Block::new(4);
        assert!(b.is_erased());
        assert!(!b.is_full());
        assert_eq!(b.valid_pages(), 0);
        assert_eq!(b.invalid_pages(), 0);
        assert_eq!(b.free_pages(), 4);
        assert_eq!(b.erase_count(), 0);
        assert_eq!(b.next_free_offset(), Some(0));
    }

    #[test]
    fn sequential_program_fills_block() {
        let mut b = Block::new(3);
        for i in 0..3 {
            let off = b.program_next(Lpn(i)).expect("block has space");
            assert_eq!(off, i as u32);
        }
        assert!(b.is_full());
        assert_eq!(b.next_free_offset(), None);
        assert_eq!(b.valid_pages(), 3);
        assert!(matches!(
            b.program_next(Lpn(9)),
            Err(NandError::ProgramProgrammedPage { .. })
        ));
    }

    #[test]
    fn invalidate_tracks_counts() {
        let mut b = Block::new(4);
        b.program_next(Lpn(0)).expect("space");
        b.program_next(Lpn(1)).expect("space");
        b.invalidate(0).expect("page 0 valid");
        assert_eq!(b.valid_pages(), 1);
        assert_eq!(b.invalid_pages(), 1);
        assert_eq!(b.free_pages(), 2);
        assert_eq!(b.page_state(0), PageState::Invalid);
    }

    #[test]
    fn invalidate_rejects_free_and_invalid() {
        let mut b = Block::new(4);
        assert!(b.invalidate(0).is_err()); // free
        b.program_next(Lpn(0)).expect("space");
        b.invalidate(0).expect("valid");
        assert!(b.invalidate(0).is_err()); // already invalid
        assert!(b.invalidate(99).is_err()); // out of range
    }

    #[test]
    fn erase_resets_everything_and_counts() {
        let mut b = Block::new(2);
        b.program_next(Lpn(5)).expect("space");
        b.program_next(Lpn(6)).expect("space");
        b.invalidate(0).expect("valid");
        b.erase();
        assert!(b.is_erased());
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.page_lpn(0), None);
        assert_eq!(b.valid_pages(), 0);
        // Programmable again after erase.
        assert_eq!(b.program_next(Lpn(7)).expect("space"), 0);
    }

    #[test]
    fn oob_records_owner() {
        let mut b = Block::new(2);
        b.program_next(Lpn(42)).expect("space");
        assert_eq!(b.page_lpn(0), Some(Lpn(42)));
        assert_eq!(b.page_lpn(1), None);
    }

    #[test]
    fn valid_lpns_lists_survivors() {
        let mut b = Block::new(4);
        for i in 0..4 {
            b.program_next(Lpn(i)).expect("space");
        }
        b.invalidate(1).expect("valid");
        b.invalidate(3).expect("valid");
        let survivors: Vec<(u32, Lpn)> = b.valid_lpns().collect();
        assert_eq!(survivors, vec![(0, Lpn(0)), (2, Lpn(2))]);
    }

    #[test]
    fn iter_pages_covers_all() {
        let mut b = Block::new(3);
        b.program_next(Lpn(1)).expect("space");
        let v: Vec<_> = b.iter_pages().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[0], (0, PageState::Valid, Some(Lpn(1))));
        assert_eq!(v[1], (1, PageState::Free, None));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_page_block_panics() {
        let _ = Block::new(0);
    }
}
