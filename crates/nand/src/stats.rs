//! Operation and wear accounting.

use jitgc_sim::json::{JsonValue, ObjectBuilder};
use jitgc_sim::stats::RunningStats;
use jitgc_sim::SimDuration;

/// Cumulative operation counters for a NAND device.
///
/// `programs` is the numerator of the Write Amplification Factor; the FTL
/// divides it by host-issued page writes to report WAF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NandStats {
    /// Pages read.
    pub reads: u64,
    /// Pages programmed.
    pub programs: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Pages invalidated (metadata-only, no array time).
    pub invalidations: u64,
    /// Cumulative array time spent reading.
    pub read_time: SimDuration,
    /// Cumulative array time spent programming.
    pub program_time: SimDuration,
    /// Cumulative array time spent erasing.
    pub erase_time: SimDuration,
    /// Injected transient program failures. Not counted in `programs`
    /// (which stays the count of pages that hold data), but their array
    /// time is charged to `program_time` — a failed program still ties
    /// up the die.
    pub program_failures: u64,
    /// Injected erase failures. Not counted in `erases`, so `erases`
    /// always equals the wear the blocks actually accumulated; the time
    /// is still charged to `erase_time`.
    pub erase_failures: u64,
    /// Injected uncorrectable reads. Not counted in `reads`; time is
    /// still charged to `read_time` (the transfer happened, ECC failed).
    pub read_failures: u64,
}

impl NandStats {
    /// Total array busy time across all operation types.
    #[must_use]
    pub fn busy_time(&self) -> SimDuration {
        self.read_time + self.program_time + self.erase_time
    }
}

/// Distribution of per-block erase counts — the device's wear picture.
///
/// The paper argues premature BGC shortens lifetime via extra erases; this
/// report exposes that directly: `total` tracks cumulative wear and
/// `max`/`spread` show how close the worst block is to its endurance limit.
///
/// # Example
///
/// ```
/// use jitgc_nand::{Geometry, NandDevice, NandTiming};
///
/// let device = NandDevice::new(Geometry::builder().build(), NandTiming::default());
/// let wear = device.wear_report();
/// assert_eq!(wear.total, 0);
/// assert_eq!(wear.max, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WearReport {
    /// Sum of erase counts over all blocks.
    pub total: u64,
    /// Smallest per-block erase count.
    pub min: u64,
    /// Largest per-block erase count.
    pub max: u64,
    /// Mean per-block erase count.
    pub mean: f64,
    /// Population standard deviation of per-block erase counts.
    pub std_dev: f64,
}

impl WearReport {
    /// Builds a report from per-block erase counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty (a device always has blocks).
    #[must_use]
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        let mut stats = RunningStats::new();
        let mut total = 0u64;
        for c in counts {
            total += c;
            stats.push(c as f64);
        }
        assert!(stats.count() > 0, "wear report needs at least one block");
        WearReport {
            total,
            min: stats.min().expect("non-empty") as u64,
            max: stats.max().expect("non-empty") as u64,
            mean: stats.mean().expect("non-empty"),
            std_dev: stats.population_std_dev().expect("non-empty"),
        }
    }

    /// Serializes to the repository's JSON report format.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("total", self.total)
            .field("min", self.min)
            .field("max", self.max)
            .field("mean", self.mean)
            .field("std_dev", self.std_dev)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_sums_components() {
        let stats = NandStats {
            read_time: SimDuration::from_micros(10),
            program_time: SimDuration::from_micros(20),
            erase_time: SimDuration::from_micros(30),
            ..NandStats::default()
        };
        assert_eq!(stats.busy_time(), SimDuration::from_micros(60));
    }

    #[test]
    fn wear_report_from_counts() {
        let r = WearReport::from_counts([2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(r.total, 40);
        assert_eq!(r.min, 2);
        assert_eq!(r.max, 9);
        assert_eq!(r.mean, 5.0);
        assert_eq!(r.std_dev, 2.0);
    }

    #[test]
    fn wear_report_uniform() {
        let r = WearReport::from_counts([3, 3, 3]);
        assert_eq!(r.std_dev, 0.0);
        assert_eq!(r.min, 3);
        assert_eq!(r.max, 3);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_counts_panic() {
        let _ = WearReport::from_counts(std::iter::empty());
    }

    #[test]
    fn default_stats_are_zero() {
        let s = NandStats::default();
        assert_eq!(s.reads, 0);
        assert_eq!(s.busy_time(), SimDuration::ZERO);
    }
}
