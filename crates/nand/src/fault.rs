//! Wear-dependent fault injection.
//!
//! Real NAND does not fail all at once at its rated endurance: raw bit
//! error rates climb with accumulated program/erase cycles until ECC can
//! no longer keep up, and program/erase operations start to fail
//! transiently long before a block is formally bad. The [`FaultModel`]
//! reproduces that ageing curve deterministically: every injected fault
//! is drawn from one seeded [`SimRng`] stream, and the per-operation
//! fault probability ramps linearly with the target block's erase count.
//!
//! A fresh block (zero erases) never faults, so aging pre-fill and
//! first-fill traffic are naturally immune and a run with all rates at
//! zero performs **zero** RNG draws — byte-identical to a device built
//! without a fault model.

use jitgc_sim::json::{JsonError, JsonValue, ObjectBuilder};
use jitgc_sim::SimRng;

/// Parameters of the wear-dependent fault injector.
///
/// Each `*_rate` is the fault probability an operation reaches when its
/// block has accumulated [`wear_scale`](FaultConfig::wear_scale) erases;
/// in between, the probability ramps linearly from zero (and keeps
/// growing past the scale, clamped at 1). Setting a rate to zero
/// disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultConfig {
    /// Seed of the injector's private RNG stream.
    pub seed: u64,
    /// Program-failure probability at `wear_scale` erases.
    pub program_rate: f64,
    /// Erase-failure probability at `wear_scale` erases.
    pub erase_rate: f64,
    /// Uncorrectable-read probability at `wear_scale` erases.
    pub read_rate: f64,
    /// Erase count at which each rate is reached (the ageing horizon;
    /// usually the configured endurance limit).
    pub wear_scale: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 1,
            program_rate: 0.0,
            erase_rate: 0.0,
            read_rate: 0.0,
            wear_scale: 3_000,
        }
    }
}

impl FaultConfig {
    /// `true` when any fault class can actually fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.program_rate > 0.0 || self.erase_rate > 0.0 || self.read_rate > 0.0
    }

    /// Serializes to the repository's JSON config format.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("seed", self.seed)
            .field("program_rate", self.program_rate)
            .field("erase_rate", self.erase_rate)
            .field("read_rate", self.read_rate)
            .field("wear_scale", self.wear_scale)
            .build()
    }

    /// Parses the format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let u64_field = |key: &str| -> Result<u64, JsonError> {
            v.req(key)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be an integer")))
        };
        let f64_field = |key: &str| -> Result<f64, JsonError> {
            v.req(key)?
                .as_f64()
                .ok_or_else(|| JsonError::new(format!("`{key}` must be a number")))
        };
        Ok(FaultConfig {
            seed: u64_field("seed")?,
            program_rate: f64_field("program_rate")?,
            erase_rate: f64_field("erase_rate")?,
            read_rate: f64_field("read_rate")?,
            wear_scale: u64_field("wear_scale")?,
        })
    }
}

/// The seeded fault injector a [`NandDevice`](crate::NandDevice) consults
/// on every read, program, and erase.
///
/// Determinism contract: draws happen in device-operation order from one
/// private stream, and only when the computed probability is non-zero —
/// so two runs with the same seed and the same operation sequence inject
/// the identical fault timeline, while a zero-rate (or zero-wear) run
/// draws nothing at all.
#[derive(Debug, Clone)]
pub struct FaultModel {
    config: FaultConfig,
    rng: SimRng,
}

impl FaultModel {
    /// Creates an injector from its configuration.
    #[must_use]
    pub fn new(config: FaultConfig) -> Self {
        FaultModel {
            rng: SimRng::seed(config.seed),
            config,
        }
    }

    /// The configuration this injector was built from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Fault probability for a class whose rate is `rate`, on a block
    /// with `erase_count` erases.
    fn probability(&self, rate: f64, erase_count: u64) -> f64 {
        if rate <= 0.0 || erase_count == 0 {
            return 0.0;
        }
        let scale = self.config.wear_scale.max(1) as f64;
        (rate * erase_count as f64 / scale).min(1.0)
    }

    fn draw(&mut self, rate: f64, erase_count: u64) -> bool {
        let p = self.probability(rate, erase_count);
        p > 0.0 && self.rng.chance(p)
    }

    /// Should the next program on a block with `erase_count` erases fail?
    pub fn program_fails(&mut self, erase_count: u64) -> bool {
        self.draw(self.config.program_rate, erase_count)
    }

    /// Should the next erase of a block with `erase_count` erases fail?
    pub fn erase_fails(&mut self, erase_count: u64) -> bool {
        self.draw(self.config.erase_rate, erase_count)
    }

    /// Should the next read from a block with `erase_count` erases come
    /// back uncorrectable?
    pub fn read_fails(&mut self, erase_count: u64) -> bool {
        self.draw(self.config.read_rate, erase_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active() -> FaultConfig {
        FaultConfig {
            seed: 7,
            program_rate: 0.5,
            erase_rate: 0.5,
            read_rate: 0.5,
            wear_scale: 10,
        }
    }

    #[test]
    fn default_config_is_inert() {
        let c = FaultConfig::default();
        assert!(!c.is_active());
        let mut m = FaultModel::new(c);
        for _ in 0..100 {
            assert!(!m.program_fails(1_000_000));
            assert!(!m.erase_fails(1_000_000));
            assert!(!m.read_fails(1_000_000));
        }
    }

    #[test]
    fn fresh_blocks_never_fault() {
        let mut m = FaultModel::new(active());
        for _ in 0..1_000 {
            assert!(!m.program_fails(0));
            assert!(!m.erase_fails(0));
            assert!(!m.read_fails(0));
        }
    }

    #[test]
    fn worn_blocks_fault_eventually_and_deterministically() {
        let run = || {
            let mut m = FaultModel::new(active());
            (0..1_000).map(|_| m.program_fails(5)).collect::<Vec<_>>()
        };
        let a = run();
        assert!(a.iter().any(|&f| f), "rate 0.5 past scale never fired");
        assert!(!a.iter().all(|&f| f), "probability must stay below 1 here");
        assert_eq!(a, run(), "same seed must give the same fault timeline");
    }

    #[test]
    fn probability_ramps_with_wear() {
        let m = FaultModel::new(active());
        let p_low = m.probability(0.5, 1);
        let p_mid = m.probability(0.5, 5);
        let p_cap = m.probability(0.5, 1_000_000);
        assert!(p_low < p_mid);
        assert!((p_mid - 0.25).abs() < 1e-12);
        assert_eq!(p_cap, 1.0);
    }

    #[test]
    fn json_round_trips() {
        let c = FaultConfig {
            seed: 42,
            program_rate: 0.001,
            erase_rate: 0.01,
            read_rate: 0.0001,
            wear_scale: 500,
        };
        let back = FaultConfig::from_json(&c.to_json()).expect("parse");
        assert_eq!(back, c);
    }
}
