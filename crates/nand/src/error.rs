//! Error type for NAND device operations.

use crate::{BlockId, Ppn};
use std::error::Error;
use std::fmt;

/// A flash-physics violation or addressing error.
///
/// Every variant indicates an FTL bug (or a deliberately induced fault in a
/// failure-injection test), never a recoverable runtime condition — a
/// correct FTL can always avoid these by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NandError {
    /// The physical page address is outside the device.
    PpnOutOfRange {
        /// The offending address.
        ppn: Ppn,
        /// Total pages on the device.
        total_pages: u64,
    },
    /// The block address is outside the device.
    BlockOutOfRange {
        /// The offending block.
        block: BlockId,
        /// Total blocks on the device.
        total_blocks: u32,
    },
    /// Attempted to program a page that is already programmed since the
    /// last erase (the erase-before-write constraint).
    ProgramProgrammedPage {
        /// The offending address.
        ppn: Ppn,
    },
    /// Attempted to program a page out of sequential order within its block.
    ProgramOutOfOrder {
        /// The offending address.
        ppn: Ppn,
        /// The page offset that must be programmed next in this block.
        expected_offset: u32,
    },
    /// Attempted to read a page that holds no data (never programmed since
    /// the last erase).
    ReadUnwrittenPage {
        /// The offending address.
        ppn: Ppn,
    },
    /// Attempted to invalidate a page that is not currently valid.
    InvalidateNonValidPage {
        /// The offending address.
        ppn: Ppn,
    },
    /// The block reached its configured program/erase endurance limit.
    BlockWornOut {
        /// The worn-out block.
        block: BlockId,
        /// The endurance limit that was exceeded.
        limit: u64,
    },
    /// An injected transient program failure: the page is consumed
    /// (left unusable until the next erase) but holds no data.
    ProgramFailed {
        /// The page whose program operation failed.
        ppn: Ppn,
    },
    /// An injected erase failure: the block did not erase and should be
    /// retired by the FTL.
    EraseFailed {
        /// The block whose erase operation failed.
        block: BlockId,
    },
    /// An injected uncorrectable read: the page's data is beyond ECC.
    ReadFailed {
        /// The page whose read came back uncorrectable.
        ppn: Ppn,
    },
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::PpnOutOfRange { ppn, total_pages } => {
                write!(
                    f,
                    "physical page {ppn} outside device of {total_pages} pages"
                )
            }
            NandError::BlockOutOfRange {
                block,
                total_blocks,
            } => {
                write!(f, "block {block} outside device of {total_blocks} blocks")
            }
            NandError::ProgramProgrammedPage { ppn } => {
                write!(f, "program of already-programmed page {ppn} without erase")
            }
            NandError::ProgramOutOfOrder {
                ppn,
                expected_offset,
            } => write!(
                f,
                "out-of-order program of {ppn}, block expects offset {expected_offset} next"
            ),
            NandError::ReadUnwrittenPage { ppn } => {
                write!(f, "read of unwritten page {ppn}")
            }
            NandError::InvalidateNonValidPage { ppn } => {
                write!(f, "invalidate of non-valid page {ppn}")
            }
            NandError::BlockWornOut { block, limit } => {
                write!(
                    f,
                    "block {block} exceeded endurance limit of {limit} erases"
                )
            }
            NandError::ProgramFailed { ppn } => {
                write!(f, "program of page {ppn} failed (injected wear fault)")
            }
            NandError::EraseFailed { block } => {
                write!(f, "erase of block {block} failed (injected wear fault)")
            }
            NandError::ReadFailed { ppn } => {
                write!(f, "uncorrectable read of page {ppn} (injected wear fault)")
            }
        }
    }
}

impl Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let msg = NandError::ProgramOutOfOrder {
            ppn: Ppn(10),
            expected_offset: 2,
        }
        .to_string();
        assert!(msg.contains("P10"));
        assert!(msg.contains("offset 2"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<NandError>();
    }

    #[test]
    fn all_variants_display() {
        let errors = [
            NandError::PpnOutOfRange {
                ppn: Ppn(1),
                total_pages: 2,
            },
            NandError::BlockOutOfRange {
                block: BlockId(1),
                total_blocks: 2,
            },
            NandError::ProgramProgrammedPage { ppn: Ppn(1) },
            NandError::ProgramOutOfOrder {
                ppn: Ppn(1),
                expected_offset: 0,
            },
            NandError::ReadUnwrittenPage { ppn: Ppn(1) },
            NandError::InvalidateNonValidPage { ppn: Ppn(1) },
            NandError::BlockWornOut {
                block: BlockId(1),
                limit: 3_000,
            },
            NandError::ProgramFailed { ppn: Ppn(1) },
            NandError::EraseFailed { block: BlockId(1) },
            NandError::ReadFailed { ppn: Ppn(1) },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
