//! **Array-scale policy sweep** — the paper's Fig. 7 policy comparison
//! lifted to a 4-member striped array, crossed with the array's BGC
//! coordination modes.
//!
//! Expected shape: per-policy ordering matches the single-device Fig. 7
//! (JIT-GC near A-BGC's IOPS at near L-BGC's WAF), while staggering
//! member flusher phases trims the volume-level p99/p999 stall tail
//! relative to the unsynchronized array, without moving WAF — the
//! coordination lever is *when* members collect, not *how much*.

use jitgc_array::{ArrayConfig, ArraySched, GcMode, Redundancy};
use jitgc_bench::{default_threads, format_table, run_grid, Experiment, PolicyKind};
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, WorkloadConfig};

const MEMBERS: usize = 4;
const CHUNK_PAGES: u64 = 16;

fn main() {
    let exp = Experiment {
        duration: SimDuration::from_secs(120),
        ..Experiment::standard()
    };
    let policies = [
        PolicyKind::ReservedPermille(500),
        PolicyKind::ReservedPermille(1_500),
        PolicyKind::Adp,
        PolicyKind::Jit,
    ];
    let modes = [GcMode::Unsynchronized, GcMode::Staggered];

    let mut cells: Vec<(PolicyKind, GcMode, BenchmarkKind)> = Vec::new();
    for b in BenchmarkKind::all() {
        for &p in &policies {
            for &m in &modes {
                cells.push((p, m, b));
            }
        }
    }

    let system = exp.system.clone();
    // Stripe the volume so every member carries the same working-set
    // share a standalone device would (Experiment::run's sizing × N).
    let per_member = system.ftl.user_pages() - system.ftl.op_pages() / 2;
    let reports = run_grid(&cells, default_threads(), |&(policy, mode, benchmark)| {
        let workload = benchmark.build(
            WorkloadConfig::builder()
                .working_set_pages(per_member * MEMBERS as u64)
                .duration(exp.duration)
                .mean_iops(exp.mean_iops * MEMBERS as f64)
                .burst_mean(exp.burst_mean)
                .seed(exp.seed)
                .build(),
        );
        let config = ArrayConfig {
            members: MEMBERS,
            chunk_pages: CHUNK_PAGES,
            redundancy: Redundancy::None,
            gc_mode: mode,
            sched: ArraySched::Steal,
            member_threads: 1,
            system: system.clone(),
        };
        config.build(|cfg| policy.build(cfg), workload).run()
    });

    let columns: Vec<String> = policies
        .iter()
        .flat_map(|p| {
            modes
                .iter()
                .map(move |m| format!("{}/{}", p.name(), m.name()))
        })
        .collect();
    let per_row = policies.len() * modes.len();
    let mut iops_rows = Vec::new();
    let mut p99_rows = Vec::new();
    let mut waf_rows = Vec::new();
    for (row, benchmark) in BenchmarkKind::all().iter().enumerate() {
        let reports = &reports[row * per_row..(row + 1) * per_row];
        iops_rows.push((
            benchmark.name().to_owned(),
            reports.iter().map(|r| r.iops).collect(),
        ));
        p99_rows.push((
            benchmark.name().to_owned(),
            reports.iter().map(|r| r.latency_p99_us as f64).collect(),
        ));
        waf_rows.push((
            benchmark.name().to_owned(),
            // These cells always see host writes; a `None` WAF here would
            // mean the sweep itself is broken, so surface it as NaN-free 0.
            reports.iter().map(|r| r.waf.unwrap_or(0.0)).collect(),
        ));
    }

    print!(
        "{}",
        format_table(
            &format!("Array ({MEMBERS}-way RAID-0): IOPS by policy x GC mode"),
            &columns,
            &iops_rows,
            0,
        )
    );
    print!(
        "{}",
        format_table(
            &format!("Array ({MEMBERS}-way RAID-0): p99 latency (us)"),
            &columns,
            &p99_rows,
            0,
        )
    );
    print!(
        "{}",
        format_table(
            &format!("Array ({MEMBERS}-way RAID-0): WAF"),
            &columns,
            &waf_rows,
            3,
        )
    );
}
