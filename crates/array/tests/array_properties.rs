//! Array-level invariants: single-member equivalence, aggregate
//! consistency, determinism, and mirrored-write coherence.

use jitgc_array::{ArrayConfig, ArrayReport, ArraySched, GcMode, Redundancy};
use jitgc_bench::{run_grid, PolicyKind};
use jitgc_core::system::{SsdSystem, SystemConfig};
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, Workload, WorkloadConfig};

fn workload_for(system: &SystemConfig, columns: u64, seed: u64) -> Box<dyn Workload> {
    // The standard sizing from the single-device experiments, scaled by
    // the column count so each member carries a standalone device's load.
    let per_member = system.ftl.user_pages() - system.ftl.op_pages() / 2;
    BenchmarkKind::Ycsb.build(
        WorkloadConfig::builder()
            .working_set_pages(per_member * columns)
            .duration(SimDuration::from_secs(30))
            .mean_iops(400.0 * columns as f64)
            .burst_mean(256.0)
            .seed(seed)
            .build(),
    )
}

fn array_report(members: usize, redundancy: Redundancy, gc_mode: GcMode, seed: u64) -> ArrayReport {
    let system = SystemConfig::small_for_tests();
    let columns = match redundancy {
        Redundancy::None => members as u64,
        Redundancy::Mirror => members as u64 / 2,
    };
    let config = ArrayConfig {
        members,
        chunk_pages: 16,
        redundancy,
        gc_mode,
        sched: ArraySched::Steal,
        member_threads: 1,
        system: system.clone(),
    };
    config
        .build(
            |cfg| PolicyKind::Jit.build(cfg),
            workload_for(&system, columns, seed),
        )
        .run()
}

/// A 1-member array is the standalone engine: the member's report is
/// byte-identical (as serialized JSON) to `SsdSystem::run()` on the same
/// configuration and workload — the `--array 1` acceptance criterion.
#[test]
fn single_member_array_matches_standalone_byte_for_byte() {
    let system = SystemConfig::small_for_tests();
    let single = SsdSystem::new(
        system.clone(),
        PolicyKind::Jit.build(&system),
        workload_for(&system, 1, 42),
    )
    .run();

    for gc_mode in [GcMode::Unsynchronized, GcMode::Staggered] {
        let array = array_report(1, Redundancy::None, gc_mode, 42);
        assert_eq!(array.member_reports.len(), 1);
        assert_eq!(
            array.member_reports[0].to_json().to_pretty(),
            single.to_json().to_pretty(),
            "{} 1-member array diverged from the standalone engine",
            gc_mode.name()
        );
        // The volume-level view agrees too: every logical request maps to
        // exactly one sub-request, so counts and latencies line up.
        assert_eq!(array.ops, single.ops);
        assert_eq!(array.split_requests, 0);
        assert_eq!(array.latency_p99_us, single.latency_p99_us);
    }
}

/// Aggregate counters are exactly the sums of the member counters, and
/// the derived aggregates (WAF, erase spread) are consistent with them.
#[test]
fn aggregates_equal_member_sums() {
    let report = array_report(4, Redundancy::None, GcMode::Staggered, 7);
    assert_eq!(report.members, 4);
    assert_eq!(report.member_reports.len(), 4);
    assert!(report.ops > 0, "workload produced no requests");

    let erases: u64 = report.member_reports.iter().map(|r| r.nand_erases).sum();
    let stalls: u64 = report
        .member_reports
        .iter()
        .map(|r| r.fgc_request_stalls)
        .sum();
    let bgc: u64 = report.member_reports.iter().map(|r| r.bgc_blocks).sum();
    assert_eq!(report.nand_erases, erases);
    assert_eq!(report.fgc_request_stalls, stalls);
    assert_eq!(report.bgc_blocks, bgc);
    assert_eq!(report.erase_spread.total, erases);

    let host: u64 = report
        .member_reports
        .iter()
        .map(|r| r.host_pages_written)
        .sum();
    let nand: u64 = report
        .member_reports
        .iter()
        .map(|r| r.nand_pages_programmed)
        .sum();
    assert!(host > 0, "no host writes reached the members");
    let expected_waf = nand as f64 / host as f64;
    let waf = report.waf.expect("WAF defined once host writes happened");
    assert!(
        (waf - expected_waf).abs() < 1e-12,
        "aggregate WAF {waf} != {expected_waf}"
    );

    // Page conservation: the members saw at least one sub-request per
    // logical request, and no more than one per member.
    let member_ops: u64 = report.member_reports.iter().map(|r| r.ops).sum();
    assert!(member_ops >= report.ops);
    assert!(member_ops <= report.ops * report.members as u64);
}

/// The whole array simulation is a pure function of its configuration:
/// running the same grid serially and on worker threads yields identical
/// reports in identical order.
#[test]
fn serial_and_threaded_array_sweeps_agree() {
    let cells = [
        (GcMode::Unsynchronized, 1u64),
        (GcMode::Staggered, 1u64),
        (GcMode::Unsynchronized, 2u64),
        (GcMode::Staggered, 2u64),
    ];
    let run = |&(mode, seed): &(GcMode, u64)| array_report(2, Redundancy::None, mode, seed);
    let serial = run_grid(&cells, 1, run);
    let threaded = run_grid(&cells, 4, run);
    assert_eq!(serial, threaded, "thread count changed the results");
}

/// Staggering shifts *when* members collect, not *what* they write: the
/// aggregate write amplification stays put while tick phases move.
#[test]
fn staggering_changes_phases_not_data_placement() {
    let unsync = array_report(4, Redundancy::None, GcMode::Unsynchronized, 7);
    let staggered = array_report(4, Redundancy::None, GcMode::Staggered, 7);
    assert_eq!(unsync.ops, staggered.ops, "request stream must not change");
    // Same workload split the same way regardless of GC phases.
    assert_eq!(unsync.split_requests, staggered.split_requests);
    for (u, s) in unsync
        .member_reports
        .iter()
        .zip(staggered.member_reports.iter())
    {
        assert_eq!(u.reads, s.reads);
        assert_eq!(u.buffered_writes, s.buffered_writes);
        assert_eq!(u.direct_writes, s.direct_writes);
    }
}

/// Mirrored pairs stay coherent: both replicas of a pair absorb every
/// write, so their host-facing write counters match exactly.
#[test]
fn mirror_replicas_see_identical_writes() {
    let report = array_report(4, Redundancy::Mirror, GcMode::Staggered, 11);
    assert_eq!(report.redundancy, "mirror");
    for pair in report.member_reports.chunks(2) {
        assert_eq!(pair[0].buffered_writes, pair[1].buffered_writes);
        assert_eq!(pair[0].direct_writes, pair[1].direct_writes);
        assert_eq!(pair[0].trims, pair[1].trims);
        assert_eq!(pair[0].host_pages_written, pair[1].host_pages_written);
        // Reads are routed, not duplicated: the pair serves each read once.
        let reads = pair[0].reads + pair[1].reads;
        assert!(reads > 0, "mirrored pair served no reads");
    }
}

/// The JSON report round-trips through the repository parser and carries
/// both the aggregate section and every member section.
#[test]
fn array_report_serializes() {
    let report = array_report(2, Redundancy::None, GcMode::Staggered, 3);
    let json = report.to_json().to_pretty();
    let parsed = jitgc_sim::json::JsonValue::parse(&json).expect("own output parses");
    assert_eq!(parsed.get("members").unwrap().as_u64(), Some(2));
    assert_eq!(
        parsed
            .get("member_reports")
            .unwrap()
            .as_array()
            .unwrap()
            .len(),
        2
    );
    assert_eq!(parsed.get("gc_mode").unwrap().as_str(), Some("staggered"));
}
