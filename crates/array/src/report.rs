//! The per-run result record for an array simulation.

use jitgc_core::system::SimReport;
use jitgc_nand::WearReport;
use jitgc_sim::json::{JsonValue, ObjectBuilder};

/// Everything one array run measured: array-level request statistics plus
/// the full per-member [`SimReport`]s the aggregates were derived from.
///
/// The array's latency distribution is *not* the merge of the member
/// distributions — a striped request completes when its **slowest**
/// sub-request does, so array tail latency is recorded at the volume
/// level by the scheduler and is generally worse than any single member's.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayReport {
    /// Member count.
    pub members: usize,
    /// Stripe chunk size in pages.
    pub chunk_pages: u64,
    /// Redundancy scheme name ("raid0" / "mirror").
    pub redundancy: String,
    /// BGC coordination mode name ("unsync" / "staggered").
    pub gc_mode: String,
    /// Policy display name (same on every member).
    pub policy: String,
    /// Workload display name.
    pub workload: String,
    /// Simulated run length in seconds (the slowest member's horizon).
    pub duration_secs: f64,

    /// Completed logical (volume-level) requests.
    pub ops: u64,
    /// Logical requests per simulated second.
    pub iops: f64,
    /// Logical requests whose extent crossed a chunk boundary and fanned
    /// out to more than one sub-request.
    pub split_requests: u64,
    /// Mirrored reads steered away from a busier primary replica.
    pub routed_reads: u64,

    /// Mean volume-level request latency in microseconds.
    pub latency_mean_us: u64,
    /// Median volume-level request latency in microseconds.
    pub latency_p50_us: u64,
    /// 99th-percentile volume-level request latency in microseconds.
    pub latency_p99_us: u64,
    /// 99.9th-percentile volume-level request latency in microseconds.
    pub latency_p999_us: u64,
    /// Worst volume-level request latency in microseconds.
    pub latency_max_us: u64,

    /// Array-level Write Amplification Factor:
    /// Σ member NAND programs / Σ member host writes. `None` (JSON
    /// `null`) when the run produced zero host writes — a read-only
    /// workload has no meaningful WAF, and `0/0` must not leak out as
    /// `NaN` (which the JSON format cannot even represent).
    pub waf: Option<f64>,
    /// Total NAND block erases across all members.
    pub nand_erases: u64,
    /// Spread of *per-member* total erase counts — the array-level
    /// analogue of per-block wear leveling. A large `std_dev` here means
    /// striping + GC coordination is wearing members unevenly and the
    /// array's lifetime is set by its unluckiest device.
    pub erase_spread: WearReport,
    /// Host requests (sub-requests) that stalled on foreground GC,
    /// summed over members.
    pub fgc_request_stalls: u64,
    /// Blocks reclaimed by background GC, summed over members.
    pub bgc_blocks: u64,

    /// Per-member scheduler accounting, index-aligned with
    /// `member_reports`. Every field is a function of the simulated
    /// timeline only — identical for any `--member-threads` count and
    /// either `--array-sched` mode — so it lives in the deterministic
    /// report; wall-clock artifacts (steal counts, epochs) are in
    /// `SchedTelemetry` instead.
    pub member_sched: Vec<MemberSched>,
    /// The untouched per-member reports.
    pub member_reports: Vec<SimReport>,
    /// End-of-life section; `None` while every member is healthy (and
    /// then absent from the JSON, keeping fault-free output
    /// byte-identical with pre-fault-model builds).
    pub degraded: Option<ArrayDegraded>,
}

/// One member's scheduler accounting: how far its virtual clock trailed
/// the issue times of the requests it served (the *lag* histogram — a
/// member deep in periodic work or FGC lags the horizon), and how often
/// it was the straggler that set a logical request's completion time.
///
/// `straggler_time_us` is the member's **exclusive** contribution to
/// volume latency: for each request it straggled, the gap between its
/// completion and the runner-up's — the part of the tail no other member
/// can hide. `straggler_fgc_requests` counts how many of those straggled
/// steps invoked foreground GC, attributing tail latency to GC rather
/// than plain load.
///
/// Straggler attribution only counts requests that fanned out to **two
/// or more** members (split extents, mirrored writes). A single-member
/// request has no runner-up — counting it would just re-measure that
/// member's load and bury the device that is actually holding
/// multi-member requests back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberSched {
    /// Sub-requests this member executed.
    pub steps: u64,
    /// Mean time-behind-horizon at step issue, in microseconds.
    pub lag_mean_us: u64,
    /// 99th-percentile time-behind-horizon, in microseconds.
    pub lag_p99_us: u64,
    /// Worst time-behind-horizon, in microseconds.
    pub lag_max_us: u64,
    /// Multi-member requests whose completion this member set.
    pub straggler_requests: u64,
    /// Straggled requests whose step invoked foreground GC.
    pub straggler_fgc_requests: u64,
    /// Summed exclusive delay over straggled requests, in microseconds.
    pub straggler_time_us: u64,
}

impl MemberSched {
    /// Serializes one member's scheduler accounting.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("steps", self.steps)
            .field("lag_mean_us", self.lag_mean_us)
            .field("lag_p99_us", self.lag_p99_us)
            .field("lag_max_us", self.lag_max_us)
            .field("straggler_requests", self.straggler_requests)
            .field("straggler_fgc_requests", self.straggler_fgc_requests)
            .field("straggler_time_us", self.straggler_time_us)
            .build()
    }
}

/// Array-level end-of-life summary: how member wear-out surfaced at the
/// volume level. Per-member detail lives in each member report's own
/// `degraded` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayDegraded {
    /// Members that have gone read-only.
    pub degraded_members: u64,
    /// Pages whose primary read was uncorrectable but which a mirror
    /// replica served successfully.
    pub recovered_pages: u64,
    /// Pages unreadable on every replica that holds them — actual data
    /// loss.
    pub lost_pages: u64,
}

impl ArrayDegraded {
    /// Serializes the end-of-life section.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        ObjectBuilder::new()
            .field("degraded_members", self.degraded_members)
            .field("recovered_pages", self.recovered_pages)
            .field("lost_pages", self.lost_pages)
            .build()
    }
}

impl ArrayReport {
    /// Serializes the full report (aggregate section plus one entry per
    /// member) to the repository's JSON format.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let members: Vec<JsonValue> = self.member_reports.iter().map(SimReport::to_json).collect();
        let sched: Vec<JsonValue> = self.member_sched.iter().map(MemberSched::to_json).collect();
        let mut b = ObjectBuilder::new()
            .field("members", self.members as u64)
            .field("chunk_pages", self.chunk_pages)
            .field("redundancy", self.redundancy.as_str())
            .field("gc_mode", self.gc_mode.as_str())
            .field("policy", self.policy.as_str())
            .field("workload", self.workload.as_str())
            .field("duration_secs", self.duration_secs)
            .field("ops", self.ops)
            .field("iops", self.iops)
            .field("split_requests", self.split_requests)
            .field("routed_reads", self.routed_reads)
            .field("latency_mean_us", self.latency_mean_us)
            .field("latency_p50_us", self.latency_p50_us)
            .field("latency_p99_us", self.latency_p99_us)
            .field("latency_p999_us", self.latency_p999_us)
            .field("latency_max_us", self.latency_max_us)
            .field("waf", self.waf)
            .field("nand_erases", self.nand_erases)
            .field("erase_spread", self.erase_spread.to_json())
            .field("fgc_request_stalls", self.fgc_request_stalls)
            .field("bgc_blocks", self.bgc_blocks)
            .field("member_sched", JsonValue::Array(sched))
            .field("member_reports", JsonValue::Array(members));
        if let Some(degraded) = &self.degraded {
            b = b.field("degraded", degraded.to_json());
        }
        b.build()
    }
}
