//! Array construction.

use crate::{ArraySched, ArrayScheduler, GcMode, Redundancy, StripeMap};
use jitgc_core::policy::GcPolicy;
use jitgc_core::system::{SsdSystem, SystemConfig};
use jitgc_workload::{NullWorkload, Workload};

/// Configuration of a multi-SSD array.
///
/// Every member is a complete [`SsdSystem`] built from the same
/// [`SystemConfig`] — the array does not shrink devices to fit the
/// volume; it stripes the volume over full devices. Size the workload's
/// working set to `columns × (per-device working set)` to load each
/// member like the standalone single-device experiments do.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Number of member devices (≥ 1).
    pub members: usize,
    /// Stripe chunk size in pages.
    pub chunk_pages: u64,
    /// Data layout across members.
    pub redundancy: Redundancy,
    /// BGC coordination across members.
    pub gc_mode: GcMode,
    /// Which driver advances the members. Reports are byte-identical
    /// for either mode; `Barrier` is the lockstep debug oracle.
    pub sched: ArraySched,
    /// Worker threads for parallel member stepping (1 = serial; must not
    /// exceed the member count). Reports are byte-identical for any
    /// value.
    pub member_threads: usize,
    /// Per-member system configuration (identical for every member
    /// unless [`build_with`](ArrayConfig::build_with) tweaks it).
    pub system: SystemConfig,
}

impl ArrayConfig {
    /// Checks the geometry and threading knobs, returning a
    /// human-readable error for the CLI to print instead of a panic deep
    /// in the scheduler. [`build`](ArrayConfig::build) asserts this.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending knob when the member
    /// count is zero, the chunk is zero pages, mirroring gets an odd
    /// member count, or the member-thread count is zero or exceeds the
    /// member count.
    pub fn validate(&self) -> Result<(), String> {
        if self.members == 0 {
            return Err("an array needs at least one member".into());
        }
        if self.chunk_pages == 0 {
            return Err("the stripe chunk must be at least one page".into());
        }
        if self.redundancy == Redundancy::Mirror && !self.members.is_multiple_of(2) {
            return Err(format!(
                "mirroring pairs members, so the member count must be even (got {})",
                self.members
            ));
        }
        if self.member_threads == 0 {
            return Err("member stepping needs at least one thread".into());
        }
        if self.member_threads > self.members {
            return Err(format!(
                "{} member threads exceed the {} members; extra workers would never \
                 find work",
                self.member_threads, self.members
            ));
        }
        Ok(())
    }

    /// Builds the array and its scheduler around `workload`.
    ///
    /// `policy` is invoked once per member so each device gets its own
    /// policy instance (policies carry mutable prediction state).
    ///
    /// Each member's [`NullWorkload`] stub reports the workload's name and
    /// write mix plus that member's *share* of the working set (its
    /// column's [`member_extent`](StripeMap::member_extent)), so aging /
    /// prefill fills each member the way the standalone path would. A
    /// single-member array is therefore configured identically to a plain
    /// [`SsdSystem`] running the same workload.
    ///
    /// # Panics
    ///
    /// Panics if [`validate`](ArrayConfig::validate) rejects the config,
    /// the stripe geometry is invalid (see [`StripeMap::new`]) or any
    /// member's share of the working set exceeds the device's logical
    /// space.
    #[must_use]
    pub fn build<F>(&self, policy: F, workload: Box<dyn Workload>) -> ArrayScheduler
    where
        F: FnMut(&SystemConfig) -> Box<dyn GcPolicy>,
    {
        self.build_with(policy, workload, |_, _| {})
    }

    /// [`build`](ArrayConfig::build) with a per-member configuration
    /// hook: `tweak(device, &mut system)` runs once per member before
    /// the device is constructed. This is how experiments model a
    /// heterogeneous rack — one aging, fault-prone straggler among
    /// healthy members, or mixed drive batches with different endurance
    /// — without giving up the shared geometry checks.
    ///
    /// # Panics
    ///
    /// As [`build`](ArrayConfig::build).
    #[must_use]
    pub fn build_with<F, M>(
        &self,
        mut policy: F,
        workload: Box<dyn Workload>,
        mut tweak: M,
    ) -> ArrayScheduler
    where
        F: FnMut(&SystemConfig) -> Box<dyn GcPolicy>,
        M: FnMut(usize, &mut SystemConfig),
    {
        if let Err(message) = self.validate() {
            panic!("invalid array config: {message}");
        }
        let stripe = StripeMap::new(self.members, self.chunk_pages, self.redundancy);
        let volume = workload.working_set_pages();
        let name = workload.name();
        let mix = workload.write_mix();
        let mut members = Vec::with_capacity(self.members);
        for device in 0..self.members {
            let column = match self.redundancy {
                Redundancy::None => device,
                Redundancy::Mirror => device / 2,
            };
            // A column the volume never reaches still needs a non-empty
            // logical space to build a device around.
            let share = stripe.member_extent(column, volume).max(1);
            assert!(
                share <= self.system.ftl.user_pages(),
                "member {device} needs {share} pages but the device exposes {}; \
                 shrink the workload or add members",
                self.system.ftl.user_pages()
            );
            let stub = NullWorkload::new(name, share, mix);
            let mut system = self.system.clone();
            // Give every member its own fault stream: identical seeds
            // would wear all replicas out in lockstep, defeating the
            // mirror (correlated failures are exactly what real arrays
            // avoid by mixing drive batches). Member 0 keeps the
            // configured seed so a 1-member array stays byte-identical to
            // the standalone engine.
            if device > 0 {
                if let Some(fault) = system.ftl.fault().copied() {
                    let mut f = fault;
                    f.seed = fault
                        .seed
                        .wrapping_add((device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    system.ftl = system.ftl.to_builder().fault(f).build();
                }
            }
            tweak(device, &mut system);
            members.push(SsdSystem::new(
                system.clone(),
                policy(&system),
                Box::new(stub),
            ));
        }
        let mut scheduler = ArrayScheduler::new(members, stripe, self.gc_mode, workload);
        scheduler.set_member_threads(self.member_threads);
        scheduler.set_sched(self.sched);
        scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_core::system::SystemConfig;

    fn config(members: usize, redundancy: Redundancy, member_threads: usize) -> ArrayConfig {
        ArrayConfig {
            members,
            chunk_pages: 16,
            redundancy,
            gc_mode: GcMode::Staggered,
            sched: ArraySched::Steal,
            member_threads,
            system: SystemConfig::small_for_tests(),
        }
    }

    #[test]
    fn validate_accepts_rack_scale_configs() {
        assert_eq!(config(1, Redundancy::None, 1).validate(), Ok(()));
        assert_eq!(config(64, Redundancy::Mirror, 8).validate(), Ok(()));
        assert_eq!(config(256, Redundancy::None, 256).validate(), Ok(()));
    }

    #[test]
    fn validate_names_the_offending_knob() {
        let err = |c: ArrayConfig| c.validate().unwrap_err();
        assert!(err(config(0, Redundancy::None, 1)).contains("at least one member"));
        let mut zero_chunk = config(2, Redundancy::None, 1);
        zero_chunk.chunk_pages = 0;
        assert!(err(zero_chunk).contains("at least one page"));
        assert!(err(config(3, Redundancy::Mirror, 1)).contains("even"));
        assert!(err(config(4, Redundancy::None, 0)).contains("at least one thread"));
        assert!(err(config(4, Redundancy::None, 5)).contains("exceed"));
    }
}
