//! Array construction.

use crate::{ArrayScheduler, GcMode, Redundancy, StripeMap};
use jitgc_core::policy::GcPolicy;
use jitgc_core::system::{SsdSystem, SystemConfig};
use jitgc_workload::{NullWorkload, Workload};

/// Configuration of a multi-SSD array.
///
/// Every member is a complete [`SsdSystem`] built from the same
/// [`SystemConfig`] — the array does not shrink devices to fit the
/// volume; it stripes the volume over full devices. Size the workload's
/// working set to `columns × (per-device working set)` to load each
/// member like the standalone single-device experiments do.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Number of member devices (≥ 1).
    pub members: usize,
    /// Stripe chunk size in pages.
    pub chunk_pages: u64,
    /// Data layout across members.
    pub redundancy: Redundancy,
    /// BGC coordination across members.
    pub gc_mode: GcMode,
    /// Worker threads for parallel member stepping (1 = serial; clamped
    /// to the member count). Reports are byte-identical for any value.
    pub member_threads: usize,
    /// Per-member system configuration (identical for every member).
    pub system: SystemConfig,
}

impl ArrayConfig {
    /// Builds the array and its scheduler around `workload`.
    ///
    /// `policy` is invoked once per member so each device gets its own
    /// policy instance (policies carry mutable prediction state).
    ///
    /// Each member's [`NullWorkload`] stub reports the workload's name and
    /// write mix plus that member's *share* of the working set (its
    /// column's [`member_extent`](StripeMap::member_extent)), so aging /
    /// prefill fills each member the way the standalone path would. A
    /// single-member array is therefore configured identically to a plain
    /// [`SsdSystem`] running the same workload.
    ///
    /// # Panics
    ///
    /// Panics if the stripe geometry is invalid (see [`StripeMap::new`])
    /// or if any member's share of the working set exceeds the device's
    /// logical space.
    #[must_use]
    pub fn build<F>(&self, mut policy: F, workload: Box<dyn Workload>) -> ArrayScheduler
    where
        F: FnMut(&SystemConfig) -> Box<dyn GcPolicy>,
    {
        let stripe = StripeMap::new(self.members, self.chunk_pages, self.redundancy);
        let volume = workload.working_set_pages();
        let name = workload.name();
        let mix = workload.write_mix();
        let mut members = Vec::with_capacity(self.members);
        for device in 0..self.members {
            let column = match self.redundancy {
                Redundancy::None => device,
                Redundancy::Mirror => device / 2,
            };
            // A column the volume never reaches still needs a non-empty
            // logical space to build a device around.
            let share = stripe.member_extent(column, volume).max(1);
            assert!(
                share <= self.system.ftl.user_pages(),
                "member {device} needs {share} pages but the device exposes {}; \
                 shrink the workload or add members",
                self.system.ftl.user_pages()
            );
            let stub = NullWorkload::new(name, share, mix);
            let mut system = self.system.clone();
            // Give every member its own fault stream: identical seeds
            // would wear all replicas out in lockstep, defeating the
            // mirror (correlated failures are exactly what real arrays
            // avoid by mixing drive batches). Member 0 keeps the
            // configured seed so a 1-member array stays byte-identical to
            // the standalone engine.
            if device > 0 {
                if let Some(fault) = system.ftl.fault().copied() {
                    let mut f = fault;
                    f.seed = fault
                        .seed
                        .wrapping_add((device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    system.ftl = system.ftl.to_builder().fault(f).build();
                }
            }
            members.push(SsdSystem::new(
                system.clone(),
                policy(&system),
                Box::new(stub),
            ));
        }
        let mut scheduler = ArrayScheduler::new(members, stripe, self.gc_mode, workload);
        scheduler.set_member_threads(self.member_threads);
        scheduler
    }
}
