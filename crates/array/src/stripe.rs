//! Logical-volume-to-member address mapping.

/// How the array lays data over its members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redundancy {
    /// Plain RAID-0: every chunk lives on exactly one member.
    None,
    /// RAID-10: members pair up; each chunk lives on both devices of its
    /// pair at the same member address. Writes fan out to both replicas;
    /// reads pick either — the opening for GC-aware routing.
    Mirror,
}

impl Redundancy {
    /// Short display name (used in reports and CLI parsing).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Redundancy::None => "raid0",
            Redundancy::Mirror => "mirror",
        }
    }
}

/// One member's share of a striped request: a contiguous member-LPN
/// extent on one *column* (data role). Under [`Redundancy::Mirror`] a
/// column is a device pair; otherwise a column is a single device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeExtent {
    /// Data column the extent belongs to.
    pub column: usize,
    /// First member LPN of the extent.
    pub member_lpn: u64,
    /// Extent length in pages.
    pub pages: u32,
}

/// RAID-0 striping of a logical page space over N members (optionally
/// mirrored pairs), in chunks of a configurable page count.
///
/// The map is a bijection between the logical volume and the union of the
/// member address spaces (per data role): chunk `s = lpn / chunk` lands
/// on column `s % columns` at member LPN
/// `(s / columns) * chunk + lpn % chunk`. Because columns rotate
/// round-robin, any *contiguous* logical extent maps to at most one
/// *contiguous* member extent per column — which is what lets
/// [`split`](StripeMap::split) emit one sub-request per touched member.
///
/// # Example
///
/// ```
/// use jitgc_array::{Redundancy, StripeMap};
///
/// let map = StripeMap::new(4, 16, Redundancy::None);
/// let (column, member_lpn) = map.locate(16);
/// assert_eq!((column, member_lpn), (1, 0));
/// assert_eq!(map.global(column, member_lpn), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeMap {
    members: usize,
    chunk_pages: u64,
    redundancy: Redundancy,
}

impl StripeMap {
    /// Creates a stripe map over `members` devices with `chunk_pages`
    /// pages per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `members` or `chunk_pages` is zero, or if
    /// [`Redundancy::Mirror`] is requested with an odd or sub-2 member
    /// count (mirroring pairs devices).
    #[must_use]
    pub fn new(members: usize, chunk_pages: u64, redundancy: Redundancy) -> Self {
        assert!(members > 0, "array needs at least one member");
        assert!(chunk_pages > 0, "chunk must cover at least one page");
        if redundancy == Redundancy::Mirror {
            assert!(
                members >= 2 && members.is_multiple_of(2),
                "mirroring pairs devices: member count {members} must be even"
            );
        }
        StripeMap {
            members,
            chunk_pages,
            redundancy,
        }
    }

    /// Number of physical member devices.
    #[must_use]
    pub fn members(&self) -> usize {
        self.members
    }

    /// Chunk size in pages.
    #[must_use]
    pub fn chunk_pages(&self) -> u64 {
        self.chunk_pages
    }

    /// The redundancy scheme.
    #[must_use]
    pub fn redundancy(&self) -> Redundancy {
        self.redundancy
    }

    /// Number of data columns — the divisor of the volume's capacity.
    /// Equals the member count for RAID-0, half of it for mirrored pairs.
    #[must_use]
    pub fn columns(&self) -> usize {
        match self.redundancy {
            Redundancy::None => self.members,
            Redundancy::Mirror => self.members / 2,
        }
    }

    /// The physical devices storing a column: the primary and, when
    /// mirrored, its replica.
    #[must_use]
    pub fn devices_of(&self, column: usize) -> (usize, Option<usize>) {
        assert!(column < self.columns(), "column {column} out of range");
        match self.redundancy {
            Redundancy::None => (column, None),
            Redundancy::Mirror => (2 * column, Some(2 * column + 1)),
        }
    }

    /// Maps a logical page to `(column, member_lpn)`.
    #[must_use]
    pub fn locate(&self, lpn: u64) -> (usize, u64) {
        let columns = self.columns() as u64;
        let stripe = lpn / self.chunk_pages;
        (
            (stripe % columns) as usize,
            (stripe / columns) * self.chunk_pages + lpn % self.chunk_pages,
        )
    }

    /// The inverse of [`locate`](StripeMap::locate).
    #[must_use]
    pub fn global(&self, column: usize, member_lpn: u64) -> u64 {
        assert!(column < self.columns(), "column {column} out of range");
        let columns = self.columns() as u64;
        ((member_lpn / self.chunk_pages) * columns + column as u64) * self.chunk_pages
            + member_lpn % self.chunk_pages
    }

    /// The member address-space extent (max member LPN + 1) that column
    /// `column` needs to hold a logical volume of `volume_pages` pages.
    /// Zero when the volume is too small to reach the column.
    #[must_use]
    pub fn member_extent(&self, column: usize, volume_pages: u64) -> u64 {
        assert!(column < self.columns(), "column {column} out of range");
        if volume_pages == 0 {
            return 0;
        }
        let columns = self.columns() as u64;
        let column = column as u64;
        let stripes = volume_pages.div_ceil(self.chunk_pages);
        // Largest stripe index below `stripes` assigned to this column.
        let last = stripes - 1;
        if last < column && last % columns != column {
            return 0;
        }
        let s_max = last - (last + columns - column) % columns;
        let tail = volume_pages - s_max * self.chunk_pages;
        (s_max / columns) * self.chunk_pages + tail.min(self.chunk_pages)
    }

    /// Splits the contiguous logical extent `[lpn, lpn + pages)` into one
    /// [`StripeExtent`] per touched column, appended to `out` in order of
    /// first touched logical page. `out` is not cleared — callers reuse it
    /// as scratch.
    pub fn split(&self, lpn: u64, pages: u32, out: &mut Vec<StripeExtent>) {
        let first = out.len();
        let end = lpn + u64::from(pages);
        let mut seg = lpn;
        while seg < end {
            let seg_end = end.min((seg / self.chunk_pages + 1) * self.chunk_pages);
            let (column, member_lpn) = self.locate(seg);
            let len = u32::try_from(seg_end - seg).expect("segment within a chunk");
            // Round-robin rotation makes per-column member extents of a
            // contiguous logical extent contiguous, so a later segment for
            // an already seen column always extends its extent.
            match out[first..].iter_mut().find(|e| e.column == column) {
                Some(extent) => {
                    debug_assert_eq!(
                        extent.member_lpn + u64::from(extent.pages),
                        member_lpn,
                        "per-column extents of a contiguous request are contiguous"
                    );
                    extent.pages += len;
                }
                None => out.push(StripeExtent {
                    column,
                    member_lpn,
                    pages: len,
                }),
            }
            seg = seg_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_global_is_a_bijection() {
        for (members, chunk, redundancy) in [
            (1, 4, Redundancy::None),
            (3, 1, Redundancy::None),
            (4, 16, Redundancy::None),
            (2, 8, Redundancy::Mirror),
            (6, 5, Redundancy::Mirror),
        ] {
            let map = StripeMap::new(members, chunk, Redundancy::None);
            let _ = redundancy; // both schemes share the column arithmetic
            let mut seen = Vec::new();
            for lpn in 0..10_000 {
                let (c, m) = map.locate(lpn);
                assert!(c < map.columns());
                assert_eq!(map.global(c, m), lpn, "{members}x{chunk}: lpn {lpn}");
                seen.push((c, m));
            }
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 10_000, "{members}x{chunk}: placements collide");
        }
    }

    #[test]
    fn member_extent_matches_brute_force() {
        for (members, chunk) in [(1, 4), (2, 3), (4, 16), (5, 7)] {
            let map = StripeMap::new(members, chunk, Redundancy::None);
            for volume in [0, 1, chunk - 1, chunk, 3 * chunk + 1, 1_000] {
                let mut max_plus_one = vec![0u64; members];
                for lpn in 0..volume {
                    let (c, m) = map.locate(lpn);
                    max_plus_one[c] = max_plus_one[c].max(m + 1);
                }
                for (c, &expected) in max_plus_one.iter().enumerate() {
                    assert_eq!(
                        map.member_extent(c, volume),
                        expected,
                        "{members}x{chunk}, volume {volume}, column {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_agrees_with_per_page_mapping() {
        let map = StripeMap::new(3, 4, Redundancy::None);
        let mut out = Vec::new();
        for lpn in 0..40 {
            for pages in 1..30u32 {
                out.clear();
                map.split(lpn, pages, &mut out);
                // Reconstruct the page set from the extents.
                let mut covered = Vec::new();
                for e in &out {
                    for m in e.member_lpn..e.member_lpn + u64::from(e.pages) {
                        covered.push(map.global(e.column, m));
                    }
                }
                covered.sort_unstable();
                let expected: Vec<u64> = (lpn..lpn + u64::from(pages)).collect();
                assert_eq!(covered, expected, "lpn {lpn} pages {pages}");
                // One extent per touched column, never more.
                let mut columns: Vec<usize> = out.iter().map(|e| e.column).collect();
                columns.sort_unstable();
                columns.dedup();
                assert_eq!(columns.len(), out.len(), "duplicate column extents");
            }
        }
    }

    #[test]
    fn single_member_split_is_identity() {
        let map = StripeMap::new(1, 16, Redundancy::None);
        let mut out = Vec::new();
        map.split(37, 1_000, &mut out);
        assert_eq!(
            out,
            vec![StripeExtent {
                column: 0,
                member_lpn: 37,
                pages: 1_000
            }]
        );
    }

    #[test]
    fn mirror_pairs_devices() {
        let map = StripeMap::new(4, 8, Redundancy::Mirror);
        assert_eq!(map.columns(), 2);
        assert_eq!(map.devices_of(0), (0, Some(1)));
        assert_eq!(map.devices_of(1), (2, Some(3)));
        let plain = StripeMap::new(4, 8, Redundancy::None);
        assert_eq!(plain.devices_of(3), (3, None));
    }

    #[test]
    fn rack_scale_mapping_stays_a_bijection() {
        // The chunk math must not lose precision at rack member counts:
        // the stripe index arithmetic multiplies the column count into
        // member LPNs, which at 256 members and large volumes is where a
        // narrow intermediate would overflow first.
        for (members, chunk, redundancy) in [
            (64, 16, Redundancy::None),
            (64, 16, Redundancy::Mirror),
            (256, 32, Redundancy::None),
            (256, 8, Redundancy::Mirror),
        ] {
            let map = StripeMap::new(members, chunk, redundancy);
            // A volume far past u32 page indices, stepped sparsely.
            for lpn in (0..1u64 << 40).step_by((1 << 29) + 12_345) {
                let (c, m) = map.locate(lpn);
                assert!(c < map.columns());
                assert_eq!(map.global(c, m), lpn, "{members}x{chunk}: lpn {lpn}");
            }
            // Every device is reachable once the volume spans a full
            // rotation of the columns.
            let rotation = map.columns() as u64 * chunk;
            let mut touched = vec![false; map.columns()];
            for lpn in (0..rotation).step_by(chunk as usize) {
                touched[map.locate(lpn).0] = true;
            }
            assert!(touched.iter().all(|&t| t), "{members}x{chunk}: idle column");
        }
    }

    #[test]
    fn rack_scale_member_extent_matches_brute_force() {
        let map = StripeMap::new(64, 16, Redundancy::None);
        let volume = 64 * 16 * 5 + 7;
        let mut max_plus_one = vec![0u64; 64];
        for lpn in 0..volume {
            let (c, m) = map.locate(lpn);
            max_plus_one[c] = max_plus_one[c].max(m + 1);
        }
        for (c, &expected) in max_plus_one.iter().enumerate() {
            assert_eq!(map.member_extent(c, volume), expected, "column {c}");
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn mirror_rejects_odd_member_count() {
        let _ = StripeMap::new(3, 8, Redundancy::Mirror);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_members_panics() {
        let _ = StripeMap::new(0, 8, Redundancy::None);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_chunk_panics() {
        let _ = StripeMap::new(2, 0, Redundancy::None);
    }
}
