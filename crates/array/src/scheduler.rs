//! The array's closed-loop request engine.

use crate::{
    ArrayDegraded, ArrayManager, ArrayReport, GcMode, Redundancy, StripeExtent, StripeMap,
};
use jitgc_core::system::{GcSignals, SsdSystem};
use jitgc_nand::{Lpn, WearReport};
use jitgc_sim::stats::LatencyRecorder;
use jitgc_sim::SimTime;
use jitgc_workload::{IoKind, IoRequest, Workload};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// One member plus its per-quantum mailboxes, owned by a worker thread
/// during the parallel phase and by the driver (via the lock, always
/// uncontended at that point) during the serial phase.
struct Lane {
    system: SsdSystem,
    /// Sub-requests for this member in global request order.
    queue: Vec<(IoRequest, SimTime)>,
    /// Per-sub results in queue order: completion time and the number of
    /// uncorrectable pages the step left in `failed_read_lpns`.
    results: Vec<(SimTime, u64)>,
}

/// Worker-round opcodes (stored in an `AtomicU8` between barriers).
const ROUND_STEPS: u8 = 0;
const ROUND_PREFILL: u8 = 1;
const ROUND_SHUTDOWN: u8 = 2;

/// Drives N member [`SsdSystem`]s in virtual-time lockstep behind one
/// logical volume.
///
/// The scheduler owns the closed loop the single-device engine runs
/// internally — `queue_depth` application threads dealing requests
/// round-robin, each issuing its next request a think-time after its own
/// previous completion — and replaces the "execute on the device" step
/// with *split, route, fan out*: the request's extent is split into one
/// sub-request per touched member via the [`StripeMap`], mirrored reads
/// are steered by the [`ArrayManager`], and the logical request completes
/// when the slowest sub-request does.
///
/// With one member and one chunk-aligned column the split is the
/// identity, the routing is trivial and the member sees the exact request
/// sequence [`SsdSystem::run`] would have produced — so a 1-member array
/// reports byte-identical per-device results to the standalone path.
///
/// # Parallel member stepping
///
/// With [`set_member_threads`](ArrayScheduler::set_member_threads) above
/// 1, independent members advance concurrently on a persistent worker
/// pool. Each scheduling quantum — up to `queue_depth` consecutive
/// requests, whose issue times are all computable up front because the
/// closed loop deals them to distinct threads — is split into a parallel
/// step phase (workers drain their members' sub-request queues) and a
/// serial merge phase (the driver folds completions back into the
/// schedule in request order). Cross-member decisions — mirrored-read
/// routing through the [`ArrayManager`] — are serial points that truncate
/// the quantum. Every member sees the exact call sequence the serial
/// scheduler would have issued, so reports are byte-identical for any
/// thread count.
pub struct ArrayScheduler {
    members: Vec<SsdSystem>,
    stripe: StripeMap,
    manager: ArrayManager,
    workload: Box<dyn Workload>,
    /// Worker threads for the parallel step phase (1 = serial path).
    member_threads: usize,

    // Closed-loop schedule state, mirroring the single-device engine.
    thread_completion: Vec<SimTime>,
    next_thread: usize,
    schedule: SimTime,

    // Volume-level measurements.
    latencies: LatencyRecorder,
    ops: u64,
    split_requests: u64,
    /// Pages repaired by re-reading the mirror after an uncorrectable
    /// primary read.
    recovered_pages: u64,
    /// Pages unreadable on every replica that holds them.
    lost_pages: u64,

    // Scratch reused across requests so the steady state allocates nothing.
    sub_scratch: Vec<StripeExtent>,
    retry_scratch: Vec<Lpn>,
}

impl ArrayScheduler {
    /// Builds a scheduler over already-constructed members. Use
    /// [`ArrayConfig::build`](crate::ArrayConfig::build) instead of
    /// calling this directly.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or its length disagrees with the
    /// stripe map.
    #[must_use]
    pub fn new(
        members: Vec<SsdSystem>,
        stripe: StripeMap,
        gc_mode: GcMode,
        workload: Box<dyn Workload>,
    ) -> Self {
        assert!(!members.is_empty(), "array needs at least one member");
        assert_eq!(
            members.len(),
            stripe.members(),
            "member count disagrees with the stripe map"
        );
        let queue_depth = members[0].config().queue_depth.max(1) as usize;
        ArrayScheduler {
            members,
            stripe,
            manager: ArrayManager::new(gc_mode),
            workload,
            member_threads: 1,
            thread_completion: vec![SimTime::ZERO; queue_depth],
            next_thread: 0,
            schedule: SimTime::ZERO,
            latencies: LatencyRecorder::new(),
            ops: 0,
            split_requests: 0,
            recovered_pages: 0,
            lost_pages: 0,
            sub_scratch: Vec::new(),
            retry_scratch: Vec::new(),
        }
    }

    /// Turns on wall-clock phase profiling on every member (see
    /// [`SsdSystem::enable_phase_profiling`]).
    pub fn enable_phase_profiling(&mut self) {
        for m in &mut self.members {
            m.enable_phase_profiling();
        }
    }

    /// The summed per-phase wall-clock breakdown over all members (all
    /// zero unless [`enable_phase_profiling`] was called before
    /// [`run`](ArrayScheduler::run)).
    ///
    /// [`enable_phase_profiling`]: ArrayScheduler::enable_phase_profiling
    #[must_use]
    pub fn phase_profile(&self) -> jitgc_core::system::PhaseProfile {
        let mut total = jitgc_core::system::PhaseProfile::default();
        for m in &self.members {
            let p = m.phase_profile();
            total.request_execution += p.request_execution;
            total.flush += p.flush;
            total.predictor += p.predictor;
            total.bgc += p.bgc;
            total.reporting += p.reporting;
            total.gc_copy += p.gc_copy;
        }
        total
    }

    /// Sets how many worker threads advance members during the parallel
    /// step phase. Clamped to the member count at run time; 1 (the
    /// default) keeps everything on the calling thread. Any value
    /// produces byte-identical reports — the knob trades wall-clock time
    /// only.
    pub fn set_member_threads(&mut self, threads: usize) {
        self.member_threads = threads.max(1);
    }

    /// The configured worker-thread count for parallel member stepping.
    #[must_use]
    pub fn member_threads(&self) -> usize {
        self.member_threads
    }

    /// Selects every member's GC migration path: bulk `copy_pages`
    /// (default) or the per-page loop. Observationally identical — an
    /// A/B measurement switch (see `Ftl::set_bulk_gc`).
    pub fn set_bulk_gc(&mut self, enabled: bool) {
        for member in &mut self.members {
            member.set_bulk_gc(enabled);
        }
    }

    /// Per-member phase profiles, index-aligned with
    /// [`members`](ArrayScheduler::members) (all zero unless
    /// [`enable_phase_profiling`](ArrayScheduler::enable_phase_profiling)
    /// was called before the run).
    #[must_use]
    pub fn member_profiles(&self) -> Vec<jitgc_core::system::PhaseProfile> {
        self.members.iter().map(SsdSystem::phase_profile).collect()
    }

    /// Read-only access to the members (for tests and signal polling).
    #[must_use]
    pub fn members(&self) -> &[SsdSystem] {
        &self.members
    }

    /// Current JIT-GC telemetry of every member — what a host-side array
    /// manager polls to decide routing and staggering.
    #[must_use]
    pub fn member_signals(&self) -> Vec<GcSignals> {
        self.members.iter().map(SsdSystem::gc_signals).collect()
    }

    /// Runs the workload to exhaustion and reports.
    ///
    /// # Panics
    ///
    /// Panics if any member's FTL signals an unrecoverable condition,
    /// which indicates a misconfigured experiment.
    pub fn run(&mut self) -> ArrayReport {
        let threads = self.member_threads.min(self.members.len()).max(1);
        if threads <= 1 {
            self.run_serial()
        } else {
            self.run_parallel(threads)
        }
    }

    /// Single-threaded reference loop: one request at a time, exactly the
    /// closed-loop schedule of the single-device engine.
    fn run_serial(&mut self) -> ArrayReport {
        self.manager.apply_stagger(&mut self.members);
        if self.members[0].config().prefill {
            for m in &mut self.members {
                m.prefill();
            }
        }
        while let Some(req) = self.workload.next_request() {
            let thread = self.next_thread;
            self.next_thread = (self.next_thread + 1) % self.thread_completion.len();
            let issue = self.thread_completion[thread] + req.gap;
            self.schedule = self.schedule.max(issue);
            let completion = self.dispatch(req, issue);
            self.thread_completion[thread] = completion;
            self.latencies.record(completion.saturating_since(issue));
            self.ops += 1;
        }
        let end = self.end_time();
        self.build_report(end)
    }

    /// Parallel driver: a persistent pool of `threads` scoped workers
    /// advances members between barriers while this thread owns all
    /// scheduling, routing and merging.
    ///
    /// Protocol per quantum: (serial, workers parked) merge the previous
    /// round, handle any deferred mirrored read, pull up to `queue_depth`
    /// requests and deal their sub-requests into member queues with issue
    /// times computed up front → (parallel) workers step their members'
    /// queues → repeat. Mirrored reads need a routing decision over live
    /// member state, so they flush the quantum and run in the serial
    /// phase; everything else — writes, trims, unmirrored reads — only
    /// touches its own members and parallelizes freely.
    fn run_parallel(&mut self, threads: usize) -> ArrayReport {
        self.manager.apply_stagger(&mut self.members);
        let do_prefill = self.members[0].config().prefill;
        let queue_depth = self.thread_completion.len();
        let lanes: Vec<Mutex<Lane>> = std::mem::take(&mut self.members)
            .into_iter()
            .map(|system| {
                Mutex::new(Lane {
                    system,
                    queue: Vec::new(),
                    results: Vec::new(),
                })
            })
            .collect();
        let round = AtomicU8::new(ROUND_STEPS);
        let start = Barrier::new(threads + 1);
        let finish = Barrier::new(threads + 1);

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (lanes, round) = (&lanes, &round);
                let (start, finish) = (&start, &finish);
                scope.spawn(move || loop {
                    start.wait();
                    let op = round.load(Ordering::Acquire);
                    if op == ROUND_SHUTDOWN {
                        finish.wait();
                        break;
                    }
                    for lane in lanes.iter().skip(worker).step_by(threads) {
                        let mut lane = lane.lock().expect("a member panicked");
                        let lane = &mut *lane;
                        if op == ROUND_PREFILL {
                            lane.system.prefill();
                            continue;
                        }
                        for i in 0..lane.queue.len() {
                            let (sub, issue) = lane.queue[i];
                            let completion = lane.system.step(sub, issue);
                            let failed = lane.system.failed_read_lpns().len() as u64;
                            lane.results.push((completion, failed));
                        }
                        lane.queue.clear();
                    }
                    finish.wait();
                });
            }

            let run_round = |op: u8| {
                round.store(op, Ordering::Release);
                start.wait();
                finish.wait();
            };
            if do_prefill {
                run_round(ROUND_PREFILL);
            }

            // Quantum state, reused across rounds.
            let mut quantum: Vec<(usize, SimTime)> = Vec::with_capacity(queue_depth);
            let mut subs: Vec<(usize, usize, bool)> = Vec::new();
            let mut cursors = vec![0usize; lanes.len()];
            let mut completions: Vec<SimTime> = Vec::with_capacity(queue_depth);
            let mut pending: Option<IoRequest> = None;
            let mut exhausted = false;
            loop {
                {
                    // Serial phase. Workers are parked at the start
                    // barrier, so every lock below is uncontended; holding
                    // all guards gives the same indexed member access the
                    // serial scheduler has.
                    let mut guards: Vec<MutexGuard<'_, Lane>> = lanes
                        .iter()
                        .map(|l| l.lock().expect("a member panicked"))
                        .collect();
                    if !quantum.is_empty() {
                        self.merge_quantum(
                            &mut guards,
                            &quantum,
                            &subs,
                            &mut cursors,
                            &mut completions,
                        );
                        quantum.clear();
                        subs.clear();
                    }
                    if let Some(req) = pending.take() {
                        self.dispatch_mirrored_read(req, &mut guards);
                    }
                    while !exhausted && quantum.len() < queue_depth {
                        let Some(req) = self.workload.next_request() else {
                            exhausted = true;
                            break;
                        };
                        if req.kind == IoKind::Read
                            && self.stripe.redundancy() == Redundancy::Mirror
                        {
                            if quantum.is_empty() {
                                self.dispatch_mirrored_read(req, &mut guards);
                            } else {
                                // Routing must see the quantum's effects:
                                // flush it, handle the read next round.
                                pending = Some(req);
                                break;
                            }
                        } else {
                            self.enqueue_sub_requests(req, &mut guards, &mut quantum, &mut subs);
                        }
                    }
                }
                if quantum.is_empty() {
                    // Nothing left to step in parallel: pending is only
                    // ever set alongside a non-empty quantum, so this
                    // means the workload is exhausted and fully merged.
                    break;
                }
                run_round(ROUND_STEPS);
            }
            run_round(ROUND_SHUTDOWN);
        });

        self.members = lanes
            .into_iter()
            .map(|l| l.into_inner().expect("a member panicked").system)
            .collect();
        let end = self.end_time();
        self.build_report(end)
    }

    /// Assigns `req` its closed-loop thread and issue time, then deals
    /// one sub-request per touched member (both replicas for mirrored
    /// writes/trims) into the member queues for the next parallel round.
    fn enqueue_sub_requests(
        &mut self,
        req: IoRequest,
        guards: &mut [MutexGuard<'_, Lane>],
        // (thread, issue) per logical request, in request order.
        quantum: &mut Vec<(usize, SimTime)>,
        // (request index, member, counts-lost-pages) per sub-request.
        subs: &mut Vec<(usize, usize, bool)>,
    ) {
        let thread = self.next_thread;
        self.next_thread = (self.next_thread + 1) % self.thread_completion.len();
        let issue = self.thread_completion[thread] + req.gap;
        self.schedule = self.schedule.max(issue);
        let req_idx = quantum.len();
        quantum.push((thread, issue));
        self.sub_scratch.clear();
        self.stripe
            .split(req.lpn.0, req.pages, &mut self.sub_scratch);
        if self.sub_scratch.len() > 1 {
            self.split_requests += 1;
        }
        for i in 0..self.sub_scratch.len() {
            let extent = self.sub_scratch[i];
            let (primary, replica) = self.stripe.devices_of(extent.column);
            let sub = IoRequest {
                gap: req.gap,
                kind: req.kind,
                lpn: Lpn(extent.member_lpn),
                pages: extent.pages,
            };
            guards[primary].queue.push((sub, issue));
            // An unmirrored read's uncorrectable pages are lost (counted
            // at merge); mirrored reads never reach this path.
            subs.push((
                req_idx,
                primary,
                req.kind == IoKind::Read && replica.is_none(),
            ));
            if let Some(replica) = replica {
                guards[replica].queue.push((sub, issue));
                subs.push((req_idx, replica, false));
            }
        }
    }

    /// Folds a finished parallel round back into the closed-loop schedule
    /// in request order: logical completion = slowest sub-request, then
    /// thread completion / latency / op accounting exactly as the serial
    /// loop performs per request.
    fn merge_quantum(
        &mut self,
        guards: &mut [MutexGuard<'_, Lane>],
        quantum: &[(usize, SimTime)],
        subs: &[(usize, usize, bool)],
        cursors: &mut [usize],
        completions: &mut Vec<SimTime>,
    ) {
        cursors.fill(0);
        completions.clear();
        completions.extend(quantum.iter().map(|&(_, issue)| issue));
        for &(req_idx, member, counts_lost) in subs {
            // Each lane's results are in its queue order, which is the
            // order its subs were dealt — a per-member cursor aligns them.
            let (done, failed) = guards[member].results[cursors[member]];
            cursors[member] += 1;
            completions[req_idx] = completions[req_idx].max(done);
            if counts_lost {
                self.lost_pages += failed;
            }
        }
        for lane in guards.iter_mut() {
            lane.results.clear();
        }
        for (&(thread, issue), &completion) in quantum.iter().zip(completions.iter()) {
            self.thread_completion[thread] = completion;
            self.latencies.record(completion.saturating_since(issue));
            self.ops += 1;
        }
    }

    /// Serial-phase handler for a mirrored read: the replica choice reads
    /// both members' live GC signals, so it cannot overlap other work.
    /// Mirrors the `(IoKind::Read, Some(replica))` arm of
    /// [`dispatch`](Self::dispatch) exactly, over locked lanes.
    fn dispatch_mirrored_read(&mut self, req: IoRequest, guards: &mut [MutexGuard<'_, Lane>]) {
        let thread = self.next_thread;
        self.next_thread = (self.next_thread + 1) % self.thread_completion.len();
        let issue = self.thread_completion[thread] + req.gap;
        self.schedule = self.schedule.max(issue);
        self.sub_scratch.clear();
        self.stripe
            .split(req.lpn.0, req.pages, &mut self.sub_scratch);
        if self.sub_scratch.len() > 1 {
            self.split_requests += 1;
        }
        let mut completion = issue;
        for i in 0..self.sub_scratch.len() {
            let extent = self.sub_scratch[i];
            let (primary, replica) = self.stripe.devices_of(extent.column);
            let replica = replica.expect("mirrored read dispatched without a replica");
            let sub = IoRequest {
                gap: req.gap,
                kind: req.kind,
                lpn: Lpn(extent.member_lpn),
                pages: extent.pages,
            };
            guards[primary].system.advance_to(issue);
            guards[replica].system.advance_to(issue);
            let device = self.manager.choose_between(
                primary,
                &guards[primary].system,
                replica,
                &guards[replica].system,
                issue,
            );
            let mut done = guards[device].system.step(sub, issue);
            if !guards[device].system.failed_read_lpns().is_empty() {
                self.retry_scratch.clear();
                self.retry_scratch
                    .extend_from_slice(guards[device].system.failed_read_lpns());
                let other = if device == primary { replica } else { primary };
                let (repaired_at, still_failed) = guards[other]
                    .system
                    .recovery_read(&self.retry_scratch, issue);
                done = done.max(repaired_at);
                self.recovered_pages += self.retry_scratch.len() as u64 - still_failed;
                self.lost_pages += still_failed;
            }
            completion = completion.max(done);
        }
        self.thread_completion[thread] = completion;
        self.latencies.record(completion.saturating_since(issue));
        self.ops += 1;
    }

    /// The run's end time: the last thread completion or scheduled issue.
    fn end_time(&self) -> SimTime {
        self.thread_completion
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.schedule)
    }

    /// Splits one logical request, fans the sub-requests out to their
    /// members at `issue`, and returns the logical completion time (the
    /// slowest sub-request's completion).
    fn dispatch(&mut self, req: IoRequest, issue: SimTime) -> SimTime {
        self.sub_scratch.clear();
        self.stripe
            .split(req.lpn.0, req.pages, &mut self.sub_scratch);
        if self.sub_scratch.len() > 1 {
            self.split_requests += 1;
        }
        let mut completion = issue;
        for i in 0..self.sub_scratch.len() {
            let extent = self.sub_scratch[i];
            let (primary, replica) = self.stripe.devices_of(extent.column);
            let sub = IoRequest {
                gap: req.gap,
                kind: req.kind,
                lpn: Lpn(extent.member_lpn),
                pages: extent.pages,
            };
            match (req.kind, replica) {
                (IoKind::Read, Some(replica)) => {
                    // A mirrored read has a choice — take the replica
                    // that is idle (not mid-GC or mid-transfer) or, on a
                    // tie, the one further from its FGC threshold. Bring
                    // both candidates' clocks up to the issue time first:
                    // members process periodic work lazily, so an
                    // un-advanced replica would report a stale (idle)
                    // `busy_until` and attract exactly the reads its
                    // overdue flush is about to stall.
                    self.members[primary].advance_to(issue);
                    self.members[replica].advance_to(issue);
                    let device =
                        self.manager
                            .choose_replica(primary, replica, &self.members, issue);
                    let mut done = self.members[device].step(sub, issue);
                    if !self.members[device].failed_read_lpns().is_empty() {
                        // Uncorrectable pages on the chosen replica: repair
                        // by re-reading the surviving copy. Only pages that
                        // fail on *both* replicas are lost.
                        self.retry_scratch.clear();
                        self.retry_scratch
                            .extend_from_slice(self.members[device].failed_read_lpns());
                        let other = if device == primary { replica } else { primary };
                        let (repaired_at, still_failed) =
                            self.members[other].recovery_read(&self.retry_scratch, issue);
                        done = done.max(repaired_at);
                        self.recovered_pages += self.retry_scratch.len() as u64 - still_failed;
                        self.lost_pages += still_failed;
                    }
                    completion = completion.max(done);
                }
                (IoKind::Read, None) => {
                    let done = self.members[primary].step(sub, issue);
                    // No redundancy: every uncorrectable page is lost.
                    self.lost_pages += self.members[primary].failed_read_lpns().len() as u64;
                    completion = completion.max(done);
                }
                (_, Some(replica)) => {
                    // Writes and trims must keep the replicas coherent.
                    completion = completion.max(self.members[primary].step(sub, issue));
                    completion = completion.max(self.members[replica].step(sub, issue));
                }
                (_, None) => {
                    completion = completion.max(self.members[primary].step(sub, issue));
                }
            }
        }
        completion
    }

    fn build_report(&mut self, end: SimTime) -> ArrayReport {
        let member_reports: Vec<_> = self.members.iter_mut().map(|m| m.finalize(end)).collect();
        let secs = end.as_secs_f64().max(f64::MIN_POSITIVE);
        let lat = |q: f64| self.latencies.percentile(q).map_or(0, |d| d.as_micros());
        let host_pages: u64 = member_reports.iter().map(|r| r.host_pages_written).sum();
        let nand_pages: u64 = member_reports.iter().map(|r| r.nand_pages_programmed).sum();
        ArrayReport {
            members: self.members.len(),
            chunk_pages: self.stripe.chunk_pages(),
            redundancy: self.stripe.redundancy().name().to_owned(),
            gc_mode: self.manager.mode().name().to_owned(),
            policy: member_reports[0].policy.clone(),
            workload: self.workload.name().to_owned(),
            duration_secs: secs,
            ops: self.ops,
            iops: self.ops as f64 / secs,
            split_requests: self.split_requests,
            routed_reads: self.manager.routed_reads(),
            latency_mean_us: self.latencies.mean().map_or(0, |d| d.as_micros()),
            latency_p50_us: lat(0.50),
            latency_p99_us: lat(0.99),
            latency_p999_us: lat(0.999),
            latency_max_us: self.latencies.max().map_or(0, |d| d.as_micros()),
            waf: (host_pages > 0).then(|| nand_pages as f64 / host_pages as f64),
            nand_erases: member_reports.iter().map(|r| r.nand_erases).sum(),
            erase_spread: WearReport::from_counts(member_reports.iter().map(|r| r.nand_erases)),
            fgc_request_stalls: member_reports.iter().map(|r| r.fgc_request_stalls).sum(),
            bgc_blocks: member_reports.iter().map(|r| r.bgc_blocks).sum(),
            degraded: {
                let any_member_degraded = member_reports.iter().any(|r| r.degraded.is_some());
                (any_member_degraded || self.recovered_pages > 0 || self.lost_pages > 0).then(
                    || ArrayDegraded {
                        degraded_members: member_reports
                            .iter()
                            .filter(|r| r.degraded.as_ref().is_some_and(|d| d.read_only))
                            .count() as u64,
                        recovered_pages: self.recovered_pages,
                        lost_pages: self.lost_pages,
                    },
                )
            },
            member_reports,
        }
    }
}

impl std::fmt::Debug for ArrayScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayScheduler")
            .field("members", &self.members.len())
            .field("stripe", &self.stripe)
            .field("gc_mode", &self.manager.mode())
            .field("ops", &self.ops)
            .finish_non_exhaustive()
    }
}
