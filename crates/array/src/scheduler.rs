//! The array's closed-loop request engine.

use crate::{
    ArrayDegraded, ArrayManager, ArrayReport, GcMode, MemberSched, Redundancy, StripeExtent,
    StripeMap,
};
use jitgc_core::system::{GcSignals, SsdSystem};
use jitgc_nand::{Lpn, WearReport};
use jitgc_sim::stats::LatencyRecorder;
use jitgc_sim::SimTime;
use jitgc_workload::{IoKind, IoRequest, Workload};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// Which engine advances the members during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArraySched {
    /// The PR 5 lockstep driver: every worker sweeps a static member
    /// partition between two global barriers per quantum, visiting all
    /// of its members whether or not the quantum touched them. Kept as
    /// the debug oracle (`--array-sched barrier`).
    Barrier,
    /// Work-stealing (the default): only the members a quantum actually
    /// touched become work items, ordered laggiest-first and dealt into
    /// per-worker deque shards; a worker that drains its own shard
    /// steals from its neighbours'. Serial phases lock only the touched
    /// lanes, so per-quantum driver cost is O(touched), not O(members) —
    /// the difference between 4 and 256 members.
    Steal,
}

impl ArraySched {
    /// Short display name (used in reports and CLI parsing).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ArraySched::Barrier => "barrier",
            ArraySched::Steal => "steal",
        }
    }
}

/// What one member step produced: everything the serial merge phase
/// needs to fold the sub-request back into the logical schedule.
#[derive(Debug, Clone, Copy)]
struct StepResult {
    /// Completion time of the sub-request.
    done: SimTime,
    /// Uncorrectable pages the step left in `failed_read_lpns`.
    failed_reads: u64,
    /// Whether the step (including the periodic work it pulled in)
    /// invoked foreground GC — the straggler attribution signal.
    fgc: bool,
}

/// One member plus its per-quantum mailboxes, owned by a worker thread
/// during the parallel phase and by the driver (via the lock, always
/// uncontended at that point) during the serial phase.
struct Lane {
    system: SsdSystem,
    /// Sub-requests for this member in global request order.
    queue: Vec<(IoRequest, SimTime)>,
    /// Per-sub results in queue order.
    results: Vec<StepResult>,
    /// Time-behind-horizon sample per step (merged into the scheduler's
    /// per-member recorder after the run).
    lag: LatencyRecorder,
    /// Times this lane was executed by a worker other than the one whose
    /// shard held it. Wall-clock telemetry only — never in the report.
    steals: u64,
}

impl Lane {
    fn new(system: SsdSystem) -> Self {
        Lane {
            system,
            queue: Vec::new(),
            results: Vec::new(),
            lag: LatencyRecorder::new(),
            steals: 0,
        }
    }

    /// Steps every queued sub-request in order, recording the same
    /// telemetry the serial scheduler records: how far the member's
    /// clock trailed the issue time, and whether the step hit FGC.
    fn run_queue(&mut self) {
        for i in 0..self.queue.len() {
            let (sub, issue) = self.queue[i];
            self.lag
                .record(issue.saturating_since(self.system.virtual_clock()));
            let fgc_before = self.system.fgc_invocations();
            let done = self.system.step(sub, issue);
            self.results.push(StepResult {
                done,
                failed_reads: self.system.failed_read_lpns().len() as u64,
                fgc: self.system.fgc_invocations() > fgc_before,
            });
        }
        self.queue.clear();
    }
}

/// Splits a slice into two distinct mutable elements.
fn pair_mut<T>(xs: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "a mirrored pair needs two distinct members");
    if a < b {
        let (left, right) = xs.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = xs.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

/// Uniform indexed access to the member lanes for the serial phases of
/// the parallel drivers. The barrier driver pre-locks every lane; the
/// work-stealing driver locks lazily, so a quantum that touches 10 of
/// 256 members pays for 10 locks.
trait LaneTable {
    fn lane(&mut self, member: usize) -> &mut Lane;
    /// Two distinct lanes at once (mirrored-read routing).
    fn pair(&mut self, a: usize, b: usize) -> (&mut Lane, &mut Lane);
}

impl LaneTable for [Lane] {
    fn lane(&mut self, member: usize) -> &mut Lane {
        &mut self[member]
    }

    fn pair(&mut self, a: usize, b: usize) -> (&mut Lane, &mut Lane) {
        pair_mut(self, a, b)
    }
}

impl LaneTable for [MutexGuard<'_, Lane>] {
    fn lane(&mut self, member: usize) -> &mut Lane {
        &mut self[member]
    }

    fn pair(&mut self, a: usize, b: usize) -> (&mut Lane, &mut Lane) {
        let (x, y) = pair_mut(self, a, b);
        (&mut *x, &mut *y)
    }
}

/// Lock-on-demand lane access for the work-stealing driver's serial
/// phases. Holds the guards it acquired until [`release`](Self::release);
/// the linear scan is over the touched set (≤ a few × queue depth), not
/// the member count.
struct LazyLanes<'l> {
    all: &'l [Mutex<Lane>],
    held: Vec<(usize, MutexGuard<'l, Lane>)>,
}

impl<'l> LazyLanes<'l> {
    fn new(all: &'l [Mutex<Lane>]) -> Self {
        LazyLanes {
            all,
            held: Vec::new(),
        }
    }

    /// Drops every held guard (call before handing the lanes to workers).
    fn release(&mut self) {
        self.held.clear();
    }

    fn slot(&mut self, member: usize) -> usize {
        if let Some(pos) = self.held.iter().position(|(m, _)| *m == member) {
            return pos;
        }
        self.held
            .push((member, self.all[member].lock().expect("a member panicked")));
        self.held.len() - 1
    }
}

impl LaneTable for LazyLanes<'_> {
    fn lane(&mut self, member: usize) -> &mut Lane {
        let pos = self.slot(member);
        &mut self.held[pos].1
    }

    fn pair(&mut self, a: usize, b: usize) -> (&mut Lane, &mut Lane) {
        let pa = self.slot(a);
        let pb = self.slot(b);
        let (x, y) = pair_mut(&mut self.held, pa, pb);
        (&mut x.1, &mut y.1)
    }
}

/// The sharded work queue the stealing workers drain each round.
///
/// The driver publishes the quantum's touched members laggiest-first;
/// index `i` of the agenda belongs to shard `i % shards`, so the
/// laggiest members spread round-robin over the workers. A worker pops
/// its own shard first and probes its neighbours' shards (a steal) once
/// its own runs dry. Claims go through one `fetch_add` per shard cursor,
/// so every agenda slot is executed exactly once; which worker gets it
/// only moves wall-clock time, never simulated state.
struct StealQueue {
    agenda: Vec<AtomicUsize>,
    len: AtomicUsize,
    cursors: Vec<AtomicUsize>,
}

impl StealQueue {
    fn new(members: usize, shards: usize) -> Self {
        StealQueue {
            agenda: (0..members).map(AtomicUsize::new).collect(),
            len: AtomicUsize::new(0),
            cursors: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Publishes the next round's agenda. Only called while the workers
    /// are parked at the start barrier, which orders these plain stores
    /// before every worker's loads.
    fn publish(&self, order: &[usize]) {
        for (slot, &member) in self.agenda.iter().zip(order) {
            slot.store(member, Ordering::Relaxed);
        }
        self.len.store(order.len(), Ordering::Relaxed);
        for cursor in &self.cursors {
            cursor.store(0, Ordering::Relaxed);
        }
    }

    /// Claims the next member for `worker`: own shard first, then each
    /// neighbour's in turn. Returns the member and whether it was stolen.
    fn pop(&self, worker: usize) -> Option<(usize, bool)> {
        let len = self.len.load(Ordering::Relaxed);
        let shards = self.cursors.len();
        for probe in 0..shards {
            let shard = (worker + probe) % shards;
            let at = self.cursors[shard].fetch_add(1, Ordering::Relaxed);
            let index = shard + at * shards;
            if index < len {
                return Some((self.agenda[index].load(Ordering::Relaxed), probe != 0));
            }
        }
        None
    }
}

/// Per-quantum bookkeeping, allocated once and reused across rounds so
/// the steady state allocates nothing.
struct QuantumState {
    /// (thread, issue) per logical request, in request order.
    quantum: Vec<(usize, SimTime)>,
    /// (request index, member, counts-lost-pages) per sub-request.
    subs: Vec<(usize, usize, bool)>,
    /// Members the current quantum dealt work to, in first-touch order
    /// until the driver reorders them laggiest-first.
    touched: Vec<usize>,
    /// Per-member read position into `Lane::results` during the merge.
    /// Only touched members' entries are ever non-zero.
    cursors: Vec<usize>,
    outcomes: Vec<ReqOutcome>,
    /// Scratch for the laggiest-first sort: (member, queued, behind µs).
    agenda_keys: Vec<(usize, u64, u64)>,
    /// A mirrored read that must wait for the quantum ahead of it.
    pending: Option<IoRequest>,
    exhausted: bool,
    queue_depth: usize,
}

impl QuantumState {
    fn new(queue_depth: usize, members: usize) -> Self {
        QuantumState {
            quantum: Vec::with_capacity(queue_depth),
            subs: Vec::new(),
            touched: Vec::new(),
            cursors: vec![0; members],
            outcomes: Vec::with_capacity(queue_depth),
            agenda_keys: Vec::new(),
            pending: None,
            exhausted: false,
            queue_depth,
        }
    }
}

/// Accumulates one logical request's sub-completions into its completion
/// time plus straggler attribution: which member finished last, by how
/// much it trailed the runner-up (the request's *exclusive* delay — the
/// part no other member can hide), and whether that member was mid-FGC.
/// Ties keep the first maximum, so attribution is deterministic.
///
/// Attribution only applies to requests that fanned out to **two or
/// more** members: a single-sub request has no runner-up, so calling its
/// one member a "straggler" would just re-measure per-member load and
/// drown the real signal (a member holding multi-member requests back).
#[derive(Debug, Clone, Copy)]
struct ReqOutcome {
    completion: SimTime,
    /// The second-slowest completion (or the issue time before one
    /// exists): the request would have finished here without the
    /// straggler.
    runner_up: SimTime,
    /// Member holding the current maximum; `usize::MAX` until the first
    /// sub-completion arrives (a zero-page request has none).
    straggler: usize,
    /// Whether the straggler's step invoked foreground GC.
    fgc: bool,
    /// Sub-completions observed; attribution needs at least two.
    subs: u32,
}

impl ReqOutcome {
    fn new(issue: SimTime) -> Self {
        ReqOutcome {
            completion: issue,
            runner_up: issue,
            straggler: usize::MAX,
            fgc: false,
            subs: 0,
        }
    }

    fn observe(&mut self, member: usize, done: SimTime, fgc: bool) {
        self.subs += 1;
        if self.straggler == usize::MAX || done > self.completion {
            self.runner_up = self.runner_up.max(self.completion);
            self.completion = self.completion.max(done);
            self.straggler = member;
            self.fgc = fgc;
        } else {
            self.runner_up = self.runner_up.max(done);
        }
    }
}

/// What routing one mirrored-read sub-request produced.
struct MirrorOutcome {
    done: SimTime,
    device: usize,
    fgc: bool,
    recovered_pages: u64,
    lost_pages: u64,
}

/// Routes and executes one mirrored-read sub-request over the two
/// replica members. This is *the* serialization point of the array: the
/// replica choice reads both members' live GC signals, so every driver —
/// serial, barrier, work-stealing — funnels through this one function
/// and the reports cannot drift apart.
fn route_mirrored_sub(
    manager: &mut ArrayManager,
    retry: &mut Vec<Lpn>,
    member_lag: &mut [LatencyRecorder],
    primary: (usize, &mut SsdSystem),
    replica: (usize, &mut SsdSystem),
    sub: IoRequest,
    issue: SimTime,
) -> MirrorOutcome {
    let (primary, primary_sys) = primary;
    let (replica, replica_sys) = replica;
    // Lag and FGC baselines are sampled before the candidates' clocks
    // advance to the issue time, so the chosen replica's step is charged
    // for the periodic work (and any tick-driven FGC) it had pending.
    let lag_primary = issue.saturating_since(primary_sys.virtual_clock());
    let lag_replica = issue.saturating_since(replica_sys.virtual_clock());
    let fgc_primary = primary_sys.fgc_invocations();
    let fgc_replica = replica_sys.fgc_invocations();
    // Bring both candidates' clocks up to the issue time first: members
    // process periodic work lazily, so an un-advanced replica would
    // report a stale (idle) `busy_until` and attract exactly the reads
    // its overdue flush is about to stall.
    primary_sys.advance_to(issue);
    replica_sys.advance_to(issue);
    let device = manager.choose_between(primary, primary_sys, replica, replica_sys, issue);
    let (chosen, other, lag, fgc_before) = if device == primary {
        (primary_sys, replica_sys, lag_primary, fgc_primary)
    } else {
        (replica_sys, primary_sys, lag_replica, fgc_replica)
    };
    member_lag[device].record(lag);
    let mut done = chosen.step(sub, issue);
    let mut recovered_pages = 0;
    let mut lost_pages = 0;
    if !chosen.failed_read_lpns().is_empty() {
        // Uncorrectable pages on the chosen replica: repair by re-reading
        // the surviving copy. Only pages that fail on *both* replicas are
        // lost.
        retry.clear();
        retry.extend_from_slice(chosen.failed_read_lpns());
        let (repaired_at, still_failed) = other.recovery_read(retry, issue);
        done = done.max(repaired_at);
        recovered_pages = retry.len() as u64 - still_failed;
        lost_pages = still_failed;
    }
    let fgc = chosen.fgc_invocations() > fgc_before;
    MirrorOutcome {
        done,
        device,
        fgc,
        recovered_pages,
        lost_pages,
    }
}

/// Wall-clock scheduler telemetry from the last [`run`](ArrayScheduler::run).
///
/// Everything here depends on the driver mode or on OS thread timing
/// (how often a worker had to steal), so it lives outside the
/// deterministic [`ArrayReport`] — reports stay byte-identical across
/// `--array-sched` modes and thread counts, while this struct tells you
/// what the machinery did to get there. Surfaced in `--bench-json`
/// (`ssdsim-bench/9`), never in `--json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedTelemetry {
    /// Driver that produced the last run.
    pub sched: ArraySched,
    /// Configured worker-thread count.
    pub member_threads: usize,
    /// Scheduling quanta executed (0 for the fully serial barrier path,
    /// which has no quantum structure).
    pub epochs: u64,
    /// Total lane executions by a non-owning worker.
    pub steals: u64,
    /// Per-member steal counts, index-aligned with the members.
    pub steal_counts: Vec<u64>,
}

/// Worker-round opcodes (stored in an `AtomicU8` between barriers).
const ROUND_STEPS: u8 = 0;
const ROUND_PREFILL: u8 = 1;
const ROUND_SHUTDOWN: u8 = 2;

/// Drives N member [`SsdSystem`]s in virtual-time lockstep behind one
/// logical volume.
///
/// The scheduler owns the closed loop the single-device engine runs
/// internally — `queue_depth` application threads dealing requests
/// round-robin, each issuing its next request a think-time after its own
/// previous completion — and replaces the "execute on the device" step
/// with *split, route, fan out*: the request's extent is split into one
/// sub-request per touched member via the [`StripeMap`], mirrored reads
/// are steered by the [`ArrayManager`], and the logical request completes
/// when the slowest sub-request does.
///
/// With one member and one chunk-aligned column the split is the
/// identity, the routing is trivial and the member sees the exact request
/// sequence [`SsdSystem::run`] would have produced — so a 1-member array
/// reports byte-identical per-device results to the standalone path.
///
/// # Parallel member stepping
///
/// With [`set_member_threads`](ArrayScheduler::set_member_threads) above
/// 1, independent members advance concurrently on a persistent worker
/// pool. Each scheduling quantum — up to `queue_depth` consecutive
/// requests, whose issue times are all computable up front because the
/// closed loop deals them to distinct threads — is split into a parallel
/// step phase (workers drain member sub-request queues) and a serial
/// merge phase (the driver folds completions back into the schedule in
/// request order). Cross-member decisions — mirrored-read routing
/// through the [`ArrayManager`] — are serial points that truncate the
/// quantum. Every member sees the exact call sequence the serial
/// scheduler would have issued, so reports are byte-identical for any
/// thread count *and* either [`ArraySched`] mode; which worker stepped a
/// member is invisible to the simulation.
pub struct ArrayScheduler {
    members: Vec<SsdSystem>,
    stripe: StripeMap,
    manager: ArrayManager,
    workload: Box<dyn Workload>,
    /// Worker threads for the parallel step phase (1 = serial path).
    member_threads: usize,
    /// Which driver advances the members.
    sched: ArraySched,

    // Closed-loop schedule state, mirroring the single-device engine.
    thread_completion: Vec<SimTime>,
    next_thread: usize,
    schedule: SimTime,

    // Volume-level measurements.
    latencies: LatencyRecorder,
    ops: u64,
    split_requests: u64,
    /// Pages repaired by re-reading the mirror after an uncorrectable
    /// primary read.
    recovered_pages: u64,
    /// Pages unreadable on every replica that holds them.
    lost_pages: u64,

    // Per-member scheduler telemetry. The lag/straggler counters are
    // functions of the simulated timeline only, so they are identical in
    // every driver mode and safe to report; epochs and steals are
    // wall-clock artifacts and stay in `SchedTelemetry`.
    member_lag: Vec<LatencyRecorder>,
    straggler_requests: Vec<u64>,
    straggler_time_us: Vec<u64>,
    straggler_fgc: Vec<u64>,
    steal_counts: Vec<u64>,
    epochs: u64,

    // Quantum-touch epoch marking: O(1) "already in this quantum's
    // touched set?" without clearing an N-sized structure per quantum.
    touch_mark: Vec<u64>,
    touch_epoch: u64,

    // Scratch reused across requests so the steady state allocates nothing.
    sub_scratch: Vec<StripeExtent>,
    retry_scratch: Vec<Lpn>,
}

impl ArrayScheduler {
    /// Builds a scheduler over already-constructed members. Use
    /// [`ArrayConfig::build`](crate::ArrayConfig::build) instead of
    /// calling this directly.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or its length disagrees with the
    /// stripe map.
    #[must_use]
    pub fn new(
        members: Vec<SsdSystem>,
        stripe: StripeMap,
        gc_mode: GcMode,
        workload: Box<dyn Workload>,
    ) -> Self {
        assert!(!members.is_empty(), "array needs at least one member");
        assert_eq!(
            members.len(),
            stripe.members(),
            "member count disagrees with the stripe map"
        );
        let queue_depth = members[0].config().queue_depth.max(1) as usize;
        let n = members.len();
        ArrayScheduler {
            manager: ArrayManager::new(gc_mode, n),
            members,
            stripe,
            workload,
            member_threads: 1,
            sched: ArraySched::Steal,
            thread_completion: vec![SimTime::ZERO; queue_depth],
            next_thread: 0,
            schedule: SimTime::ZERO,
            latencies: LatencyRecorder::new(),
            ops: 0,
            split_requests: 0,
            recovered_pages: 0,
            lost_pages: 0,
            member_lag: vec![LatencyRecorder::new(); n],
            straggler_requests: vec![0; n],
            straggler_time_us: vec![0; n],
            straggler_fgc: vec![0; n],
            steal_counts: vec![0; n],
            epochs: 0,
            touch_mark: vec![0; n],
            touch_epoch: 0,
            sub_scratch: Vec::new(),
            retry_scratch: Vec::new(),
        }
    }

    /// Turns on wall-clock phase profiling on every member (see
    /// [`SsdSystem::enable_phase_profiling`]).
    pub fn enable_phase_profiling(&mut self) {
        for m in &mut self.members {
            m.enable_phase_profiling();
        }
    }

    /// The summed per-phase wall-clock breakdown over all members (all
    /// zero unless [`enable_phase_profiling`] was called before
    /// [`run`](ArrayScheduler::run)).
    ///
    /// [`enable_phase_profiling`]: ArrayScheduler::enable_phase_profiling
    #[must_use]
    pub fn phase_profile(&self) -> jitgc_core::system::PhaseProfile {
        let mut total = jitgc_core::system::PhaseProfile::default();
        for m in &self.members {
            let p = m.phase_profile();
            total.request_execution += p.request_execution;
            total.flush += p.flush;
            total.predictor += p.predictor;
            total.bgc += p.bgc;
            total.reporting += p.reporting;
            total.gc_copy += p.gc_copy;
            total.tick += p.tick;
        }
        total
    }

    /// Sets how many worker threads advance members during the parallel
    /// step phase. Clamped to the member count at run time; 1 (the
    /// default) keeps everything on the calling thread. Any value
    /// produces byte-identical reports — the knob trades wall-clock time
    /// only.
    pub fn set_member_threads(&mut self, threads: usize) {
        self.member_threads = threads.max(1);
    }

    /// The configured worker-thread count for parallel member stepping.
    #[must_use]
    pub fn member_threads(&self) -> usize {
        self.member_threads
    }

    /// Selects the driver mode. Both modes produce byte-identical
    /// reports; [`ArraySched::Barrier`] exists as the lockstep debug
    /// oracle for [`ArraySched::Steal`] (the default).
    pub fn set_sched(&mut self, sched: ArraySched) {
        self.sched = sched;
    }

    /// The configured driver mode.
    #[must_use]
    pub fn sched(&self) -> ArraySched {
        self.sched
    }

    /// Wall-clock scheduler telemetry from the last run (zeros before
    /// the first). See [`SchedTelemetry`] for why this is separate from
    /// the report.
    #[must_use]
    pub fn sched_telemetry(&self) -> SchedTelemetry {
        SchedTelemetry {
            sched: self.sched,
            member_threads: self.member_threads,
            epochs: self.epochs,
            steals: self.steal_counts.iter().sum(),
            steal_counts: self.steal_counts.clone(),
        }
    }

    /// Selects every member's GC migration path: bulk `copy_pages`
    /// (default) or the per-page loop. Observationally identical — an
    /// A/B measurement switch (see `Ftl::set_bulk_gc`).
    pub fn set_bulk_gc(&mut self, enabled: bool) {
        for member in &mut self.members {
            member.set_bulk_gc(enabled);
        }
    }

    /// Switches every member's quiescence fast-forward (see
    /// [`SsdSystem::set_fast_forward`]; on by default). Byte-identical
    /// reports either way — an A/B wall-clock switch. Works under both
    /// driver modes and any worker-thread count: a skip only moves a
    /// member's virtual clock to where the per-tick loop would have put
    /// it, so `time_behind` ordering is unaffected.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        for member in &mut self.members {
            member.set_fast_forward(enabled);
        }
    }

    /// Total flusher ticks elided by the quiescence fast-forward across
    /// all members.
    #[must_use]
    pub fn ticks_skipped(&self) -> u64 {
        self.members.iter().map(SsdSystem::ticks_skipped).sum()
    }

    /// Total fast-forwarded idle spans across all members.
    #[must_use]
    pub fn ff_spans(&self) -> u64 {
        self.members.iter().map(SsdSystem::ff_spans).sum()
    }

    /// Per-member phase profiles, index-aligned with
    /// [`members`](ArrayScheduler::members) (all zero unless
    /// [`enable_phase_profiling`](ArrayScheduler::enable_phase_profiling)
    /// was called before the run).
    #[must_use]
    pub fn member_profiles(&self) -> Vec<jitgc_core::system::PhaseProfile> {
        self.members.iter().map(SsdSystem::phase_profile).collect()
    }

    /// Read-only access to the members (for tests and signal polling).
    #[must_use]
    pub fn members(&self) -> &[SsdSystem] {
        &self.members
    }

    /// Current JIT-GC telemetry of every member — what a host-side array
    /// manager polls to decide routing and staggering.
    #[must_use]
    pub fn member_signals(&self) -> Vec<GcSignals> {
        self.members.iter().map(SsdSystem::gc_signals).collect()
    }

    /// Runs the workload to exhaustion and reports.
    ///
    /// # Panics
    ///
    /// Panics if any member's FTL signals an unrecoverable condition,
    /// which indicates a misconfigured experiment.
    pub fn run(&mut self) -> ArrayReport {
        let threads = self.member_threads.min(self.members.len()).max(1);
        match (self.sched, threads) {
            (ArraySched::Barrier, 1) => self.run_serial(),
            (ArraySched::Barrier, t) => self.run_barrier_pool(t),
            (ArraySched::Steal, 1) => self.run_steal_inline(),
            (ArraySched::Steal, t) => self.run_steal_pool(t),
        }
    }

    /// Single-threaded reference loop: one request at a time, exactly the
    /// closed-loop schedule of the single-device engine.
    fn run_serial(&mut self) -> ArrayReport {
        self.manager.apply_stagger(&mut self.members);
        if self.members[0].config().prefill {
            for m in &mut self.members {
                m.prefill();
            }
        }
        while let Some(req) = self.workload.next_request() {
            let thread = self.next_thread;
            self.next_thread = (self.next_thread + 1) % self.thread_completion.len();
            let issue = self.thread_completion[thread] + req.gap;
            self.schedule = self.schedule.max(issue);
            let outcome = self.dispatch(req, issue);
            self.commit_request(thread, issue, &outcome);
        }
        let end = self.end_time();
        self.build_report(end)
    }

    /// Work-stealing driver degenerated to one thread: the same quantum
    /// structure as the pooled driver, executed inline without locks,
    /// barriers, or worker threads. Exists so `--array-sched steal
    /// --member-threads 1` exercises the exact dealing/merge code path
    /// the pool uses.
    fn run_steal_inline(&mut self) -> ArrayReport {
        self.manager.apply_stagger(&mut self.members);
        let do_prefill = self.members[0].config().prefill;
        let queue_depth = self.thread_completion.len();
        let mut lanes: Vec<Lane> = std::mem::take(&mut self.members)
            .into_iter()
            .map(Lane::new)
            .collect();
        if do_prefill {
            for lane in &mut lanes {
                lane.system.prefill();
            }
        }
        let mut q = QuantumState::new(queue_depth, lanes.len());
        loop {
            if !self.serial_phase(&mut lanes[..], &mut q) {
                break;
            }
            for &member in &q.touched {
                lanes[member].run_queue();
            }
        }
        for (i, lane) in lanes.into_iter().enumerate() {
            self.absorb_lane(i, lane);
        }
        let end = self.end_time();
        self.build_report(end)
    }

    /// Work-stealing driver: between the epoch-ordered serial sections,
    /// workers claim the laggiest eligible members from a sharded agenda
    /// and steal across shards once their own runs dry. The serial
    /// sections lock only the lanes the quantum touched, so driver cost
    /// per quantum is O(touched ∪ queue-depth), independent of the
    /// member count.
    fn run_steal_pool(&mut self, threads: usize) -> ArrayReport {
        self.manager.apply_stagger(&mut self.members);
        let do_prefill = self.members[0].config().prefill;
        let queue_depth = self.thread_completion.len();
        let lanes: Vec<Mutex<Lane>> = std::mem::take(&mut self.members)
            .into_iter()
            .map(|system| Mutex::new(Lane::new(system)))
            .collect();
        let queue = StealQueue::new(lanes.len(), threads);
        let round = AtomicU8::new(ROUND_STEPS);
        let start = Barrier::new(threads + 1);
        let finish = Barrier::new(threads + 1);

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (lanes, queue, round) = (&lanes, &queue, &round);
                let (start, finish) = (&start, &finish);
                scope.spawn(move || loop {
                    start.wait();
                    let op = round.load(Ordering::Acquire);
                    if op == ROUND_SHUTDOWN {
                        finish.wait();
                        break;
                    }
                    while let Some((member, stolen)) = queue.pop(worker) {
                        let mut lane = lanes[member].lock().expect("a member panicked");
                        if op == ROUND_PREFILL {
                            lane.system.prefill();
                            continue;
                        }
                        if stolen {
                            lane.steals += 1;
                        }
                        lane.run_queue();
                    }
                    finish.wait();
                });
            }

            let run_round = |op: u8| {
                round.store(op, Ordering::Release);
                start.wait();
                finish.wait();
            };
            if do_prefill {
                let all: Vec<usize> = (0..lanes.len()).collect();
                queue.publish(&all);
                run_round(ROUND_PREFILL);
            }

            let mut q = QuantumState::new(queue_depth, lanes.len());
            let mut table = LazyLanes::new(&lanes);
            loop {
                let more = self.serial_phase(&mut table, &mut q);
                if !more {
                    break;
                }
                let horizon = self.schedule;
                order_agenda(&mut table, &mut q.touched, &mut q.agenda_keys, horizon);
                table.release();
                queue.publish(&q.touched);
                run_round(ROUND_STEPS);
            }
            table.release();
            run_round(ROUND_SHUTDOWN);
        });

        for (i, lane) in lanes.into_iter().enumerate() {
            self.absorb_lane(i, lane.into_inner().expect("a member panicked"));
        }
        let end = self.end_time();
        self.build_report(end)
    }

    /// Barrier-lockstep driver (the debug oracle): a persistent pool of
    /// `threads` scoped workers advances a static member partition
    /// between two global barriers per quantum, visiting every member of
    /// its partition each round, while this thread owns all scheduling,
    /// routing and merging over fully pre-locked lanes.
    fn run_barrier_pool(&mut self, threads: usize) -> ArrayReport {
        self.manager.apply_stagger(&mut self.members);
        let do_prefill = self.members[0].config().prefill;
        let queue_depth = self.thread_completion.len();
        let lanes: Vec<Mutex<Lane>> = std::mem::take(&mut self.members)
            .into_iter()
            .map(|system| Mutex::new(Lane::new(system)))
            .collect();
        let round = AtomicU8::new(ROUND_STEPS);
        let start = Barrier::new(threads + 1);
        let finish = Barrier::new(threads + 1);

        std::thread::scope(|scope| {
            for worker in 0..threads {
                let (lanes, round) = (&lanes, &round);
                let (start, finish) = (&start, &finish);
                scope.spawn(move || loop {
                    start.wait();
                    let op = round.load(Ordering::Acquire);
                    if op == ROUND_SHUTDOWN {
                        finish.wait();
                        break;
                    }
                    for lane in lanes.iter().skip(worker).step_by(threads) {
                        let mut lane = lane.lock().expect("a member panicked");
                        if op == ROUND_PREFILL {
                            lane.system.prefill();
                            continue;
                        }
                        lane.run_queue();
                    }
                    finish.wait();
                });
            }

            let run_round = |op: u8| {
                round.store(op, Ordering::Release);
                start.wait();
                finish.wait();
            };
            if do_prefill {
                run_round(ROUND_PREFILL);
            }

            let mut q = QuantumState::new(queue_depth, lanes.len());
            loop {
                let more;
                {
                    // Workers are parked at the start barrier, so every
                    // lock below is uncontended; holding all guards gives
                    // the same indexed member access the serial scheduler
                    // has.
                    let mut guards: Vec<MutexGuard<'_, Lane>> = lanes
                        .iter()
                        .map(|l| l.lock().expect("a member panicked"))
                        .collect();
                    more = self.serial_phase(&mut guards[..], &mut q);
                }
                if !more {
                    break;
                }
                run_round(ROUND_STEPS);
            }
            run_round(ROUND_SHUTDOWN);
        });

        for (i, lane) in lanes.into_iter().enumerate() {
            self.absorb_lane(i, lane.into_inner().expect("a member panicked"));
        }
        let end = self.end_time();
        self.build_report(end)
    }

    /// Moves a finished lane's member and telemetry back into `self`.
    fn absorb_lane(&mut self, index: usize, lane: Lane) {
        debug_assert_eq!(index, self.members.len());
        self.members.push(lane.system);
        self.member_lag[index].merge(&lane.lag);
        self.steal_counts[index] += lane.steals;
    }

    /// One epoch-ordered serial section: folds the previous round's
    /// results back into the closed-loop schedule, executes any deferred
    /// mirrored read, then deals the next quantum into member queues.
    /// Returns `false` once the quantum comes up empty — the workload is
    /// exhausted and fully merged.
    fn serial_phase<T: LaneTable + ?Sized>(&mut self, table: &mut T, q: &mut QuantumState) -> bool {
        if !q.quantum.is_empty() {
            self.merge_quantum(table, q);
        }
        if let Some(req) = q.pending.take() {
            self.dispatch_mirrored_read(req, table);
        }
        self.touch_epoch += 1;
        while !q.exhausted && q.quantum.len() < q.queue_depth {
            let Some(req) = self.workload.next_request() else {
                q.exhausted = true;
                break;
            };
            if req.kind == IoKind::Read && self.stripe.redundancy() == Redundancy::Mirror {
                if q.quantum.is_empty() {
                    self.dispatch_mirrored_read(req, table);
                } else {
                    // Routing must see the quantum's effects: flush it,
                    // handle the read next round.
                    q.pending = Some(req);
                    break;
                }
            } else {
                self.enqueue_sub_requests(req, table, q);
            }
        }
        if q.quantum.is_empty() {
            false
        } else {
            self.epochs += 1;
            true
        }
    }

    /// Assigns `req` its closed-loop thread and issue time, then deals
    /// one sub-request per touched member (both replicas for mirrored
    /// writes/trims) into the member queues for the next parallel round.
    fn enqueue_sub_requests<T: LaneTable + ?Sized>(
        &mut self,
        req: IoRequest,
        table: &mut T,
        q: &mut QuantumState,
    ) {
        let thread = self.next_thread;
        self.next_thread = (self.next_thread + 1) % self.thread_completion.len();
        let issue = self.thread_completion[thread] + req.gap;
        self.schedule = self.schedule.max(issue);
        let req_idx = q.quantum.len();
        q.quantum.push((thread, issue));
        self.sub_scratch.clear();
        self.stripe
            .split(req.lpn.0, req.pages, &mut self.sub_scratch);
        if self.sub_scratch.len() > 1 {
            self.split_requests += 1;
        }
        for i in 0..self.sub_scratch.len() {
            let extent = self.sub_scratch[i];
            let (primary, replica) = self.stripe.devices_of(extent.column);
            let sub = IoRequest {
                gap: req.gap,
                kind: req.kind,
                lpn: Lpn(extent.member_lpn),
                pages: extent.pages,
            };
            self.touch(primary, &mut q.touched);
            table.lane(primary).queue.push((sub, issue));
            // An unmirrored read's uncorrectable pages are lost (counted
            // at merge); mirrored reads never reach this path.
            q.subs.push((
                req_idx,
                primary,
                req.kind == IoKind::Read && replica.is_none(),
            ));
            if let Some(replica) = replica {
                self.touch(replica, &mut q.touched);
                table.lane(replica).queue.push((sub, issue));
                q.subs.push((req_idx, replica, false));
            }
        }
    }

    /// Adds `member` to the quantum's touched set if it is not there yet
    /// (O(1) via the epoch mark, no per-quantum clearing).
    fn touch(&mut self, member: usize, touched: &mut Vec<usize>) {
        if self.touch_mark[member] != self.touch_epoch {
            self.touch_mark[member] = self.touch_epoch;
            touched.push(member);
        }
    }

    /// Folds a finished parallel round back into the closed-loop schedule
    /// in request order: logical completion = slowest sub-request, then
    /// thread completion / latency / straggler accounting exactly as the
    /// serial loop performs per request. Only the quantum's touched lanes
    /// are read and reset.
    fn merge_quantum<T: LaneTable + ?Sized>(&mut self, table: &mut T, q: &mut QuantumState) {
        q.outcomes.clear();
        q.outcomes
            .extend(q.quantum.iter().map(|&(_, issue)| ReqOutcome::new(issue)));
        for &(req_idx, member, counts_lost) in &q.subs {
            // Each lane's results are in its queue order, which is the
            // order its subs were dealt — a per-member cursor aligns them.
            let result = table.lane(member).results[q.cursors[member]];
            q.cursors[member] += 1;
            q.outcomes[req_idx].observe(member, result.done, result.fgc);
            if counts_lost {
                self.lost_pages += result.failed_reads;
            }
        }
        for &member in &q.touched {
            table.lane(member).results.clear();
            q.cursors[member] = 0;
        }
        for (&(thread, issue), outcome) in q.quantum.iter().zip(q.outcomes.iter()) {
            self.commit_request(thread, issue, outcome);
        }
        q.quantum.clear();
        q.subs.clear();
        q.touched.clear();
    }

    /// Finishes one logical request: thread completion, volume latency,
    /// op count, and straggler attribution for the member that held the
    /// request back (multi-member requests only — see [`ReqOutcome`]).
    fn commit_request(&mut self, thread: usize, issue: SimTime, outcome: &ReqOutcome) {
        self.thread_completion[thread] = outcome.completion;
        self.latencies
            .record(outcome.completion.saturating_since(issue));
        self.ops += 1;
        if outcome.subs >= 2 && outcome.straggler != usize::MAX {
            self.straggler_requests[outcome.straggler] += 1;
            self.straggler_time_us[outcome.straggler] += outcome
                .completion
                .saturating_since(outcome.runner_up)
                .as_micros();
            if outcome.fgc {
                self.straggler_fgc[outcome.straggler] += 1;
            }
        }
    }

    /// Serial-phase handler for a mirrored read: the replica choice reads
    /// both members' live GC signals, so it cannot overlap other work.
    fn dispatch_mirrored_read<T: LaneTable + ?Sized>(&mut self, req: IoRequest, table: &mut T) {
        let thread = self.next_thread;
        self.next_thread = (self.next_thread + 1) % self.thread_completion.len();
        let issue = self.thread_completion[thread] + req.gap;
        self.schedule = self.schedule.max(issue);
        self.sub_scratch.clear();
        self.stripe
            .split(req.lpn.0, req.pages, &mut self.sub_scratch);
        if self.sub_scratch.len() > 1 {
            self.split_requests += 1;
        }
        let mut outcome = ReqOutcome::new(issue);
        for i in 0..self.sub_scratch.len() {
            let extent = self.sub_scratch[i];
            let (primary, replica) = self.stripe.devices_of(extent.column);
            let replica = replica.expect("mirrored read dispatched without a replica");
            let sub = IoRequest {
                gap: req.gap,
                kind: req.kind,
                lpn: Lpn(extent.member_lpn),
                pages: extent.pages,
            };
            let (p, r) = table.pair(primary, replica);
            let routed = route_mirrored_sub(
                &mut self.manager,
                &mut self.retry_scratch,
                &mut self.member_lag,
                (primary, &mut p.system),
                (replica, &mut r.system),
                sub,
                issue,
            );
            self.recovered_pages += routed.recovered_pages;
            self.lost_pages += routed.lost_pages;
            outcome.observe(routed.device, routed.done, routed.fgc);
        }
        self.commit_request(thread, issue, &outcome);
    }

    /// The run's end time: the last thread completion or scheduled issue.
    fn end_time(&self) -> SimTime {
        self.thread_completion
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.schedule)
    }

    /// Splits one logical request, fans the sub-requests out to their
    /// members at `issue`, and returns the request's outcome (completion
    /// = the slowest sub-request's, plus straggler attribution).
    fn dispatch(&mut self, req: IoRequest, issue: SimTime) -> ReqOutcome {
        self.sub_scratch.clear();
        self.stripe
            .split(req.lpn.0, req.pages, &mut self.sub_scratch);
        if self.sub_scratch.len() > 1 {
            self.split_requests += 1;
        }
        let mut outcome = ReqOutcome::new(issue);
        for i in 0..self.sub_scratch.len() {
            let extent = self.sub_scratch[i];
            let (primary, replica) = self.stripe.devices_of(extent.column);
            let sub = IoRequest {
                gap: req.gap,
                kind: req.kind,
                lpn: Lpn(extent.member_lpn),
                pages: extent.pages,
            };
            match (req.kind, replica) {
                (IoKind::Read, Some(replica)) => {
                    let (p, r) = pair_mut(&mut self.members, primary, replica);
                    let routed = route_mirrored_sub(
                        &mut self.manager,
                        &mut self.retry_scratch,
                        &mut self.member_lag,
                        (primary, p),
                        (replica, r),
                        sub,
                        issue,
                    );
                    self.recovered_pages += routed.recovered_pages;
                    self.lost_pages += routed.lost_pages;
                    outcome.observe(routed.device, routed.done, routed.fgc);
                }
                (IoKind::Read, None) => {
                    let (done, fgc) = self.step_member(primary, sub, issue);
                    // No redundancy: every uncorrectable page is lost.
                    self.lost_pages += self.members[primary].failed_read_lpns().len() as u64;
                    outcome.observe(primary, done, fgc);
                }
                (_, Some(replica)) => {
                    // Writes and trims must keep the replicas coherent.
                    let (done, fgc) = self.step_member(primary, sub, issue);
                    outcome.observe(primary, done, fgc);
                    let (done, fgc) = self.step_member(replica, sub, issue);
                    outcome.observe(replica, done, fgc);
                }
                (_, None) => {
                    let (done, fgc) = self.step_member(primary, sub, issue);
                    outcome.observe(primary, done, fgc);
                }
            }
        }
        outcome
    }

    /// Steps one member with the same telemetry [`Lane::run_queue`]
    /// records, so serial and parallel runs report identical lag
    /// histograms and FGC attribution.
    fn step_member(&mut self, member: usize, sub: IoRequest, issue: SimTime) -> (SimTime, bool) {
        let lag = issue.saturating_since(self.members[member].virtual_clock());
        self.member_lag[member].record(lag);
        let fgc_before = self.members[member].fgc_invocations();
        let done = self.members[member].step(sub, issue);
        (done, self.members[member].fgc_invocations() > fgc_before)
    }

    fn build_report(&mut self, end: SimTime) -> ArrayReport {
        let member_reports: Vec<_> = self.members.iter_mut().map(|m| m.finalize(end)).collect();
        let secs = end.as_secs_f64().max(f64::MIN_POSITIVE);
        let lat = |q: f64| self.latencies.percentile(q).map_or(0, |d| d.as_micros());
        let host_pages: u64 = member_reports.iter().map(|r| r.host_pages_written).sum();
        let nand_pages: u64 = member_reports.iter().map(|r| r.nand_pages_programmed).sum();
        let member_sched = (0..self.members.len())
            .map(|i| {
                let lag = &self.member_lag[i];
                MemberSched {
                    steps: lag.count(),
                    lag_mean_us: lag.mean().map_or(0, |d| d.as_micros()),
                    lag_p99_us: lag.percentile(0.99).map_or(0, |d| d.as_micros()),
                    lag_max_us: lag.max().map_or(0, |d| d.as_micros()),
                    straggler_requests: self.straggler_requests[i],
                    straggler_fgc_requests: self.straggler_fgc[i],
                    straggler_time_us: self.straggler_time_us[i],
                }
            })
            .collect();
        ArrayReport {
            members: self.members.len(),
            chunk_pages: self.stripe.chunk_pages(),
            redundancy: self.stripe.redundancy().name().to_owned(),
            gc_mode: self.manager.mode().name().to_owned(),
            policy: member_reports[0].policy.clone(),
            workload: self.workload.name().to_owned(),
            duration_secs: secs,
            ops: self.ops,
            iops: self.ops as f64 / secs,
            split_requests: self.split_requests,
            routed_reads: self.manager.routed_reads(),
            latency_mean_us: self.latencies.mean().map_or(0, |d| d.as_micros()),
            latency_p50_us: lat(0.50),
            latency_p99_us: lat(0.99),
            latency_p999_us: lat(0.999),
            latency_max_us: self.latencies.max().map_or(0, |d| d.as_micros()),
            waf: (host_pages > 0).then(|| nand_pages as f64 / host_pages as f64),
            nand_erases: member_reports.iter().map(|r| r.nand_erases).sum(),
            erase_spread: WearReport::from_counts(member_reports.iter().map(|r| r.nand_erases)),
            fgc_request_stalls: member_reports.iter().map(|r| r.fgc_request_stalls).sum(),
            bgc_blocks: member_reports.iter().map(|r| r.bgc_blocks).sum(),
            member_sched,
            degraded: {
                let any_member_degraded = member_reports.iter().any(|r| r.degraded.is_some());
                (any_member_degraded || self.recovered_pages > 0 || self.lost_pages > 0).then(
                    || ArrayDegraded {
                        degraded_members: member_reports
                            .iter()
                            .filter(|r| r.degraded.as_ref().is_some_and(|d| d.read_only))
                            .count() as u64,
                        recovered_pages: self.recovered_pages,
                        lost_pages: self.lost_pages,
                    },
                )
            },
            member_reports,
        }
    }
}

/// Reorders the touched set laggiest-first for the next round: most
/// queued sub-requests, then most virtual time behind the horizon, then
/// lowest index. Purely a wall-clock optimization (LPT-style longest
/// processing time first) — execution order cannot affect results.
fn order_agenda<T: LaneTable + ?Sized>(
    table: &mut T,
    touched: &mut [usize],
    keys: &mut Vec<(usize, u64, u64)>,
    horizon: SimTime,
) {
    keys.clear();
    for &member in touched.iter() {
        let lane = table.lane(member);
        keys.push((
            member,
            lane.queue.len() as u64,
            lane.system.time_behind(horizon).as_micros(),
        ));
    }
    keys.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(&b.0)));
    for (slot, key) in touched.iter_mut().zip(keys.iter()) {
        *slot = key.0;
    }
}

impl std::fmt::Debug for ArrayScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayScheduler")
            .field("members", &self.members.len())
            .field("stripe", &self.stripe)
            .field("gc_mode", &self.manager.mode())
            .field("sched", &self.sched)
            .field("ops", &self.ops)
            .finish_non_exhaustive()
    }
}
