//! The array's closed-loop request engine.

use crate::{ArrayDegraded, ArrayManager, ArrayReport, GcMode, StripeExtent, StripeMap};
use jitgc_core::system::{GcSignals, SsdSystem};
use jitgc_nand::{Lpn, WearReport};
use jitgc_sim::stats::LatencyRecorder;
use jitgc_sim::SimTime;
use jitgc_workload::{IoKind, IoRequest, Workload};

/// Drives N member [`SsdSystem`]s in virtual-time lockstep behind one
/// logical volume.
///
/// The scheduler owns the closed loop the single-device engine runs
/// internally — `queue_depth` application threads dealing requests
/// round-robin, each issuing its next request a think-time after its own
/// previous completion — and replaces the "execute on the device" step
/// with *split, route, fan out*: the request's extent is split into one
/// sub-request per touched member via the [`StripeMap`], mirrored reads
/// are steered by the [`ArrayManager`], and the logical request completes
/// when the slowest sub-request does.
///
/// With one member and one chunk-aligned column the split is the
/// identity, the routing is trivial and the member sees the exact request
/// sequence [`SsdSystem::run`] would have produced — so a 1-member array
/// reports byte-identical per-device results to the standalone path.
pub struct ArrayScheduler {
    members: Vec<SsdSystem>,
    stripe: StripeMap,
    manager: ArrayManager,
    workload: Box<dyn Workload>,

    // Closed-loop schedule state, mirroring the single-device engine.
    thread_completion: Vec<SimTime>,
    next_thread: usize,
    schedule: SimTime,

    // Volume-level measurements.
    latencies: LatencyRecorder,
    ops: u64,
    split_requests: u64,
    /// Pages repaired by re-reading the mirror after an uncorrectable
    /// primary read.
    recovered_pages: u64,
    /// Pages unreadable on every replica that holds them.
    lost_pages: u64,

    // Scratch reused across requests so the steady state allocates nothing.
    sub_scratch: Vec<StripeExtent>,
    retry_scratch: Vec<Lpn>,
}

impl ArrayScheduler {
    /// Builds a scheduler over already-constructed members. Use
    /// [`ArrayConfig::build`](crate::ArrayConfig::build) instead of
    /// calling this directly.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or its length disagrees with the
    /// stripe map.
    #[must_use]
    pub fn new(
        members: Vec<SsdSystem>,
        stripe: StripeMap,
        gc_mode: GcMode,
        workload: Box<dyn Workload>,
    ) -> Self {
        assert!(!members.is_empty(), "array needs at least one member");
        assert_eq!(
            members.len(),
            stripe.members(),
            "member count disagrees with the stripe map"
        );
        let queue_depth = members[0].config().queue_depth.max(1) as usize;
        ArrayScheduler {
            members,
            stripe,
            manager: ArrayManager::new(gc_mode),
            workload,
            thread_completion: vec![SimTime::ZERO; queue_depth],
            next_thread: 0,
            schedule: SimTime::ZERO,
            latencies: LatencyRecorder::new(),
            ops: 0,
            split_requests: 0,
            recovered_pages: 0,
            lost_pages: 0,
            sub_scratch: Vec::new(),
            retry_scratch: Vec::new(),
        }
    }

    /// Turns on wall-clock phase profiling on every member (see
    /// [`SsdSystem::enable_phase_profiling`]).
    pub fn enable_phase_profiling(&mut self) {
        for m in &mut self.members {
            m.enable_phase_profiling();
        }
    }

    /// The summed per-phase wall-clock breakdown over all members (all
    /// zero unless [`enable_phase_profiling`] was called before
    /// [`run`](ArrayScheduler::run)).
    ///
    /// [`enable_phase_profiling`]: ArrayScheduler::enable_phase_profiling
    #[must_use]
    pub fn phase_profile(&self) -> jitgc_core::system::PhaseProfile {
        let mut total = jitgc_core::system::PhaseProfile::default();
        for m in &self.members {
            let p = m.phase_profile();
            total.request_execution += p.request_execution;
            total.flush += p.flush;
            total.predictor += p.predictor;
            total.bgc += p.bgc;
            total.reporting += p.reporting;
        }
        total
    }

    /// Read-only access to the members (for tests and signal polling).
    #[must_use]
    pub fn members(&self) -> &[SsdSystem] {
        &self.members
    }

    /// Current JIT-GC telemetry of every member — what a host-side array
    /// manager polls to decide routing and staggering.
    #[must_use]
    pub fn member_signals(&self) -> Vec<GcSignals> {
        self.members.iter().map(SsdSystem::gc_signals).collect()
    }

    /// Runs the workload to exhaustion and reports.
    ///
    /// # Panics
    ///
    /// Panics if any member's FTL signals an unrecoverable condition,
    /// which indicates a misconfigured experiment.
    pub fn run(&mut self) -> ArrayReport {
        self.manager.apply_stagger(&mut self.members);
        if self.members[0].config().prefill {
            for m in &mut self.members {
                m.prefill();
            }
        }
        while let Some(req) = self.workload.next_request() {
            let thread = self.next_thread;
            self.next_thread = (self.next_thread + 1) % self.thread_completion.len();
            let issue = self.thread_completion[thread] + req.gap;
            self.schedule = self.schedule.max(issue);
            let completion = self.dispatch(req, issue);
            self.thread_completion[thread] = completion;
            self.latencies.record(completion.saturating_since(issue));
            self.ops += 1;
        }
        let end = self
            .thread_completion
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO)
            .max(self.schedule);
        self.build_report(end)
    }

    /// Splits one logical request, fans the sub-requests out to their
    /// members at `issue`, and returns the logical completion time (the
    /// slowest sub-request's completion).
    fn dispatch(&mut self, req: IoRequest, issue: SimTime) -> SimTime {
        self.sub_scratch.clear();
        self.stripe
            .split(req.lpn.0, req.pages, &mut self.sub_scratch);
        if self.sub_scratch.len() > 1 {
            self.split_requests += 1;
        }
        let mut completion = issue;
        for i in 0..self.sub_scratch.len() {
            let extent = self.sub_scratch[i];
            let (primary, replica) = self.stripe.devices_of(extent.column);
            let sub = IoRequest {
                gap: req.gap,
                kind: req.kind,
                lpn: Lpn(extent.member_lpn),
                pages: extent.pages,
            };
            match (req.kind, replica) {
                (IoKind::Read, Some(replica)) => {
                    // A mirrored read has a choice — take the replica
                    // that is idle (not mid-GC or mid-transfer) or, on a
                    // tie, the one further from its FGC threshold. Bring
                    // both candidates' clocks up to the issue time first:
                    // members process periodic work lazily, so an
                    // un-advanced replica would report a stale (idle)
                    // `busy_until` and attract exactly the reads its
                    // overdue flush is about to stall.
                    self.members[primary].advance_to(issue);
                    self.members[replica].advance_to(issue);
                    let device =
                        self.manager
                            .choose_replica(primary, replica, &self.members, issue);
                    let mut done = self.members[device].step(sub, issue);
                    if !self.members[device].failed_read_lpns().is_empty() {
                        // Uncorrectable pages on the chosen replica: repair
                        // by re-reading the surviving copy. Only pages that
                        // fail on *both* replicas are lost.
                        self.retry_scratch.clear();
                        self.retry_scratch
                            .extend_from_slice(self.members[device].failed_read_lpns());
                        let other = if device == primary { replica } else { primary };
                        let (repaired_at, still_failed) =
                            self.members[other].recovery_read(&self.retry_scratch, issue);
                        done = done.max(repaired_at);
                        self.recovered_pages += self.retry_scratch.len() as u64 - still_failed;
                        self.lost_pages += still_failed;
                    }
                    completion = completion.max(done);
                }
                (IoKind::Read, None) => {
                    let done = self.members[primary].step(sub, issue);
                    // No redundancy: every uncorrectable page is lost.
                    self.lost_pages += self.members[primary].failed_read_lpns().len() as u64;
                    completion = completion.max(done);
                }
                (_, Some(replica)) => {
                    // Writes and trims must keep the replicas coherent.
                    completion = completion.max(self.members[primary].step(sub, issue));
                    completion = completion.max(self.members[replica].step(sub, issue));
                }
                (_, None) => {
                    completion = completion.max(self.members[primary].step(sub, issue));
                }
            }
        }
        completion
    }

    fn build_report(&mut self, end: SimTime) -> ArrayReport {
        let member_reports: Vec<_> = self.members.iter_mut().map(|m| m.finalize(end)).collect();
        let secs = end.as_secs_f64().max(f64::MIN_POSITIVE);
        let lat = |q: f64| self.latencies.percentile(q).map_or(0, |d| d.as_micros());
        let host_pages: u64 = member_reports.iter().map(|r| r.host_pages_written).sum();
        let nand_pages: u64 = member_reports.iter().map(|r| r.nand_pages_programmed).sum();
        ArrayReport {
            members: self.members.len(),
            chunk_pages: self.stripe.chunk_pages(),
            redundancy: self.stripe.redundancy().name().to_owned(),
            gc_mode: self.manager.mode().name().to_owned(),
            policy: member_reports[0].policy.clone(),
            workload: self.workload.name().to_owned(),
            duration_secs: secs,
            ops: self.ops,
            iops: self.ops as f64 / secs,
            split_requests: self.split_requests,
            routed_reads: self.manager.routed_reads(),
            latency_mean_us: self.latencies.mean().map_or(0, |d| d.as_micros()),
            latency_p50_us: lat(0.50),
            latency_p99_us: lat(0.99),
            latency_p999_us: lat(0.999),
            latency_max_us: self.latencies.max().map_or(0, |d| d.as_micros()),
            waf: (host_pages > 0).then(|| nand_pages as f64 / host_pages as f64),
            nand_erases: member_reports.iter().map(|r| r.nand_erases).sum(),
            erase_spread: WearReport::from_counts(member_reports.iter().map(|r| r.nand_erases)),
            fgc_request_stalls: member_reports.iter().map(|r| r.fgc_request_stalls).sum(),
            bgc_blocks: member_reports.iter().map(|r| r.bgc_blocks).sum(),
            degraded: {
                let any_member_degraded = member_reports.iter().any(|r| r.degraded.is_some());
                (any_member_degraded || self.recovered_pages > 0 || self.lost_pages > 0).then(
                    || ArrayDegraded {
                        degraded_members: member_reports
                            .iter()
                            .filter(|r| r.degraded.as_ref().is_some_and(|d| d.read_only))
                            .count() as u64,
                        recovered_pages: self.recovered_pages,
                        lost_pages: self.lost_pages,
                    },
                )
            },
            member_reports,
        }
    }
}

impl std::fmt::Debug for ArrayScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArrayScheduler")
            .field("members", &self.members.len())
            .field("stripe", &self.stripe)
            .field("gc_mode", &self.manager.mode())
            .field("ops", &self.ops)
            .finish_non_exhaustive()
    }
}
