//! Striped multi-SSD array layer with GC-aware request routing.
//!
//! The paper evaluates JIT-GC on a single device, but its host-side
//! manager placement (Fig. 3) points at a larger opportunity: a host that
//! can read every device's free capacity and predicted demand over the
//! extended interface can coordinate garbage collection *across* devices.
//! This crate builds that array:
//!
//! * [`StripeMap`] — RAID-0 chunk striping (optionally mirrored pairs,
//!   [`Redundancy::Mirror`]) mapping one logical volume onto N member
//!   address spaces, with contiguity-preserving request splitting.
//! * [`ArrayScheduler`] — the closed-loop engine: advances members in
//!   virtual-time lockstep through the core engine's stepping API, fans
//!   each logical request out as one sub-request per touched member, and
//!   completes it when the slowest member does. Members step in parallel
//!   under either a work-stealing driver ([`ArraySched::Steal`], scales
//!   to hundreds of members) or the lockstep barrier oracle
//!   ([`ArraySched::Barrier`]) — reports are byte-identical either way,
//!   for any thread count.
//! * [`ArrayManager`] — the coordination brain: staggers member flusher
//!   phases ([`GcMode::Staggered`]) so background-GC windows de-correlate
//!   instead of stalling every stripe column at once, and steers mirrored
//!   reads toward the replica that is idle and further from its
//!   foreground-GC threshold (using each member's exported
//!   [`GcSignals`](jitgc_core::system::GcSignals)).
//! * [`ArrayReport`] — aggregate measurements (array WAF, per-member
//!   erase spread, volume-level tail latency) plus the untouched
//!   per-member reports.
//!
//! A 1-member array degenerates to the standalone engine: same request
//! sequence, same prefill, byte-identical per-device report — the
//! equivalence the root `array_smoke` test pins.
//!
//! # Example
//!
//! ```
//! use jitgc_array::{ArrayConfig, GcMode, Redundancy};
//! use jitgc_core::policy::NoBgc;
//! use jitgc_core::system::SystemConfig;
//! use jitgc_workload::{BenchmarkKind, WorkloadConfig};
//!
//! let system = SystemConfig::small_for_tests();
//! let config = ArrayConfig {
//!     members: 2,
//!     chunk_pages: 16,
//!     redundancy: Redundancy::None,
//!     gc_mode: GcMode::Staggered,
//!     sched: jitgc_array::ArraySched::Steal,
//!     member_threads: 1,
//!     system: system.clone(),
//! };
//! let workload = BenchmarkKind::Ycsb.build(
//!     WorkloadConfig::builder()
//!         .working_set_pages(2 * 1024)
//!         .duration(jitgc_sim::SimDuration::from_secs(5))
//!         .seed(7)
//!         .build(),
//! );
//! let report = config.build(|_| Box::new(NoBgc), workload).run();
//! assert_eq!(report.members, 2);
//! assert!(report.ops > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod manager;
mod report;
mod scheduler;
mod stripe;

pub use config::ArrayConfig;
pub use manager::{ArrayManager, GcMode};
pub use report::{ArrayDegraded, ArrayReport, MemberSched};
pub use scheduler::{ArraySched, ArrayScheduler, SchedTelemetry};
pub use stripe::{Redundancy, StripeExtent, StripeMap};
