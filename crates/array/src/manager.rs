//! Array-level GC coordination: BGC staggering and GC-aware read routing.

use jitgc_core::system::{GcSignals, SsdSystem};
use jitgc_sim::{SimDuration, SimTime};

/// How background GC across the members relates in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcMode {
    /// Every member keeps its default flusher phase, so flush bursts,
    /// prediction updates, and BGC target refreshes land at the same
    /// instants on all members — the worst case for tail latency, since
    /// any correlated FGC stall hits every stripe column at once.
    Unsynchronized,
    /// Member `i`'s flusher tick is offset by `i / N` of the period, so
    /// at most one member is inside its flush/BGC-retarget window at a
    /// time and array-level stalls de-correlate.
    Staggered,
}

impl GcMode {
    /// Short display name (used in reports and CLI parsing).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GcMode::Unsynchronized => "unsync",
            GcMode::Staggered => "staggered",
        }
    }
}

/// Coordinates member garbage collection from outside the devices.
///
/// The manager never reaches into a member's FTL; it only consumes the
/// [`GcSignals`] each member exports (free capacity, predicted demand,
/// device busy horizon) — the same information a host-side JIT-GC manager
/// reads over SG_IO in the paper's host placement — and acts through two
/// levers: shifting flusher phases before the run starts, and choosing
/// which replica serves a mirrored read.
/// Every structure in here is O(members) and every per-request update is
/// O(1): routing a read touches two counters, never a scan — the manager
/// costs the same per request at 256 members as at 4.
#[derive(Debug)]
pub struct ArrayManager {
    mode: GcMode,
    /// Reads steered to a replica other than the primary.
    routed_reads: u64,
    /// Mirrored reads where both replicas looked equally good.
    tied_reads: u64,
    /// Mirrored reads each member served, index-aligned with the
    /// members. Deterministic (the routing choice is a pure function of
    /// the simulated timeline), so safe to expose anywhere.
    served_reads: Vec<u64>,
}

impl ArrayManager {
    /// Creates a manager with the given staggering mode for an array of
    /// `members` devices.
    #[must_use]
    pub fn new(mode: GcMode, members: usize) -> Self {
        ArrayManager {
            mode,
            routed_reads: 0,
            tied_reads: 0,
            served_reads: vec![0; members],
        }
    }

    /// The configured staggering mode.
    #[must_use]
    pub fn mode(&self) -> GcMode {
        self.mode
    }

    /// Reads served by a non-primary replica because the primary looked
    /// busier.
    #[must_use]
    pub fn routed_reads(&self) -> u64 {
        self.routed_reads
    }

    /// Mirrored reads where the replicas were indistinguishable and the
    /// primary won by index.
    #[must_use]
    pub fn tied_reads(&self) -> u64 {
        self.tied_reads
    }

    /// Mirrored reads each member served, index-aligned with the
    /// members. Striped columns (no replica choice) stay at zero.
    #[must_use]
    pub fn served_reads(&self) -> &[u64] {
        &self.served_reads
    }

    /// Applies the staggering policy to fresh members. Must run before
    /// the first request (the engine asserts this).
    pub fn apply_stagger(&self, members: &mut [SsdSystem]) {
        if self.mode != GcMode::Staggered || members.len() < 2 {
            return;
        }
        let n = members.len() as u64;
        for (i, member) in members.iter_mut().enumerate() {
            let period = member.config().flusher_period.as_micros();
            let offset = SimDuration::from_micros(period * i as u64 / n);
            member.offset_tick_phase(offset);
        }
    }

    /// Picks which of two mirrored replicas should serve a read issued at
    /// `issue`, returning the chosen device index.
    ///
    /// Preference order: the device that frees up sooner (not mid-GC or
    /// mid-transfer), then the one with more free capacity (further from
    /// its FGC threshold), then the lower index for determinism.
    pub fn choose_replica(
        &mut self,
        primary: usize,
        replica: usize,
        members: &[SsdSystem],
        issue: SimTime,
    ) -> usize {
        self.choose_between(
            primary,
            &members[primary],
            replica,
            &members[replica],
            issue,
        )
    }

    /// [`choose_replica`](Self::choose_replica) over direct member
    /// references, for callers (the parallel scheduler) whose members
    /// live behind per-member locks instead of in one slice.
    pub fn choose_between(
        &mut self,
        primary: usize,
        primary_system: &SsdSystem,
        replica: usize,
        replica_system: &SsdSystem,
        issue: SimTime,
    ) -> usize {
        let a = primary_system.gc_signals();
        let b = replica_system.gc_signals();
        let chosen = match Self::busyness(&a, issue).cmp(&Self::busyness(&b, issue)) {
            std::cmp::Ordering::Less => primary,
            std::cmp::Ordering::Greater => replica,
            std::cmp::Ordering::Equal => match a.free_capacity.cmp(&b.free_capacity) {
                std::cmp::Ordering::Greater => primary,
                std::cmp::Ordering::Less => replica,
                std::cmp::Ordering::Equal => {
                    self.tied_reads += 1;
                    primary.min(replica)
                }
            },
        };
        if chosen != primary {
            self.routed_reads += 1;
        }
        self.served_reads[chosen] += 1;
        chosen
    }

    /// Remaining busy time of a device at `issue` — zero when idle.
    fn busyness(signals: &GcSignals, issue: SimTime) -> u64 {
        signals.busy_until.saturating_since(issue).as_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names() {
        assert_eq!(GcMode::Unsynchronized.name(), "unsync");
        assert_eq!(GcMode::Staggered.name(), "staggered");
    }

    #[test]
    fn new_manager_has_no_routing_history() {
        let manager = ArrayManager::new(GcMode::Staggered, 4);
        assert_eq!(manager.routed_reads(), 0);
        assert_eq!(manager.tied_reads(), 0);
        assert_eq!(manager.served_reads(), &[0, 0, 0, 0]);
        assert_eq!(manager.mode(), GcMode::Staggered);
    }
}
