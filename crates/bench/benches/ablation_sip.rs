//! **Ablation** — SIP victim filtering on vs. off inside JIT-GC.
//!
//! The paper attributes part of JIT-GC's WAF advantage (even beating
//! L-BGC on four benchmarks) to the SIP filter steering BGC away from
//! blocks whose valid pages are about to die. Disabling only the filter
//! isolates that contribution: WAF with the filter should be no worse,
//! and clearly better where Table 3 shows high filtering rates.

use jitgc_bench::{format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let exp = Experiment::standard();
    let mut rows = Vec::new();
    for benchmark in BenchmarkKind::all() {
        let with_sip = exp.run(PolicyKind::Jit, benchmark);
        let without = exp.run(PolicyKind::JitNoSip, benchmark);
        rows.push((
            benchmark.name().to_owned(),
            vec![
                with_sip.waf.expect("host writes happened"),
                without.waf.expect("host writes happened"),
                (without.waf.expect("host writes happened")
                    / with_sip.waf.expect("host writes happened")
                    - 1.0)
                    * 100.0,
                with_sip.sip_filtered_fraction.map_or(0.0, |f| f * 100.0),
            ],
        ));
    }
    print!(
        "{}",
        format_table(
            "Ablation: SIP filtering (WAF with / without, penalty of disabling in %, filter rate %)",
            &[
                "WAF(SIP)".into(),
                "WAF(no SIP)".into(),
                "penalty %".into(),
                "filtered %".into(),
            ],
            &rows,
            2,
        )
    );
}
