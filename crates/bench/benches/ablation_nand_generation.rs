//! **Ablation** — NAND generation scaling of the GC penalty.
//!
//! The paper's motivation (Sec. 1): program time and block size grow with
//! flash density — 0.2 ms / 64 pages-per-block at 130 nm vs 2.3 ms /
//! 384 pages-per-block at 25 nm — so the cost of a GC stall grows across
//! generations and BGC timing matters ever more. This experiment runs the
//! same workload on all three device generations and reports the IOPS gap
//! between No-BGC (all stalls foreground) and A-BGC (all hidden): the gap
//! should widen with density.

use jitgc_bench::{format_table, Experiment, PolicyKind};
use jitgc_ftl::FtlConfig;
use jitgc_nand::NandTiming;
use jitgc_workload::BenchmarkKind;

fn main() {
    let generations = [
        ("130nm", NandTiming::legacy_130nm(), 64u32),
        ("20nm", NandTiming::mlc_20nm(), 128),
        ("25nm", NandTiming::dense_25nm(), 384),
    ];
    let mut rows = Vec::new();
    for (name, timing, pages_per_block) in generations {
        let mut exp = Experiment::standard();
        exp.system.ftl = FtlConfig::builder()
            .user_pages(24_576)
            .op_permille(70)
            .pages_per_block(pages_per_block)
            .page_size_bytes(4_096)
            .gc_reserve_blocks(2)
            .timing(timing)
            .build();
        let no_bgc = exp.run(PolicyKind::NoBgc, BenchmarkKind::TpcC);
        let aggressive = exp.run(PolicyKind::ReservedPermille(1_500), BenchmarkKind::TpcC);
        rows.push((
            name.to_owned(),
            vec![
                no_bgc.iops,
                aggressive.iops,
                (aggressive.iops / no_bgc.iops - 1.0) * 100.0,
                no_bgc.latency_p999_us as f64 / 1000.0,
            ],
        ));
    }
    print!(
        "{}",
        format_table(
            "Ablation: NAND generation vs the value of hiding GC (TPC-C)",
            &[
                "IOPS(No-BGC)".into(),
                "IOPS(A-BGC)".into(),
                "BGC gain %".into(),
                "p999(No-BGC) ms".into(),
            ],
            &rows,
            1,
        )
    );
}
