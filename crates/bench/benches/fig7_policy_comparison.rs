//! **Paper Fig. 7** — normalized IOPS (a) and WAF (b) of L-BGC, A-BGC,
//! ADP-GC, and JIT-GC across all six benchmarks, normalized to A-BGC.
//!
//! Expected shape (the paper's headline result): JIT-GC's IOPS is close to
//! A-BGC's — well above L-BGC's — for the buffered-heavy workloads (YCSB,
//! Postmark, Filebench, Bonnie++) and somewhat below A-BGC for the
//! direct-heavy ones (Tiobench, TPC-C); JIT-GC's WAF stays near L-BGC's,
//! far below A-BGC's; ADP-GC sits between, worse than JIT-GC on both
//! metrics for cache-predictable workloads.

use jitgc_bench::{default_threads, format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let exp = Experiment::standard();
    let policies = [
        PolicyKind::ReservedPermille(500),
        PolicyKind::ReservedPermille(1_500),
        PolicyKind::Adp,
        PolicyKind::Jit,
    ];
    let columns: Vec<String> = policies.iter().map(|p| p.name()).collect();

    // The whole policy × benchmark grid runs as one parallel sweep;
    // results come back in cell order, so the tables are identical to a
    // serial run.
    let cells: Vec<(PolicyKind, BenchmarkKind)> = BenchmarkKind::all()
        .iter()
        .flat_map(|&b| policies.iter().map(move |&p| (p, b)))
        .collect();
    let reports = exp.run_cells(&cells, default_threads());

    let mut iops_rows = Vec::new();
    let mut waf_rows = Vec::new();
    for (row, benchmark) in BenchmarkKind::all().iter().enumerate() {
        let reports = &reports[row * policies.len()..(row + 1) * policies.len()];
        let baseline = &reports[1]; // A-BGC
        iops_rows.push((
            benchmark.name().to_owned(),
            reports
                .iter()
                .map(|r| r.normalized_iops(baseline))
                .collect(),
        ));
        waf_rows.push((
            benchmark.name().to_owned(),
            reports.iter().map(|r| r.normalized_waf(baseline)).collect(),
        ));
    }

    print!(
        "{}",
        format_table(
            "Fig. 7(a): normalized IOPS by policy (baseline: A-BGC)",
            &columns,
            &iops_rows,
            3,
        )
    );
    print!(
        "{}",
        format_table(
            "Fig. 7(b): normalized WAF by policy (baseline: A-BGC)",
            &columns,
            &waf_rows,
            3,
        )
    );
}
