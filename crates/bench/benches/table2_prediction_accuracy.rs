//! **Paper Table 2** — prediction accuracy of JIT-GC's and ADP-GC's
//! future-write predictors, in percent.
//!
//! Expected shape: JIT-GC's accuracy above ADP-GC's wherever buffered
//! writes dominate (the page-cache scan is exact; the device-internal CDH
//! is statistical), with the two converging on direct-heavy workloads
//! (TPC-C) where both can only use the CDH.
//!
//! Accuracy here is the symmetric relative accuracy of the predicted
//! `C_req` over each `τ_expire` horizon versus the traffic actually
//! observed (see `jitgc_core::predictor::AccuracyTracker`); the paper does
//! not define its formula, so absolute values differ while the JIT-vs-ADP
//! comparison is preserved.

use jitgc_bench::{default_threads, format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let exp = Experiment::standard();
    let cells: Vec<(PolicyKind, BenchmarkKind)> = BenchmarkKind::all()
        .iter()
        .flat_map(|&b| [(PolicyKind::Jit, b), (PolicyKind::Adp, b)])
        .collect();
    let reports = exp.run_cells(&cells, default_threads());
    let mut rows = Vec::new();
    for (row, benchmark) in BenchmarkKind::all().iter().enumerate() {
        let (jit, adp) = (&reports[row * 2], &reports[row * 2 + 1]);
        rows.push((
            benchmark.name().to_owned(),
            vec![
                jit.prediction_accuracy_percent
                    .expect("JIT-GC predicts every interval"),
                adp.prediction_accuracy_percent
                    .expect("ADP-GC predicts every interval"),
            ],
        ));
    }
    print!(
        "{}",
        format_table(
            "Table 2: prediction accuracy of future write predictors (%)",
            &["JIT-GC".into(), "ADP-GC".into()],
            &rows,
            1,
        )
    );
}
