//! Wall-clock benefit of the quiescence fast-forward (DESIGN.md §15).
//!
//! Runs the same bursty closed-loop workload at three idle-gap ratios —
//! from nearly saturated (gaps shorter than the quiescence warm-up, so
//! the fast-forward never engages) to idle-dominated — once with the
//! per-tick loop and once with the fast-forward, and prints the
//! wall-clock ratio alongside the skip counters. Guards the simulator's
//! own performance, not the paper's results. Run with
//! `cargo bench --bench tick_fastforward` (release: debug builds replay
//! every skipped span through the oracle and measure that instead).

use jitgc_bench::PolicyKind;
use jitgc_core::system::{SsdSystem, SystemConfig};
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, Workload, WorkloadConfig};
use std::time::Instant;

/// (label, seconds, mean_iops): ~500-request bursts whose spacing
/// stretches from ~10 s (below the ~35 s quiescence warm-up at the
/// default 500 ms flusher period, so the fast-forward never engages and
/// this row doubles as the no-regression baseline) through ~1000 s
/// maintenance lulls to ~10000 s diurnal idle, with the duration scaled
/// so each run sees a comparable number of bursts.
const SCENARIOS: [(&str, u64, f64); 3] = [
    ("gap~10s_busy", 1_800, 50.0),
    ("gap~1000s_idle", 18_000, 0.5),
    ("gap~10000s_diurnal", 86_400, 0.05),
];

const BURST_MEAN: f64 = 500.0;

/// TPC-C: 0.1 % buffered writes, so the page cache actually drains after
/// a burst. The buffered-heavy mixes (YCSB at 88 %) often strand a dirty
/// residue at or below the flush threshold — the paper's AND-semantics
/// flusher never evicts it — which blocks quiescence for that gap and
/// mutes the fast-forward; TPC-C shows the mechanism at full strength.
fn workload(system: &SystemConfig, seconds: u64, mean_iops: f64) -> Box<dyn Workload> {
    BenchmarkKind::TpcC.build(
        WorkloadConfig::builder()
            .working_set_pages(system.ftl.user_pages() - system.ftl.op_pages() / 2)
            .duration(SimDuration::from_secs(seconds))
            .mean_iops(mean_iops)
            .burst_mean(BURST_MEAN)
            .seed(29)
            .build(),
    )
}

/// Runs one scenario and returns (wall seconds, ticks skipped, spans).
fn run(seconds: u64, mean_iops: f64, fast_forward: bool) -> (f64, u64, u64) {
    let mut system = SystemConfig::default_sim();
    // No prefill: it costs the same in both modes and would swamp the
    // stepping loop this bench isolates.
    system.prefill = false;
    let wl = workload(&system, seconds, mean_iops);
    let policy = PolicyKind::Jit.build(&system);
    let mut sim = SsdSystem::new(system, policy, wl);
    sim.set_fast_forward(fast_forward);
    let start = Instant::now();
    let _ = sim.run();
    (
        start.elapsed().as_secs_f64(),
        sim.ticks_skipped(),
        sim.ff_spans(),
    )
}

fn main() {
    println!(
        "{:<20} {:>12} {:>12} {:>9} {:>14} {:>9}",
        "scenario", "looped_s", "ff_s", "speedup", "ticks_skipped", "ff_spans"
    );
    for (label, seconds, mean_iops) in SCENARIOS {
        // Warm-up pass (allocator pools, page tables) then best-of-3 per
        // mode to shave scheduler noise.
        let _ = run(seconds, mean_iops, false);
        let looped = (0..3)
            .map(|_| run(seconds, mean_iops, false).0)
            .fold(f64::INFINITY, f64::min);
        let mut skipped = 0;
        let mut spans = 0;
        let ff = (0..3)
            .map(|_| {
                let (secs, s, p) = run(seconds, mean_iops, true);
                (skipped, spans) = (s, p);
                secs
            })
            .fold(f64::INFINITY, f64::min);
        println!(
            "{label:<20} {looped:>12.4} {ff:>12.4} {:>8.2}x {skipped:>14} {spans:>9}",
            looped / ff
        );
    }
}
