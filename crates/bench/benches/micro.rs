//! Criterion micro-benchmarks for the hot paths of the simulator itself:
//! FTL writes, GC collection, victim selection, page-cache operations, and
//! the two predictors. These guard the simulator's own performance (a
//! 600-second experiment replays millions of operations), not the paper's
//! results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jitgc_core::predictor::{BufferedWritePredictor, DirectWritePredictor};
use jitgc_ftl::{Ftl, FtlConfig, GreedySelector};
use jitgc_nand::Lpn;
use jitgc_pagecache::{PageCache, PageCacheConfig};
use jitgc_sim::{ByteSize, SimDuration, SimRng, SimTime};

fn test_ftl() -> Ftl {
    Ftl::new(
        FtlConfig::builder()
            .user_pages(4_096)
            .op_permille(150)
            .pages_per_block(64)
            .build(),
        Box::new(GreedySelector),
    )
}

fn bench_ftl_write(c: &mut Criterion) {
    c.bench_function("ftl_host_write_sequential", |b| {
        b.iter_batched_ref(
            test_ftl,
            |ftl| {
                for lpn in 0..4_096u64 {
                    ftl.host_write(Lpn(lpn), SimTime::ZERO).expect("in range");
                }
            },
            BatchSize::LargeInput,
        );
    });

    c.bench_function("ftl_host_write_with_gc_pressure", |b| {
        b.iter_batched_ref(
            || {
                let mut ftl = test_ftl();
                for lpn in 0..4_096u64 {
                    ftl.host_write(Lpn(lpn), SimTime::ZERO).expect("in range");
                }
                ftl
            },
            |ftl| {
                let mut rng = SimRng::seed(7);
                for _ in 0..4_096 {
                    let lpn = rng.range_u64(0, 4_096);
                    ftl.host_write(Lpn(lpn), SimTime::from_secs(1))
                        .expect("in range");
                }
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_bgc(c: &mut Criterion) {
    c.bench_function("ftl_background_collect_block", |b| {
        b.iter_batched_ref(
            || {
                let mut ftl = test_ftl();
                let mut rng = SimRng::seed(3);
                for _ in 0..12_000 {
                    let lpn = rng.range_u64(0, 4_096);
                    ftl.host_write(Lpn(lpn), SimTime::ZERO).expect("in range");
                }
                ftl
            },
            |ftl| {
                ftl.background_collect(
                    SimTime::from_secs(2),
                    SimDuration::from_secs(1),
                    None,
                );
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_pagecache(c: &mut Criterion) {
    let config = PageCacheConfig::builder()
        .capacity_pages(8_192)
        .tau_expire(SimDuration::from_secs(3))
        .build();
    c.bench_function("pagecache_write_flush_cycle", |b| {
        b.iter_batched_ref(
            || PageCache::new(config),
            |cache| {
                let mut rng = SimRng::seed(11);
                for i in 0..4_096u64 {
                    cache.write(Lpn(rng.range_u64(0, 8_192)), SimTime::from_millis(i));
                }
                cache.flusher_tick(SimTime::from_secs(10));
            },
            BatchSize::LargeInput,
        );
    });
}

fn bench_predictors(c: &mut Criterion) {
    let config = PageCacheConfig::builder()
        .capacity_pages(8_192)
        .tau_expire(SimDuration::from_secs(3))
        .build();
    let mut cache = PageCache::new(config);
    let mut rng = SimRng::seed(13);
    for i in 0..4_096u64 {
        cache.write(Lpn(rng.range_u64(0, 8_192)), SimTime::from_millis(i));
    }
    let predictor = BufferedWritePredictor::new(
        SimDuration::from_millis(500),
        SimDuration::from_secs(3),
        ByteSize::kib(4),
    );
    c.bench_function("buffered_predictor_scan_4k_dirty", |b| {
        b.iter(|| predictor.predict(&cache, SimTime::from_secs(5)));
    });

    c.bench_function("direct_predictor_observe_predict", |b| {
        let mut pred = DirectWritePredictor::new(
            SimDuration::from_millis(500),
            SimDuration::from_secs(3),
            0.8,
            256 * 1024,
        );
        let mut rng = SimRng::seed(17);
        b.iter(|| {
            pred.observe_interval(rng.range_u64(0, 16 << 20));
            pred.predict()
        });
    });
}

criterion_group!(
    benches,
    bench_ftl_write,
    bench_bgc,
    bench_pagecache,
    bench_predictors
);
criterion_main!(benches);
