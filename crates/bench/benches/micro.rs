//! Micro-benchmarks for the hot paths of the simulator itself: FTL writes,
//! GC collection, victim selection, page-cache operations, and the two
//! predictors. These guard the simulator's own performance (a 600-second
//! experiment replays millions of operations), not the paper's results.
//!
//! Dependency-free harness: each case runs a setup closure and a timed
//! closure in batches until enough wall-clock has accumulated, then prints
//! the per-iteration mean. Run with `cargo bench --bench micro`.

use jitgc_core::predictor::{BufferedWritePredictor, DirectWritePredictor};
use jitgc_ftl::{Ftl, FtlConfig, GreedySelector, SipList};
use jitgc_nand::Lpn;
use jitgc_pagecache::{PageCache, PageCacheConfig};
use jitgc_sim::{ByteSize, SimDuration, SimRng, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `routine` on fresh `setup()` state until ~0.5 s of measured time
/// accumulates and prints the mean per-iteration latency.
fn bench_batched<S, R, T>(name: &str, mut setup: S, mut routine: R)
where
    S: FnMut() -> T,
    R: FnMut(&mut T),
{
    // One warm-up iteration, untimed (fills allocator pools, warms caches).
    let mut state = setup();
    routine(&mut state);

    let target = Duration::from_millis(500);
    let mut spent = Duration::ZERO;
    let mut iters = 0u64;
    while spent < target {
        let mut state = setup();
        let start = Instant::now();
        routine(black_box(&mut state));
        spent += start.elapsed();
        iters += 1;
    }
    let mean = spent.as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} µs/iter  ({iters} iters)", mean * 1e6);
}

fn test_ftl() -> Ftl {
    Ftl::new(
        FtlConfig::builder()
            .user_pages(4_096)
            .op_permille(150)
            .pages_per_block(64)
            .build(),
        Box::new(GreedySelector),
    )
}

fn bench_ftl_write() {
    bench_batched("ftl_host_write_sequential", test_ftl, |ftl| {
        for lpn in 0..4_096u64 {
            ftl.host_write(Lpn(lpn), SimTime::ZERO).expect("in range");
        }
    });

    bench_batched(
        "ftl_host_write_with_gc_pressure",
        || {
            let mut ftl = test_ftl();
            for lpn in 0..4_096u64 {
                ftl.host_write(Lpn(lpn), SimTime::ZERO).expect("in range");
            }
            ftl
        },
        |ftl| {
            let mut rng = SimRng::seed(7);
            for _ in 0..4_096 {
                let lpn = rng.range_u64(0, 4_096);
                ftl.host_write(Lpn(lpn), SimTime::from_secs(1))
                    .expect("in range");
            }
        },
    );
}

fn bench_bgc() {
    bench_batched(
        "ftl_background_collect_block",
        || {
            let mut ftl = test_ftl();
            let mut rng = SimRng::seed(3);
            for _ in 0..12_000 {
                let lpn = rng.range_u64(0, 4_096);
                ftl.host_write(Lpn(lpn), SimTime::ZERO).expect("in range");
            }
            ftl
        },
        |ftl| {
            ftl.background_collect(SimTime::from_secs(2), SimDuration::from_secs(1), None);
        },
    );
}

fn bench_pagecache() {
    let config = PageCacheConfig::builder()
        .capacity_pages(8_192)
        .tau_expire(SimDuration::from_secs(3))
        .build();
    bench_batched(
        "pagecache_write_flush_cycle",
        || PageCache::new(config),
        |cache| {
            let mut rng = SimRng::seed(11);
            for i in 0..4_096u64 {
                cache.write(Lpn(rng.range_u64(0, 8_192)), SimTime::from_millis(i));
            }
            cache.flusher_tick(SimTime::from_secs(10));
        },
    );
}

fn bench_predictors() {
    let config = PageCacheConfig::builder()
        .capacity_pages(8_192)
        .tau_expire(SimDuration::from_secs(3))
        .build();
    let mut cache = PageCache::new(config);
    let mut rng = SimRng::seed(13);
    for i in 0..4_096u64 {
        cache.write(Lpn(rng.range_u64(0, 8_192)), SimTime::from_millis(i));
    }
    let predictor = BufferedWritePredictor::new(
        SimDuration::from_millis(500),
        SimDuration::from_secs(3),
        ByteSize::kib(4),
    );
    bench_batched(
        "buffered_predictor_scan_4k_dirty",
        || (),
        |()| {
            black_box(predictor.predict(&cache, SimTime::from_secs(5)));
        },
    );

    bench_batched(
        "direct_predictor_observe_predict",
        || {
            (
                DirectWritePredictor::new(
                    SimDuration::from_millis(500),
                    SimDuration::from_secs(3),
                    0.8,
                    256 * 1024,
                ),
                SimRng::seed(17),
            )
        },
        |(pred, rng)| {
            for _ in 0..64 {
                pred.observe_interval(rng.range_u64(0, 16 << 20));
                black_box(pred.predict());
            }
        },
    );
}

/// Cache/device scales for the parameterized benches below: the default
/// simulator scale, 4×, and the 16× sweep scale.
const SCALES: [(u64, &str); 3] = [(8_192, "8k"), (32_768, "32k"), (131_072, "128k")];

/// Predictor polls at three cache scales: the from-scratch dirty-list
/// scan versus the incremental epoch-counter + bitmap fast path the
/// engine uses on period boundaries.
fn bench_predictor_poll_scales() {
    for (pages, tag) in SCALES {
        let config = PageCacheConfig::builder()
            .capacity_pages(pages)
            .tau_expire(SimDuration::from_secs(3))
            .flusher_period(SimDuration::from_millis(500))
            .build();
        let mut cache = PageCache::new(config);
        let mut rng = SimRng::seed(13);
        for i in 0..pages / 2 {
            cache.write(Lpn(rng.range_u64(0, pages * 2)), SimTime::from_millis(i));
        }
        let predictor = BufferedWritePredictor::new(
            SimDuration::from_millis(500),
            SimDuration::from_secs(3),
            ByteSize::kib(4),
        );
        // A period boundary, so `predict_into` takes the fast path.
        let poll = SimTime::from_secs(5);
        bench_batched(
            &format!("buffered_predict_scan_{tag}"),
            || (),
            |()| {
                black_box(predictor.predict_scan(&cache, poll));
            },
        );
        bench_batched(
            &format!("buffered_predict_incremental_{tag}"),
            SipList::new,
            |sip| {
                black_box(predictor.predict_into(&cache, poll, sip));
            },
        );
    }
}

/// Host writes at three device scales: one `host_write` call per page
/// versus a single `host_write_batch` over the same addresses.
fn bench_batch_write_scales() {
    for (pages, tag) in SCALES {
        let ftl = move || {
            Ftl::new(
                FtlConfig::builder()
                    .user_pages(pages)
                    .op_permille(150)
                    .pages_per_block(64)
                    .build(),
                Box::new(GreedySelector),
            )
        };
        let lpns: Vec<Lpn> = {
            let mut rng = SimRng::seed(23);
            (0..4_096).map(|_| Lpn(rng.range_u64(0, pages))).collect()
        };
        bench_batched(&format!("ftl_write_looped_{tag}"), ftl, |ftl| {
            for &lpn in &lpns {
                ftl.host_write(lpn, SimTime::ZERO).expect("in range");
            }
        });
        bench_batched(&format!("ftl_write_batched_{tag}"), ftl, |ftl| {
            ftl.host_write_batch(&lpns, SimTime::ZERO)
                .expect("in range");
        });
    }
}

fn main() {
    bench_ftl_write();
    bench_bgc();
    bench_pagecache();
    bench_predictors();
    bench_predictor_poll_scales();
    bench_batch_write_scales();
}
