//! Micro-benchmark of the GC migration path: the per-page migrate loop
//! versus the bulk `copy_pages` path, at three victim-utilization levels.
//!
//! Victim utilization controls the work mix of each collection — a
//! 90 %-valid victim migrates nine times the pages of a 10 %-valid one
//! before its erase — so the three levels probe the bulk path's
//! amortization (one FTL↔device dispatch per GC-block chunk instead of a
//! read + program + invalidate round trip per page) across
//! migration-heavy and erase-heavy regimes. Both variants run the
//! identical foreground-GC workload; only `Ftl::set_bulk_gc` differs.
//! Run with `cargo bench -p jitgc-bench --bench gc_migration`.

use jitgc_ftl::{Ftl, FtlConfig, GreedySelector};
use jitgc_nand::Lpn;
use jitgc_sim::{SimRng, SimTime};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `routine` on fresh `setup()` state until ~0.5 s of measured time
/// accumulates and prints the mean per-iteration latency.
fn bench_batched<S, R, T>(name: &str, mut setup: S, mut routine: R)
where
    S: FnMut() -> T,
    R: FnMut(&mut T),
{
    // One warm-up iteration, untimed (fills allocator pools, warms caches).
    let mut state = setup();
    routine(&mut state);

    let target = Duration::from_millis(500);
    let mut spent = Duration::ZERO;
    let mut iters = 0u64;
    while spent < target {
        let mut state = setup();
        let start = Instant::now();
        routine(black_box(&mut state));
        spent += start.elapsed();
        iters += 1;
    }
    let mean = spent.as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} µs/iter  ({iters} iters)", mean * 1e6);
}

const USER_PAGES: u64 = 4_096;

/// An aged device whose GC victims sit near the requested utilization:
/// a sequential fill seals every block fully valid, then overwriting a
/// deterministic `invalid_permille` stripe of the LPN space punches that
/// fraction of holes into the early blocks — which greedy selection will
/// pick as victims.
fn aged_ftl(invalid_permille: u64) -> Ftl {
    let mut ftl = Ftl::new(
        FtlConfig::builder()
            .user_pages(USER_PAGES)
            .op_permille(150)
            .pages_per_block(64)
            .build(),
        Box::new(GreedySelector),
    );
    for lpn in 0..USER_PAGES {
        ftl.host_write(Lpn(lpn), SimTime::ZERO).expect("in range");
    }
    for lpn in 0..USER_PAGES {
        if lpn % 1_000 < invalid_permille {
            ftl.host_write(Lpn(lpn), SimTime::from_millis(1))
                .expect("in range");
        }
    }
    ftl
}

/// 2 048 random overwrites on a full device: every free-pool refill goes
/// through foreground GC, i.e. through `collect_block`.
fn churn(ftl: &mut Ftl) {
    let mut rng = SimRng::seed(29);
    for _ in 0..2_048 {
        let lpn = rng.range_u64(0, USER_PAGES);
        ftl.host_write(Lpn(lpn), SimTime::from_secs(1))
            .expect("in range");
    }
}

fn main() {
    // (invalid ‰ of the LPN space, victim validity it leaves behind)
    for (invalid_permille, tag) in [(750, "u25"), (500, "u50"), (100, "u90")] {
        bench_batched(
            &format!("gc_migrate_looped_{tag}"),
            || {
                let mut ftl = aged_ftl(invalid_permille);
                ftl.set_bulk_gc(false);
                ftl
            },
            churn,
        );
        bench_batched(
            &format!("gc_migrate_bulk_{tag}"),
            || aged_ftl(invalid_permille),
            churn,
        );
    }
}
