//! **Rack-scale scheduler micro-benchmark** — wall-clock cost of stepping
//! a 64-member array with one straggling (degraded, GC-heavy) member,
//! under the work-stealing driver versus the lockstep barrier oracle, at
//! one and eight member threads.
//!
//! The simulated reports are byte-identical across every cell (the bench
//! asserts it); only the wall clock moves. The interesting comparisons:
//!
//! * `steal` vs `barrier` at the same thread count — the barrier driver
//!   sweeps and locks all 64 lanes every quantum, the steal driver
//!   touches only the lanes the quantum actually dealt to, and its
//!   workers keep pulling the laggiest member instead of idling at two
//!   global barriers while the straggler finishes its FGC.
//! * the straggler attribution table — which member set volume p999 and
//!   how much of its exclusive delay was foreground GC.
//!
//! Run with `cargo bench -p jitgc-bench --bench array_rack`.

use jitgc_array::{ArrayConfig, ArrayReport, ArraySched, GcMode, Redundancy, SchedTelemetry};
use jitgc_bench::PolicyKind;
use jitgc_core::system::SystemConfig;
use jitgc_nand::NandTiming;
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, WorkloadConfig};
use std::time::Instant;

const MEMBERS: usize = 64;
const STRAGGLER: usize = 37;

fn base_system() -> SystemConfig {
    let mut system = SystemConfig::small_for_tests();
    // Deep queue so quanta are long enough for workers to overlap.
    system.queue_depth = 8;
    // Start from steady state: prefill each member's extent so GC is live.
    system.prefill = true;
    system
}

/// One member is a degraded part: slow dense flash with most of its
/// internal channels gone (2-way instead of 8-way striping) and starved
/// of over-provisioning (1.5 % instead of 7 %), so it programs slowly AND
/// garbage-collects far more often than its 63 healthy neighbours.
fn straggle(device: usize, system: &mut SystemConfig) {
    if device == STRAGGLER {
        system.ftl = system
            .ftl
            .to_builder()
            .op_permille(15)
            .timing(NandTiming::new(
                SimDuration::from_micros(75),
                SimDuration::from_micros(2_300),
                SimDuration::from_micros(3_800),
                SimDuration::from_micros(20),
                2,
            ))
            .build();
    }
}

fn run_cell(sched: ArraySched, member_threads: usize) -> (ArrayReport, SchedTelemetry, f64) {
    let system = base_system();
    let per_member = system.ftl.user_pages() - system.ftl.op_pages() / 2;
    let workload = BenchmarkKind::Ycsb.build(
        WorkloadConfig::builder()
            .working_set_pages(per_member * MEMBERS as u64)
            .duration(SimDuration::from_secs(10))
            .mean_iops(400.0 * MEMBERS as f64)
            .burst_mean(128.0)
            .seed(42)
            .build(),
    );
    let config = ArrayConfig {
        members: MEMBERS,
        chunk_pages: 4,
        redundancy: Redundancy::None,
        gc_mode: GcMode::Staggered,
        sched,
        member_threads,
        system,
    };
    let mut sim = config.build_with(|cfg| PolicyKind::Jit.build(cfg), workload, straggle);
    let start = Instant::now();
    let report = sim.run();
    let wall = start.elapsed().as_secs_f64();
    (report, sim.sched_telemetry(), wall)
}

fn main() {
    let cells = [
        (ArraySched::Barrier, 1),
        (ArraySched::Steal, 1),
        (ArraySched::Barrier, 8),
        (ArraySched::Steal, 8),
    ];
    println!(
        "{:<24}{:>12}{:>10}{:>10}{:>12}{:>10}",
        "cell", "wall s", "p99 µs", "p999 µs", "epochs", "steals"
    );
    let mut baseline = None;
    let mut reference: Option<String> = None;
    for (sched, threads) in cells {
        let (report, telemetry, wall) = run_cell(sched, threads);
        let json = report.to_json().to_pretty();
        match &reference {
            None => reference = Some(json),
            Some(expected) => assert_eq!(
                expected,
                &json,
                "{} @ {threads} threads changed the simulated report",
                sched.name()
            ),
        }
        if sched == ArraySched::Barrier && threads == 1 {
            baseline = Some(wall);
        }
        println!(
            "{:<24}{:>12.3}{:>10}{:>10}{:>12}{:>10}",
            format!("{}/{} threads", sched.name(), threads),
            wall,
            report.latency_p99_us,
            report.latency_p999_us,
            telemetry.epochs,
            telemetry.steals
        );
        if let Some(base) = baseline {
            if wall > 0.0 {
                println!("{:<24}{:>11.2}x vs barrier/1", "", base / wall);
            }
        }
        if sched == ArraySched::Steal && threads == 8 {
            // Straggler attribution: the under-provisioned member should
            // own the volume tail.
            let mut by_time: Vec<(usize, _)> = report.member_sched.iter().enumerate().collect();
            by_time.sort_by_key(|&(i, s)| (std::cmp::Reverse(s.straggler_time_us), i));
            println!("\ntop stragglers (exclusive tail contribution):");
            println!(
                "{:<8}{:>12}{:>14}{:>16}{:>12}{:>12}",
                "member", "straggled", "of them FGC", "excl time µs", "lag p99", "lag max"
            );
            for &(i, s) in by_time.iter().take(5) {
                println!(
                    "{:<8}{:>12}{:>14}{:>16}{:>12}{:>12}",
                    i,
                    s.straggler_requests,
                    s.straggler_fgc_requests,
                    s.straggler_time_us,
                    s.lag_p99_us,
                    s.lag_max_us
                );
            }
            assert_eq!(
                by_time[0].0, STRAGGLER,
                "the degraded member should dominate the tail"
            );
        }
    }
    println!("\nall four cells produced byte-identical simulated reports");
}
