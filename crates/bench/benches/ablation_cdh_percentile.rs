//! **Ablation** — the direct-write predictor's CDH percentile.
//!
//! The paper asserts (Sec. 3.2.2) that reserving for 80 % of past windows
//! balances performance and lifetime: "more FGC operations can be avoided
//! with a higher percentage value. However, too high percentage values may
//! negatively affect the overall lifetime of SSDs in a similar fashion as
//! A-BGC." This sweep checks that claim on the two direct-heavy
//! benchmarks: FGC stalls should fall and WAF should rise as the
//! percentile grows.

use jitgc_bench::{format_table, Experiment, PolicyKind};
use jitgc_core::policy::JitGc;
use jitgc_core::system::SsdSystem;
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, WorkloadConfig};

fn main() {
    let exp = Experiment::standard();
    let percentiles = [0.6, 0.7, 0.8, 0.9, 0.95];
    let columns: Vec<String> = percentiles.iter().map(|p| format!("{p:.2}")).collect();

    let mut fgc_rows = Vec::new();
    let mut waf_rows = Vec::new();
    for benchmark in [BenchmarkKind::Tiobench, BenchmarkKind::TpcC] {
        let mut fgc = Vec::new();
        let mut waf = Vec::new();
        for &pct in &percentiles {
            let mut system = exp.system.clone();
            system.cdh_percentile = pct;
            let wl_cfg = WorkloadConfig::builder()
                .working_set_pages(system.ftl.user_pages() - system.ftl.op_pages() / 2)
                .duration(SimDuration::from_secs(600))
                .mean_iops(exp.mean_iops)
                .burst_mean(exp.burst_mean)
                .seed(exp.seed)
                .build();
            let policy = JitGc::from_system_config(&system);
            // The policy's own direct predictor percentile comes through
            // the system config; build via the harness for the manager.
            let _ = PolicyKind::Jit;
            let report = SsdSystem::new(system, Box::new(policy), benchmark.build(wl_cfg)).run();
            fgc.push((report.fgc_request_stalls + report.fgc_flush_stalls) as f64);
            waf.push(report.waf.expect("host writes happened"));
        }
        fgc_rows.push((benchmark.name().to_owned(), fgc));
        waf_rows.push((benchmark.name().to_owned(), waf));
    }

    print!(
        "{}",
        format_table(
            "Ablation: CDH percentile vs FGC stalls (JIT-GC, direct-heavy workloads)",
            &columns,
            &fgc_rows,
            0,
        )
    );
    print!(
        "{}",
        format_table(
            "Ablation: CDH percentile vs WAF (JIT-GC, direct-heavy workloads)",
            &columns,
            &waf_rows,
            3,
        )
    );
}
