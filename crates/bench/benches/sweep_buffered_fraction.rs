//! **Sweep (extension)** — JIT-GC's edge as a function of cache
//! predictability.
//!
//! The paper's six benchmarks sample the buffered:direct axis at six
//! points (Table 1); the [`Synthetic`](jitgc_workload::Synthetic) workload
//! lets us sweep it continuously with everything else held fixed. The
//! paper's thesis predicts JIT-GC's advantage over the cache-oblivious
//! ADP-GC should grow with the buffered share — the more traffic the page
//! cache sees, the more exact JIT-GC's half of the forecast is.

use jitgc_bench::{format_table, PolicyKind};
use jitgc_core::system::{SsdSystem, SystemConfig};
use jitgc_sim::SimDuration;
use jitgc_workload::{Synthetic, WorkloadConfig};

fn main() {
    let system = SystemConfig::default_sim();
    let fractions = [0.0, 0.25, 0.5, 0.75, 0.95];
    let columns: Vec<String> = fractions.iter().map(|f| format!("{f:.2}")).collect();

    let mut jit_waf = Vec::new();
    let mut adp_waf = Vec::new();
    let mut acc_gap = Vec::new();
    for &fraction in &fractions {
        let make_workload = || {
            let cfg = WorkloadConfig::builder()
                .working_set_pages(system.ftl.user_pages() - system.ftl.op_pages() / 2)
                .duration(SimDuration::from_secs(600))
                .mean_iops(250.0)
                .burst_mean(1_024.0)
                .seed(42)
                .build();
            Box::new(
                Synthetic::builder()
                    .read_fraction(0.4)
                    .buffered_fraction(fraction)
                    .zipf_skew(0.99)
                    .pages(1, 4)
                    .build(cfg),
            )
        };
        let jit = SsdSystem::new(
            system.clone(),
            PolicyKind::Jit.build(&system),
            make_workload(),
        )
        .run();
        let adp = SsdSystem::new(
            system.clone(),
            PolicyKind::Adp.build(&system),
            make_workload(),
        )
        .run();
        jit_waf.push(jit.waf.expect("host writes happened"));
        adp_waf.push(adp.waf.expect("host writes happened"));
        acc_gap.push(
            jit.prediction_accuracy_percent.unwrap_or(0.0)
                - adp.prediction_accuracy_percent.unwrap_or(0.0),
        );
    }

    print!(
        "{}",
        format_table(
            "Sweep: buffered fraction vs WAF (Synthetic, Zipf 0.99)",
            &columns,
            &[
                ("JIT-GC".to_owned(), jit_waf),
                ("ADP-GC".to_owned(), adp_waf),
            ],
            3,
        )
    );
    print!(
        "{}",
        format_table(
            "Sweep: buffered fraction vs JIT−ADP accuracy gap (pp)",
            &columns,
            &[("gap".to_owned(), acc_gap)],
            1,
        )
    );
}
