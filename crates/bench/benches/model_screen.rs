//! Micro-benchmark of the analytical screening layer: screened vs
//! exhaustive sweep wall-clock at three sweep widths, plus the screening
//! accuracy that matters — whether the cells on the *simulated* Pareto
//! frontier were among the cells the screen chose to simulate.
//!
//! Run with `cargo bench -p jitgc-bench --bench model_screen`. Numbers
//! feed the `EXPERIMENTS.md` screening table.

use jitgc_bench::{default_threads, expand_cells, run_grid, screen_cells, PolicyKind, SweepCell};
use jitgc_core::system::{SimReport, SsdSystem, SystemConfig};
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, WorkloadConfig};
use std::time::Instant;

/// Per-cell simulated duration; override with `MODEL_SCREEN_SECONDS` to
/// reproduce the `EXPERIMENTS.md` numbers at the standard 600 s length.
fn cell_seconds() -> u64 {
    std::env::var("MODEL_SCREEN_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(120)
}

const MEAN_IOPS: f64 = 250.0;
const BURST_MEAN: f64 = 1_024.0;
const SEED: u64 = 42;
const KEEP_FRAC: f64 = 0.25;

fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::NoBgc,
        PolicyKind::ReservedPermille(500),
        PolicyKind::ReservedPermille(1_500),
        PolicyKind::Adp,
        PolicyKind::Idle,
        PolicyKind::Jit,
        PolicyKind::JitNoSip,
    ]
}

/// Runs one sweep cell exactly the way `ssdsim`'s sweep path does.
fn run_cell(base: &SystemConfig, cell: &SweepCell) -> SimReport {
    let system = cell.system(base);
    let wl = WorkloadConfig::builder()
        .working_set_pages(system.ftl.user_pages() - system.ftl.op_pages() / 2)
        .duration(SimDuration::from_secs(cell_seconds()))
        .mean_iops(MEAN_IOPS)
        .burst_mean(BURST_MEAN)
        .seed(SEED)
        .build();
    let workload = cell.benchmark.build(wl);
    let policy = cell.policy.build(&system);
    SsdSystem::new(system, policy, workload).run()
}

/// Simulated-cost key used for the post-hoc Pareto check: lower WAF and
/// fewer foreground stalls are better (mirrors the model's objectives,
/// on simulated metrics).
fn sim_cost(report: &SimReport) -> (f64, f64) {
    (report.waf.unwrap_or(1.0), {
        (report.fgc_request_stalls + report.fgc_flush_stalls) as f64
    })
}

fn sim_dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

fn sweep(label: &str, op_values: &[Option<u64>]) {
    let base = SystemConfig::default_sim();
    let (cells, _dupes) = expand_cells(&BenchmarkKind::all(), &all_policies(), op_values);
    let threads = default_threads();

    // Exhaustive: simulate everything.
    let start = Instant::now();
    let exhaustive = run_grid(&cells, threads, |cell| run_cell(&base, cell));
    let exhaustive_secs = start.elapsed().as_secs_f64();

    // Screened: model every cell, simulate the kept ones.
    let start = Instant::now();
    let plan = screen_cells(&base, &cells, MEAN_IOPS, BURST_MEAN, KEEP_FRAC);
    let model_secs = start.elapsed().as_secs_f64();
    let kept: Vec<usize> = (0..cells.len()).filter(|&i| plan.keep[i]).collect();
    let start = Instant::now();
    let _screened = run_grid(&kept, threads, |&i| run_cell(&base, &cells[i]));
    let screened_secs = start.elapsed().as_secs_f64() + model_secs;

    // Accuracy: which cells sit on the *simulated* per-benchmark Pareto
    // frontier (WAF × foreground stalls), and how many of those did the
    // screen simulate?
    let mut frontier = 0usize;
    let mut recovered = 0usize;
    for benchmark in BenchmarkKind::all() {
        let group: Vec<usize> = (0..cells.len())
            .filter(|&i| cells[i].benchmark == benchmark)
            .collect();
        for &i in &group {
            let c = sim_cost(&exhaustive[i]);
            let dominated = group
                .iter()
                .any(|&j| j != i && sim_dominates(sim_cost(&exhaustive[j]), c));
            if !dominated {
                frontier += 1;
                if plan.keep[i] {
                    recovered += 1;
                }
            }
        }
    }

    println!(
        "{label:<28} {:>5} cells  exhaustive {exhaustive_secs:>7.2} s  screened {screened_secs:>7.2} s \
         (model {:>6.1} ms, {:>3} simulated)  speedup {:>4.1}x  frontier {recovered}/{frontier} recovered",
        cells.len(),
        model_secs * 1e3,
        kept.len(),
        exhaustive_secs / screened_secs,
    );
}

fn main() {
    println!(
        "model_screen: all benchmarks × 7 policies, {} s cells, keep {KEEP_FRAC}, {} threads",
        cell_seconds(),
        default_threads()
    );
    sweep("narrow (default OP)", &[None]);
    sweep("medium (3 OP points)", &[Some(70), Some(150), Some(300)]);
    sweep(
        "wide (6 OP points)",
        &[
            Some(70),
            Some(100),
            Some(150),
            Some(200),
            Some(300),
            Some(400),
        ],
    );
}
