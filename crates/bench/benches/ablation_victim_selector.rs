//! **Ablation** — victim-selection policy under JIT-GC.
//!
//! The paper modifies a stock victim selector with SIP filtering; the base
//! selector is a design choice DESIGN.md calls out. Greedy (fewest valid)
//! is the production default; cost-benefit should close some of the gap on
//! skewed workloads by aging victims; FIFO and random are the degenerate
//! baselines.

use jitgc_bench::{format_table, Experiment, PolicyKind};
use jitgc_core::system::VictimKind;
use jitgc_workload::BenchmarkKind;

fn main() {
    let base = Experiment::standard();
    let selectors = [
        ("greedy", VictimKind::Greedy),
        ("cost-benefit", VictimKind::CostBenefit),
        ("fifo", VictimKind::Fifo),
        ("random", VictimKind::Random(7)),
    ];
    let columns: Vec<String> = selectors.iter().map(|(n, _)| (*n).to_owned()).collect();

    let mut waf_rows = Vec::new();
    let mut iops_rows = Vec::new();
    for benchmark in [
        BenchmarkKind::Ycsb,
        BenchmarkKind::Postmark,
        BenchmarkKind::TpcC,
    ] {
        let mut waf = Vec::new();
        let mut iops = Vec::new();
        for (_, kind) in selectors {
            let mut exp = base.clone();
            exp.system.victim = kind;
            let report = exp.run(PolicyKind::Jit, benchmark);
            waf.push(report.waf.expect("host writes happened"));
            iops.push(report.iops);
        }
        waf_rows.push((benchmark.name().to_owned(), waf));
        iops_rows.push((benchmark.name().to_owned(), iops));
    }

    print!(
        "{}",
        format_table(
            "Ablation: victim selector vs WAF (JIT-GC)",
            &columns,
            &waf_rows,
            3
        )
    );
    print!(
        "{}",
        format_table(
            "Ablation: victim selector vs IOPS (JIT-GC)",
            &columns,
            &iops_rows,
            0
        )
    );
}
