//! **Paper Table 3** — the effect of SIP lists: the fraction of background
//! GC victim selections where the filter redirected the choice away from a
//! block rich in soon-to-be-invalidated pages.
//!
//! Expected shape: highest for buffered-heavy workloads with strong
//! overwrite locality (YCSB, Postmark, Filebench), negligible for
//! direct-heavy ones (TPC-C ≈ 1 % in the paper — direct writes never sit
//! dirty in the cache, so the SIP list is almost empty).

use jitgc_bench::{default_threads, format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let exp = Experiment::standard();
    let cells: Vec<(PolicyKind, BenchmarkKind)> = BenchmarkKind::all()
        .iter()
        .map(|&b| (PolicyKind::Jit, b))
        .collect();
    let reports = exp.run_cells(&cells, default_threads());
    let mut rows = Vec::new();
    for (benchmark, report) in BenchmarkKind::all().iter().zip(&reports) {
        rows.push((
            benchmark.name().to_owned(),
            vec![report.sip_filtered_fraction.map_or(0.0, |f| f * 100.0)],
        ));
    }
    print!(
        "{}",
        format_table(
            "Table 3: filtered GC victim blocks under JIT-GC (%)",
            &["filtered".into()],
            &rows,
            1,
        )
    );
}
