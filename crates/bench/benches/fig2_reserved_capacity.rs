//! **Paper Fig. 2** — impact of the reserved capacity `C_resv` on IOPS
//! (a) and WAF (b).
//!
//! Sweeps `C_resv ∈ {0.5, 0.75, 1.0, 1.25, 1.5} × C_OP` over all six
//! benchmarks and prints both panels, normalized to A-BGC
//! (`C_resv = 1.5 × C_OP`) exactly as the paper plots them.
//!
//! Expected shape: normalized IOPS non-decreasing in `C_resv`; normalized
//! WAF decreasing as `C_resv` shrinks — the performance/lifetime tradeoff
//! that motivates JIT-GC.

use jitgc_bench::{default_threads, format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let exp = Experiment::standard();
    let sweep = [500u64, 750, 1_000, 1_250, 1_500];
    let columns: Vec<String> = sweep
        .iter()
        .map(|p| format!("{:.2}OP", *p as f64 / 1000.0))
        .collect();

    // One parallel sweep over the whole grid; results are in cell order.
    let cells: Vec<(PolicyKind, BenchmarkKind)> = BenchmarkKind::all()
        .iter()
        .flat_map(|&b| {
            sweep
                .iter()
                .map(move |&permille| (PolicyKind::ReservedPermille(permille), b))
        })
        .collect();
    let reports = exp.run_cells(&cells, default_threads());

    let mut iops_rows = Vec::new();
    let mut waf_rows = Vec::new();
    for (row, benchmark) in BenchmarkKind::all().iter().enumerate() {
        let reports = &reports[row * sweep.len()..(row + 1) * sweep.len()];
        let baseline = reports.last().expect("sweep is non-empty"); // 1.5 OP = A-BGC
        iops_rows.push((
            benchmark.name().to_owned(),
            reports
                .iter()
                .map(|r| r.normalized_iops(baseline))
                .collect(),
        ));
        waf_rows.push((
            benchmark.name().to_owned(),
            reports.iter().map(|r| r.normalized_waf(baseline)).collect(),
        ));
    }

    print!(
        "{}",
        format_table(
            "Fig. 2(a): normalized IOPS vs reserved capacity (baseline: 1.5OP = A-BGC)",
            &columns,
            &iops_rows,
            3,
        )
    );
    print!(
        "{}",
        format_table(
            "Fig. 2(b): normalized WAF vs reserved capacity (baseline: 1.5OP = A-BGC)",
            &columns,
            &waf_rows,
            3,
        )
    );
}
