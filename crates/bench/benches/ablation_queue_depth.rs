//! **Ablation (extension)** — application queue depth.
//!
//! The paper's benchmarks keep many I/Os outstanding; our baseline model
//! is a single closed-loop thread (QD 1), which understates how much a
//! foreground-GC stall costs — one stalled request instead of a stalled
//! *queue*. Sweeping the thread count (with per-thread offered load held
//! constant, so total load scales) exposes the regime structure of the
//! paper's whole mechanism:
//!
//! * moderate concurrency (QD 4) pushes the device toward saturation and
//!   *widens* the A-BGC-over-L-BGC gap — GC left on the critical path can
//!   no longer hide behind think time;
//! * extreme concurrency (QD 16) removes idle time entirely, so *no*
//!   policy can run background GC and the gap collapses — BGC scheduling
//!   only matters when there is idle time to schedule into, which is
//!   exactly the premise of the paper.

use jitgc_bench::{format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let depths = [1u32, 4, 16];
    let columns: Vec<String> = depths.iter().map(|d| format!("QD{d}")).collect();

    let mut gap_rows = Vec::new();
    for benchmark in [BenchmarkKind::TpcC, BenchmarkKind::Tiobench] {
        let mut gaps = Vec::new();
        for &depth in &depths {
            let mut exp = Experiment::standard();
            exp.system.queue_depth = depth;
            // Each thread sustains the baseline per-thread rate, so total
            // offered load grows with concurrency — the realistic scaling.
            exp.mean_iops = 250.0 * f64::from(depth);
            let lazy = exp.run(PolicyKind::ReservedPermille(500), benchmark);
            let aggressive = exp.run(PolicyKind::ReservedPermille(1_500), benchmark);
            gaps.push((aggressive.iops / lazy.iops - 1.0) * 100.0);
        }
        gap_rows.push((benchmark.name().to_owned(), gaps));
    }
    print!(
        "{}",
        format_table(
            "Ablation: queue depth vs A-BGC-over-L-BGC IOPS advantage (%)",
            &columns,
            &gap_rows,
            1,
        )
    );
}
