//! **Paper Table 1** — breakdown of write types in the six benchmarks.
//!
//! Drains each generator and measures the buffered : direct split of its
//! write pages, printed next to the paper's values. The generators are
//! *configured* to these targets; this experiment verifies the whole
//! pipeline (sizes, request mixing, log regions) actually delivers them.

use jitgc_sim::SimDuration;
use jitgc_workload::{measure_write_mix, BenchmarkKind, WorkloadConfig};

fn main() {
    println!("\n=== Table 1: breakdown of write types (percent of written pages) ===");
    println!(
        "{:<12}{:>16}{:>16}{:>16}{:>16}",
        "benchmark", "buffered(meas)", "direct(meas)", "buffered(paper)", "direct(paper)"
    );
    let cfg = WorkloadConfig::builder()
        .working_set_pages(23_716)
        .duration(SimDuration::from_secs(600))
        .mean_iops(250.0)
        .burst_mean(1_024.0)
        .seed(42)
        .build();
    for kind in BenchmarkKind::all() {
        let mut workload = kind.build(cfg);
        let mix = measure_write_mix(workload.as_mut(), u64::MAX);
        let measured = mix.buffered_fraction().expect("every benchmark writes");
        let paper = kind.write_mix().buffered_fraction;
        println!(
            "{:<12}{:>15.1}%{:>15.1}%{:>15.1}%{:>15.1}%",
            kind.name(),
            measured * 100.0,
            (1.0 - measured) * 100.0,
            paper * 100.0,
            (1.0 - paper) * 100.0,
        );
    }
}
