//! **Extension** — the full policy matrix, beyond the paper's Fig. 7 four:
//! adds No-BGC (worst case), IDLE-GC (the related-work idle-time baseline,
//! paper reference [7]) and the SIP-less JIT-GC ablation, on all six
//! benchmarks, with absolute numbers.

use jitgc_bench::{default_threads, format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let exp = Experiment::standard();
    let policies = [
        PolicyKind::NoBgc,
        PolicyKind::ReservedPermille(500),
        PolicyKind::ReservedPermille(1_500),
        PolicyKind::Idle,
        PolicyKind::Adp,
        PolicyKind::JitNoSip,
        PolicyKind::Jit,
    ];
    let columns: Vec<String> = policies.iter().map(|p| p.name()).collect();

    let cells: Vec<(PolicyKind, BenchmarkKind)> = BenchmarkKind::all()
        .iter()
        .flat_map(|&b| policies.iter().map(move |&p| (p, b)))
        .collect();
    let all_reports = exp.run_cells(&cells, default_threads());

    let mut iops_rows = Vec::new();
    let mut waf_rows = Vec::new();
    let mut stall_rows = Vec::new();
    for (row, benchmark) in BenchmarkKind::all().iter().enumerate() {
        let reports = &all_reports[row * policies.len()..(row + 1) * policies.len()];
        iops_rows.push((
            benchmark.name().to_owned(),
            reports.iter().map(|r| r.iops).collect(),
        ));
        waf_rows.push((
            benchmark.name().to_owned(),
            reports
                .iter()
                .map(|r| r.waf.expect("host writes happened"))
                .collect(),
        ));
        stall_rows.push((
            benchmark.name().to_owned(),
            reports
                .iter()
                .map(|r| (r.fgc_request_stalls + r.fgc_flush_stalls) as f64)
                .collect(),
        ));
    }

    print!(
        "{}",
        format_table(
            "Extended comparison: IOPS (absolute)",
            &columns,
            &iops_rows,
            0
        )
    );
    print!(
        "{}",
        format_table("Extended comparison: WAF", &columns, &waf_rows, 2)
    );
    print!(
        "{}",
        format_table(
            "Extended comparison: foreground-GC stalls",
            &columns,
            &stall_rows,
            0
        )
    );
}
