//! **Extension** — the full policy matrix, beyond the paper's Fig. 7 four:
//! adds No-BGC (worst case), IDLE-GC (the related-work idle-time baseline,
//! paper reference [7]) and the SIP-less JIT-GC ablation, on all six
//! benchmarks, with absolute numbers.

use jitgc_bench::{format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let exp = Experiment::standard();
    let policies = [
        PolicyKind::NoBgc,
        PolicyKind::ReservedPermille(500),
        PolicyKind::ReservedPermille(1_500),
        PolicyKind::Idle,
        PolicyKind::Adp,
        PolicyKind::JitNoSip,
        PolicyKind::Jit,
    ];
    let columns: Vec<String> = policies.iter().map(|p| p.name()).collect();

    let mut iops_rows = Vec::new();
    let mut waf_rows = Vec::new();
    let mut stall_rows = Vec::new();
    for benchmark in BenchmarkKind::all() {
        let reports: Vec<_> = policies.iter().map(|&p| exp.run(p, benchmark)).collect();
        iops_rows.push((
            benchmark.name().to_owned(),
            reports.iter().map(|r| r.iops).collect(),
        ));
        waf_rows.push((
            benchmark.name().to_owned(),
            reports.iter().map(|r| r.waf).collect(),
        ));
        stall_rows.push((
            benchmark.name().to_owned(),
            reports
                .iter()
                .map(|r| (r.fgc_request_stalls + r.fgc_flush_stalls) as f64)
                .collect(),
        ));
    }

    print!(
        "{}",
        format_table("Extended comparison: IOPS (absolute)", &columns, &iops_rows, 0)
    );
    print!(
        "{}",
        format_table("Extended comparison: WAF", &columns, &waf_rows, 2)
    );
    print!(
        "{}",
        format_table(
            "Extended comparison: foreground-GC stalls",
            &columns,
            &stall_rows,
            0
        )
    );
}
