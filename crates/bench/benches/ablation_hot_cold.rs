//! **Ablation (extension)** — FTL-side hot/cold stream separation under
//! JIT-GC.
//!
//! SIP filtering avoids migrating soon-dead pages at *collection* time;
//! stream separation avoids mixing them with cold data at *placement*
//! time, so whole blocks die together. The two attack the same waste from
//! opposite ends. Expected: separation lowers WAF on workloads with a hot
//! working set (YCSB, TPC-C's tables) and does nothing for sequential
//! sweeps.

use jitgc_bench::{format_table, Experiment, PolicyKind};
use jitgc_ftl::FtlConfig;
use jitgc_sim::SimDuration;
use jitgc_workload::BenchmarkKind;

fn main() {
    let base = Experiment::standard();
    let mut rows = Vec::new();
    for benchmark in [
        BenchmarkKind::Ycsb,
        BenchmarkKind::Postmark,
        BenchmarkKind::Bonnie,
        BenchmarkKind::TpcC,
    ] {
        let plain = base.run(PolicyKind::Jit, benchmark);
        let mut exp = base.clone();
        exp.system.ftl = FtlConfig::builder()
            .user_pages(24_576)
            .op_permille(70)
            .pages_per_block(128)
            .page_size_bytes(4_096)
            .gc_reserve_blocks(2)
            .hot_cold_streams(SimDuration::from_secs(5))
            .build();
        let streamed = exp.run(PolicyKind::Jit, benchmark);
        rows.push((
            benchmark.name().to_owned(),
            vec![
                plain.waf.expect("host writes happened"),
                streamed.waf.expect("host writes happened"),
                (1.0 - streamed.waf.expect("host writes happened")
                    / plain.waf.expect("host writes happened"))
                    * 100.0,
            ],
        ));
    }
    print!(
        "{}",
        format_table(
            "Ablation: hot/cold stream separation (JIT-GC)",
            &[
                "WAF(single)".into(),
                "WAF(streams)".into(),
                "saving %".into()
            ],
            &rows,
            2,
        )
    );
}
