//! **Ablation** — relaxed vs. strict `τ_flush` condition in the buffered
//! predictor.
//!
//! The paper deliberately relaxes the flusher's second condition when
//! predicting (Sec. 3.2.1): assume every dirty page flushes at expiry even
//! if `τ_flush` would gate it, over-reserving by at most `τ_flush` rather
//! than risking a surprise under-reservation. The strict variant honors
//! the gate and predicts zero while below the threshold. Expected shape:
//! the strict predictor suffers more foreground GC on buffered-heavy
//! workloads (its zero forecasts leave flushes uncovered), for little or
//! no WAF benefit.

use jitgc_bench::{format_table, Experiment, PolicyKind};
use jitgc_workload::BenchmarkKind;

fn main() {
    let base = Experiment::standard();
    let mut rows = Vec::new();
    for benchmark in [
        BenchmarkKind::Ycsb,
        BenchmarkKind::Postmark,
        BenchmarkKind::Filebench,
    ] {
        let relaxed = base.run(PolicyKind::Jit, benchmark);
        let mut strict_exp = base.clone();
        strict_exp.system.strict_tau_flush = true;
        let strict = strict_exp.run(PolicyKind::Jit, benchmark);
        rows.push((
            benchmark.name().to_owned(),
            vec![
                (relaxed.fgc_request_stalls + relaxed.fgc_flush_stalls) as f64,
                (strict.fgc_request_stalls + strict.fgc_flush_stalls) as f64,
                relaxed.waf.expect("host writes happened"),
                strict.waf.expect("host writes happened"),
            ],
        ));
    }
    print!(
        "{}",
        format_table(
            "Ablation: relaxed vs strict tau_flush in the buffered predictor (JIT-GC)",
            &[
                "FGC(relaxed)".into(),
                "FGC(strict)".into(),
                "WAF(relaxed)".into(),
                "WAF(strict)".into(),
            ],
            &rows,
            2,
        )
    );
}
