//! Quick calibration probe: prints absolute IOPS/WAF/FGC numbers for a
//! few policy × benchmark cells so simulation parameters can be tuned
//! until the paper's qualitative shapes appear.
//!
//! Usage: `calibrate [iops] [burst] [ws_num/16] [secs]`

use jitgc_bench::{Experiment, PolicyKind};
use jitgc_core::system::SsdSystem;
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iops: f64 = args.get(1).map_or(2_500.0, |s| s.parse().unwrap());
    let burst: f64 = args.get(2).map_or(2_048.0, |s| s.parse().unwrap());
    let ws_16th: u64 = args.get(3).map_or(14, |s| s.parse().unwrap());
    let secs: u64 = args.get(4).map_or(120, |s| s.parse().unwrap());

    let mut exp = Experiment::quick();
    exp.mean_iops = iops;
    exp.burst_mean = burst;
    exp.duration = SimDuration::from_secs(secs);
    let system = exp.system.clone();
    let ws = if ws_16th >= 16 {
        system.ftl.user_pages() - system.ftl.op_pages() / 2
    } else {
        system.ftl.user_pages() * ws_16th / 16
    };
    println!(
        "iops={iops} burst={burst} ws={ws} secs={secs} op_pages={}",
        system.ftl.op_pages()
    );

    let policies = [
        PolicyKind::NoBgc,
        PolicyKind::ReservedPermille(500),
        PolicyKind::ReservedPermille(1_000),
        PolicyKind::ReservedPermille(1_500),
        PolicyKind::Adp,
        PolicyKind::Jit,
    ];
    for benchmark in BenchmarkKind::all() {
        println!("\n--- {benchmark} ---");
        println!(
            "{:<16}{:>10}{:>8}{:>10}{:>10}{:>8}{:>10}{:>10}{:>10}{:>8}",
            "policy",
            "iops",
            "waf",
            "fgc_req",
            "fgc_fl",
            "thr",
            "bgc_blk",
            "p99_ms",
            "acc%",
            "sip%"
        );
        for policy in policies {
            let wl_cfg = WorkloadConfig::builder()
                .working_set_pages(ws)
                .duration(exp.duration)
                .mean_iops(exp.mean_iops)
                .burst_mean(exp.burst_mean)
                .seed(exp.seed)
                .build();
            let workload = benchmark.build(wl_cfg);
            let p = policy.build(&system);
            let r = SsdSystem::new(system.clone(), p, workload).run();
            println!(
                "{:<16}{:>10.0}{:>8.3}{:>10}{:>10}{:>8}{:>10}{:>10.2}{:>10.1}{:>8.2}",
                policy.name(),
                r.iops,
                r.waf.unwrap_or(f64::NAN),
                r.fgc_request_stalls,
                r.fgc_flush_stalls,
                r.throttled_requests,
                r.bgc_blocks,
                r.latency_p99_us as f64 / 1000.0,
                r.prediction_accuracy_percent.unwrap_or(f64::NAN),
                r.sip_filtered_fraction.map_or(f64::NAN, |f| f * 100.0),
            );
        }
    }
}
