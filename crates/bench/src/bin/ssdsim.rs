//! `ssdsim` — run one configurable simulation from the command line and
//! print the report as a table or JSON.
//!
//! ```text
//! ssdsim [OPTIONS]
//!   --benchmark <ycsb|postmark|filebench|bonnie|tiobench|tpcc|all|b1,b2,…>
//!                          one benchmark, a comma list, or `all`; with
//!                          more than one, the scenarios run as a parallel
//!                          sweep and a summary table (or a JSON array)
//!                          is printed                  (default ycsb)
//!   --threads <N>          worker threads for sweeps   (default: all cores)
//!   --policy <l-bgc|a-bgc|adp-gc|idle-gc|jit-gc|jit-nosip|no-bgc|reserved:<permille>|all|p1,p2,…>
//!                          one policy, a comma list, or `all`; with more
//!                          than one the scenarios sweep like `--benchmark`
//!                                                                (default jit-gc)
//!   --op-sweep <p1,p2,…>   sweep over-provisioning values (permille of
//!                          user capacity); each value rebuilds the device
//!                          geometry                  (default: config's OP)
//!   --screen <model>       pre-filter the sweep with the jitgc-model
//!                          analytical screen: every cell is predicted
//!                          (WAF, lifetime, stall proxy), and only each
//!                          benchmark's predicted Pareto frontier plus the
//!                          best runners-up are simulated; skipped cells
//!                          keep their model predictions in --bench-json
//!   --screen-keep <F>      fraction of each benchmark's cells the screen
//!                          fills up to beyond the frontier  (default 0.25)
//!   --seconds <N>          simulated duration          (default 300)
//!   --iops <F>             mean arrival rate           (default 250)
//!   --burst <F>            mean burst length           (default 1024)
//!   --seed <N>             RNG seed                    (default 42)
//!   --victim <greedy|cost-benefit|fifo|random:<seed>>  (default greedy)
//!   --no-prefill           start from an erased device (default: aged)
//!   --hot-cold             enable FTL hot/cold streams
//!   --strict-tau-flush     strict predictor variant
//!   --wear-leveling        enable static wear leveling
//!   --in-device-manager    paper Fig. 3(a) placement (no SG_IO cost)
//!   --endurance <N>        per-block erase endurance limit; worn-out
//!                          blocks are retired and the device eventually
//!                          degrades to read-only     (default: unlimited)
//!   --fault-seed <N>       RNG seed of the wear-fault injector (default 1)
//!   --fault-program <F>    program-failure rate coefficient; the per-op
//!                          probability is F × erase_count / wear_scale
//!                                                           (default 0)
//!   --fault-erase <F>      erase-failure rate coefficient   (default 0)
//!   --fault-read <F>       uncorrectable-read rate coefficient (default 0)
//!                          (all three at 0 ⇒ no fault model is installed
//!                          and every report is byte-identical to a build
//!                          without fault injection)
//!   --timeline <path>      write a per-interval CSV time series
//!   --config <path>        load a full SystemConfig from JSON (flags that
//!                          modify the system still apply on top)
//!   --dump-config <path>   write the effective SystemConfig to JSON and exit
//!   --json                 emit the full SimReport as JSON
//!   --bench-json <path>    also write a machine-readable perf record (host
//!                          pages simulated per wall-clock second, per-phase
//!                          timing) for tracking simulator throughput; the
//!                          record schema is `ssdsim-bench/9` (array runs
//!                          add an `array` section with scheduler telemetry
//!                          — driver mode, epochs, steal counts — plus
//!                          per-member entries with their own
//!                          `phase_*_secs` breakdowns and straggler
//!                          accounting; screened sweeps write a wrapper
//!                          object with a `screening` stats section and a
//!                          `cells` array carrying every cell's model
//!                          prediction plus, for simulated cells, the
//!                          usual perf record under `perf`)
//!   --array <N>            simulate an N-member striped array instead of a
//!                          single device (`--array 1` reproduces the
//!                          single-device reports exactly); workload working
//!                          set and arrival rate scale with the column count
//!   --stripe-kb <K>        array stripe chunk size in KiB   (default 64)
//!   --mirror               pair members as RAID-10 mirrors (even N); reads
//!                          are routed to the replica that is idle and
//!                          furthest from foreground GC
//!   --gc-mode <staggered|unsync>
//!                          stagger member flusher/BGC phases or leave them
//!                          aligned                          (default staggered)
//!   --member-threads <N>   worker threads stepping array members in
//!                          parallel (must not exceed the member count);
//!                          reports are byte-identical for any value
//!                                                              (default 1)
//!   --array-sched <steal|barrier>
//!                          member-stepping driver: deterministic
//!                          work-stealing (scales to hundreds of members)
//!                          or the lockstep barrier debug oracle; reports
//!                          are byte-identical either way    (default steal)
//!   --gc-migration <bulk|looped>
//!                          GC migration path: vectorized copy_pages or the
//!                          per-page loop; observationally identical, an
//!                          A/B measurement switch      (default bulk)
//!   --fast-forward <on|off>
//!                          quiescence fast-forward: skip provably idle
//!                          flusher ticks in O(1) (DESIGN.md §15); reports
//!                          are byte-identical either way, only wall time
//!                          and the `ticks_skipped`/`ff_spans` bench-json
//!                          counters change               (default on)
//!   --queue-depth <N>      closed-loop application threads  (default: config)
//! ```

use jitgc_array::{ArrayConfig, ArrayReport, ArraySched, GcMode, Redundancy, SchedTelemetry};
use jitgc_bench::{
    default_threads, expand_cells, run_grid, run_grid_capped, screen_cells, PolicyKind, ScreenPlan,
    SweepCell,
};
use jitgc_core::system::{ManagerPlacement, PhaseProfile, SsdSystem, SystemConfig, VictimKind};
use jitgc_nand::FaultConfig;
use jitgc_sim::json::{JsonValue, ObjectBuilder};
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, WorkloadConfig};
use std::time::Instant;

#[derive(Debug)]
struct Args {
    benchmarks: Vec<BenchmarkKind>,
    threads: usize,
    policies: Vec<PolicyKind>,
    op_sweep: Vec<u64>,
    screen: bool,
    screen_keep: f64,
    seconds: u64,
    iops: f64,
    burst: f64,
    seed: u64,
    victim: VictimKind,
    prefill: bool,
    hot_cold: bool,
    strict_tau_flush: bool,
    wear_leveling: bool,
    in_device_manager: bool,
    endurance: Option<u64>,
    fault_seed: u64,
    fault_program: f64,
    fault_erase: f64,
    fault_read: f64,
    timeline: Option<String>,
    config: Option<String>,
    dump_config: Option<String>,
    json: bool,
    bench_json: Option<String>,
    array: Option<usize>,
    stripe_kb: u64,
    mirror: bool,
    gc_mode: GcMode,
    member_threads: usize,
    array_sched: ArraySched,
    bulk_gc: bool,
    fast_forward: bool,
    queue_depth: Option<u32>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            benchmarks: vec![BenchmarkKind::Ycsb],
            threads: default_threads(),
            policies: vec![PolicyKind::Jit],
            op_sweep: Vec::new(),
            screen: false,
            screen_keep: 0.25,
            seconds: 300,
            iops: 250.0,
            burst: 1_024.0,
            seed: 42,
            victim: VictimKind::Greedy,
            prefill: true,
            hot_cold: false,
            strict_tau_flush: false,
            wear_leveling: false,
            in_device_manager: false,
            endurance: None,
            fault_seed: 1,
            fault_program: 0.0,
            fault_erase: 0.0,
            fault_read: 0.0,
            timeline: None,
            config: None,
            dump_config: None,
            json: false,
            bench_json: None,
            array: None,
            stripe_kb: 64,
            mirror: false,
            gc_mode: GcMode::Staggered,
            member_threads: 1,
            array_sched: ArraySched::Steal,
            bulk_gc: true,
            fast_forward: true,
            queue_depth: None,
        }
    }
}

/// WAF is undefined (JSON `null`) on a run with zero host writes.
fn fmt_waf(waf: Option<f64>) -> String {
    waf.map_or_else(|| "n/a".to_owned(), |w| format!("{w:.3}"))
}

fn usage() -> ! {
    eprintln!("usage: ssdsim [--benchmark B] [--policy P] [--seconds N] [--iops F]");
    eprintln!("              [--op-sweep p1,p2,…] [--screen model] [--screen-keep F]");
    eprintln!("              [--burst F] [--seed N] [--victim V] [--no-prefill]");
    eprintln!("              [--hot-cold] [--strict-tau-flush] [--wear-leveling]");
    eprintln!("              [--in-device-manager] [--json]");
    eprintln!("              [--endurance N] [--fault-seed N] [--fault-program F]");
    eprintln!("              [--fault-erase F] [--fault-read F]");
    eprintln!("              [--array N] [--stripe-kb K] [--mirror]");
    eprintln!("              [--gc-mode staggered|unsync] [--member-threads N]");
    eprintln!("              [--array-sched steal|barrier]");
    eprintln!("              [--gc-migration bulk|looped] [--fast-forward on|off]");
    eprintln!("              [--queue-depth N]");
    eprintln!("see the module docs (`ssdsim.rs`) for value sets");
    std::process::exit(2)
}

fn parse_benchmark(v: &str) -> BenchmarkKind {
    match v {
        "ycsb" => BenchmarkKind::Ycsb,
        "postmark" => BenchmarkKind::Postmark,
        "filebench" => BenchmarkKind::Filebench,
        "bonnie" => BenchmarkKind::Bonnie,
        "tiobench" => BenchmarkKind::Tiobench,
        "tpcc" => BenchmarkKind::TpcC,
        other => {
            eprintln!("unknown benchmark: {other}");
            usage()
        }
    }
}

fn parse_benchmarks(v: &str) -> Vec<BenchmarkKind> {
    if v == "all" {
        return BenchmarkKind::all().to_vec();
    }
    v.split(',').map(parse_benchmark).collect()
}

/// The standard policy matrix `--policy all` expands to: every baseline
/// the paper compares plus the SIP ablation.
fn all_policies() -> Vec<PolicyKind> {
    vec![
        PolicyKind::NoBgc,
        PolicyKind::ReservedPermille(500),
        PolicyKind::ReservedPermille(1_500),
        PolicyKind::Adp,
        PolicyKind::Idle,
        PolicyKind::Jit,
        PolicyKind::JitNoSip,
    ]
}

fn parse_policies(v: &str) -> Vec<PolicyKind> {
    if v == "all" {
        return all_policies();
    }
    v.split(',').map(parse_policy).collect()
}

fn parse_policy(v: &str) -> PolicyKind {
    match v {
        "l-bgc" => PolicyKind::ReservedPermille(500),
        "a-bgc" => PolicyKind::ReservedPermille(1_500),
        "adp-gc" => PolicyKind::Adp,
        "idle-gc" => PolicyKind::Idle,
        "jit-gc" => PolicyKind::Jit,
        "jit-nosip" => PolicyKind::JitNoSip,
        "no-bgc" => PolicyKind::NoBgc,
        other => match other.strip_prefix("reserved:") {
            Some(p) => PolicyKind::ReservedPermille(p.parse().unwrap_or_else(|_| usage())),
            None => {
                eprintln!("unknown policy: {other}");
                usage()
            }
        },
    }
}

fn parse_victim(v: &str) -> VictimKind {
    match v {
        "greedy" => VictimKind::Greedy,
        "cost-benefit" => VictimKind::CostBenefit,
        "fifo" => VictimKind::Fifo,
        other => match other.strip_prefix("random:") {
            Some(s) => VictimKind::Random(s.parse().unwrap_or_else(|_| usage())),
            None => {
                eprintln!("unknown victim policy: {other}");
                usage()
            }
        },
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--benchmark" => args.benchmarks = parse_benchmarks(&value()),
            "--threads" => args.threads = value().parse().unwrap_or_else(|_| usage()),
            "--policy" => args.policies = parse_policies(&value()),
            "--op-sweep" => {
                args.op_sweep = value()
                    .split(',')
                    .map(|p| p.parse().unwrap_or_else(|_| usage()))
                    .collect()
            }
            "--screen" => match value().as_str() {
                "model" => args.screen = true,
                other => {
                    eprintln!("unknown screen mode: {other} (only `model` exists)");
                    usage()
                }
            },
            "--screen-keep" => {
                args.screen_keep = value().parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&args.screen_keep) {
                    eprintln!("--screen-keep must be a fraction in [0, 1]");
                    usage()
                }
            }
            "--seconds" => args.seconds = value().parse().unwrap_or_else(|_| usage()),
            "--iops" => args.iops = value().parse().unwrap_or_else(|_| usage()),
            "--burst" => args.burst = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--victim" => args.victim = parse_victim(&value()),
            "--no-prefill" => args.prefill = false,
            "--hot-cold" => args.hot_cold = true,
            "--strict-tau-flush" => args.strict_tau_flush = true,
            "--wear-leveling" => args.wear_leveling = true,
            "--in-device-manager" => args.in_device_manager = true,
            "--endurance" => args.endurance = Some(value().parse().unwrap_or_else(|_| usage())),
            "--fault-seed" => args.fault_seed = value().parse().unwrap_or_else(|_| usage()),
            "--fault-program" => args.fault_program = value().parse().unwrap_or_else(|_| usage()),
            "--fault-erase" => args.fault_erase = value().parse().unwrap_or_else(|_| usage()),
            "--fault-read" => args.fault_read = value().parse().unwrap_or_else(|_| usage()),
            "--timeline" => args.timeline = Some(value()),
            "--config" => args.config = Some(value()),
            "--dump-config" => args.dump_config = Some(value()),
            "--json" => args.json = true,
            "--bench-json" => args.bench_json = Some(value()),
            "--array" => args.array = Some(value().parse().unwrap_or_else(|_| usage())),
            "--stripe-kb" => args.stripe_kb = value().parse().unwrap_or_else(|_| usage()),
            "--mirror" => args.mirror = true,
            "--gc-mode" => {
                args.gc_mode = match value().as_str() {
                    "staggered" => GcMode::Staggered,
                    "unsync" => GcMode::Unsynchronized,
                    other => {
                        eprintln!("unknown gc mode: {other}");
                        usage()
                    }
                }
            }
            "--member-threads" => {
                args.member_threads = value().parse().unwrap_or_else(|_| usage());
                if args.member_threads == 0 {
                    eprintln!("--member-threads must be at least 1");
                    usage()
                }
            }
            "--array-sched" => {
                args.array_sched = match value().as_str() {
                    "steal" => ArraySched::Steal,
                    "barrier" => ArraySched::Barrier,
                    other => {
                        eprintln!("unknown array scheduler: {other}");
                        usage()
                    }
                }
            }
            "--gc-migration" => {
                args.bulk_gc = match value().as_str() {
                    "bulk" => true,
                    "looped" => false,
                    other => {
                        eprintln!("unknown gc migration path: {other}");
                        usage()
                    }
                }
            }
            "--fast-forward" => {
                args.fast_forward = match value().as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        eprintln!("unknown fast-forward mode: {other}");
                        usage()
                    }
                }
            }
            "--queue-depth" => args.queue_depth = Some(value().parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage()
            }
        }
    }
    args
}

/// Wall-clock split of one run: device/workload construction versus
/// stepping.
#[derive(Clone, Copy)]
struct Wall {
    setup_secs: f64,
    run_secs: f64,
}

/// Builds the `--bench-json` perf record: how fast the *simulator itself*
/// ran, so successive commits can track the throughput trajectory.
fn perf_record(
    args: &Args,
    report: &jitgc_core::system::SimReport,
    wall: Wall,
    profile: &PhaseProfile,
    ticks_skipped: u64,
    ff_spans: u64,
) -> JsonValue {
    let Wall {
        setup_secs,
        run_secs,
    } = wall;
    let wall_secs = setup_secs + run_secs;
    let per_sec = |count: u64| -> f64 {
        if run_secs > 0.0 {
            count as f64 / run_secs
        } else {
            0.0
        }
    };
    // Per-phase wall-time breakdown of the run (the remainder is glue:
    // workload generation and closed-loop scheduling).
    let untracked = (run_secs - profile.accounted().as_secs_f64()).max(0.0);
    ObjectBuilder::new()
        .field("schema", "ssdsim-bench/9")
        .field("benchmark", report.workload.as_str())
        .field("policy", report.policy.as_str())
        .field("victim", report.victim_policy.as_str())
        .field("seed", args.seed)
        .field("simulated_secs", report.duration_secs)
        .field("ops", report.ops)
        .field("host_pages_written", report.host_pages_written)
        .field("nand_pages_programmed", report.nand_pages_programmed)
        .field("wall_secs", wall_secs)
        .field("setup_secs", setup_secs)
        .field("run_secs", run_secs)
        .field(
            "host_pages_per_wall_sec",
            per_sec(report.host_pages_written),
        )
        .field(
            "nand_pages_per_wall_sec",
            per_sec(report.nand_pages_programmed),
        )
        .field("ops_per_wall_sec", per_sec(report.ops))
        // Schema 4: end-of-life outcome of the run (all-healthy runs
        // report false / null so dashboards need no special-casing).
        .field(
            "read_only",
            report.degraded.as_ref().is_some_and(|d| d.read_only),
        )
        .field(
            "lifetime_host_bytes",
            report.degraded.as_ref().and_then(|d| d.lifetime_host_bytes),
        )
        .field(
            "retired_blocks",
            report.degraded.as_ref().map_or(0, |d| d.retired_blocks),
        )
        .field(
            "phase_request_execution_secs",
            profile.request_execution.as_secs_f64(),
        )
        .field("phase_flush_secs", profile.flush.as_secs_f64())
        .field("phase_predictor_secs", profile.predictor.as_secs_f64())
        .field("phase_bgc_secs", profile.bgc.as_secs_f64())
        .field("phase_reporting_secs", profile.reporting.as_secs_f64())
        // Schema 5: the GC copy sub-phase (contained in the phases above,
        // excluded from the untracked remainder computation).
        .field("phase_gc_copy_secs", profile.gc_copy.as_secs_f64())
        // Schema 9: the tick super-phase (wall time inside the periodic
        // tick catch-up — contains flush/predictor work, excluded from
        // the untracked remainder) and the quiescence fast-forward
        // counters. Wall-clock facts; the deterministic report carries
        // neither, which is what keeps it byte-identical FF on vs off.
        .field("phase_tick_secs", profile.tick.as_secs_f64())
        .field("fast_forward", args.fast_forward)
        .field("ticks_skipped", ticks_skipped)
        .field("ff_spans", ff_spans)
        .field("phase_untracked_secs", untracked)
        .build()
}

/// The `--bench-json` perf record of an array run (`ssdsim-bench/9`):
/// the aggregate throughput fields of [`perf_record`] plus an `array`
/// section with scheduler telemetry and one entry per member with its
/// page counts, per-phase wall-clock breakdown, and straggler accounting.
///
/// Steal counts and epoch totals are wall-clock artifacts (they vary run
/// to run like `wall_secs` does), which is why they live here and not in
/// the deterministic `--json` report.
fn array_perf_record(
    args: &Args,
    report: &ArrayReport,
    wall: Wall,
    profile: &PhaseProfile,
    member_profiles: &[PhaseProfile],
    telemetry: &SchedTelemetry,
    ff: &FfCounters,
) -> JsonValue {
    let Wall {
        setup_secs,
        run_secs,
    } = wall;
    let wall_secs = setup_secs + run_secs;
    let per_sec = |count: u64| -> f64 {
        if run_secs > 0.0 {
            count as f64 / run_secs
        } else {
            0.0
        }
    };
    let host_pages: u64 = report
        .member_reports
        .iter()
        .map(|r| r.host_pages_written)
        .sum();
    let nand_pages: u64 = report
        .member_reports
        .iter()
        .map(|r| r.nand_pages_programmed)
        .sum();
    let members: Vec<JsonValue> = report
        .member_reports
        .iter()
        .zip(member_profiles)
        .enumerate()
        .map(|(i, (r, p))| {
            let sched = &report.member_sched[i];
            ObjectBuilder::new()
                .field("ops", r.ops)
                .field("host_pages_written", r.host_pages_written)
                .field("nand_pages_programmed", r.nand_pages_programmed)
                .field("nand_erases", r.nand_erases)
                // Schema 5: where this member's simulation time went.
                .field(
                    "phase_request_execution_secs",
                    p.request_execution.as_secs_f64(),
                )
                .field("phase_flush_secs", p.flush.as_secs_f64())
                .field("phase_predictor_secs", p.predictor.as_secs_f64())
                .field("phase_bgc_secs", p.bgc.as_secs_f64())
                .field("phase_reporting_secs", p.reporting.as_secs_f64())
                .field("phase_gc_copy_secs", p.gc_copy.as_secs_f64())
                // Schema 9: this member's tick super-phase and elided
                // ticks.
                .field("phase_tick_secs", p.tick.as_secs_f64())
                .field(
                    "ticks_skipped",
                    ff.member_ticks.get(i).copied().unwrap_or(0),
                )
                // Schema 6: straggler accounting (simulated-time facts)
                // and this member's steal count (a wall-clock fact).
                .field("steps", sched.steps)
                .field("lag_mean_us", sched.lag_mean_us)
                .field("lag_p99_us", sched.lag_p99_us)
                .field("lag_max_us", sched.lag_max_us)
                .field("straggler_requests", sched.straggler_requests)
                .field("straggler_fgc_requests", sched.straggler_fgc_requests)
                .field("straggler_time_us", sched.straggler_time_us)
                .field(
                    "steal_count",
                    telemetry.steal_counts.get(i).copied().unwrap_or(0),
                )
                .build()
        })
        .collect();
    let untracked = (run_secs - profile.accounted().as_secs_f64()).max(0.0);
    ObjectBuilder::new()
        .field("schema", "ssdsim-bench/9")
        .field("benchmark", report.workload.as_str())
        .field("policy", report.policy.as_str())
        .field("victim", report.member_reports[0].victim_policy.as_str())
        .field("seed", args.seed)
        .field("simulated_secs", report.duration_secs)
        .field("ops", report.ops)
        .field("host_pages_written", host_pages)
        .field("nand_pages_programmed", nand_pages)
        .field("wall_secs", wall_secs)
        .field("setup_secs", setup_secs)
        .field("run_secs", run_secs)
        .field("host_pages_per_wall_sec", per_sec(host_pages))
        .field("nand_pages_per_wall_sec", per_sec(nand_pages))
        .field("ops_per_wall_sec", per_sec(report.ops))
        // Schema 4: volume-level end-of-life outcome.
        .field(
            "degraded_members",
            report.degraded.as_ref().map_or(0, |d| d.degraded_members),
        )
        .field(
            "recovered_pages",
            report.degraded.as_ref().map_or(0, |d| d.recovered_pages),
        )
        .field(
            "lost_pages",
            report.degraded.as_ref().map_or(0, |d| d.lost_pages),
        )
        .field(
            "phase_request_execution_secs",
            profile.request_execution.as_secs_f64(),
        )
        .field("phase_flush_secs", profile.flush.as_secs_f64())
        .field("phase_predictor_secs", profile.predictor.as_secs_f64())
        .field("phase_bgc_secs", profile.bgc.as_secs_f64())
        .field("phase_reporting_secs", profile.reporting.as_secs_f64())
        .field("phase_gc_copy_secs", profile.gc_copy.as_secs_f64())
        // Schema 9: tick super-phase plus the array-wide fast-forward
        // counters (per-member counts live in `member_perf`).
        .field("phase_tick_secs", profile.tick.as_secs_f64())
        .field("fast_forward", args.fast_forward)
        .field("ticks_skipped", ff.ticks_skipped)
        .field("ff_spans", ff.ff_spans)
        .field("phase_untracked_secs", untracked)
        // Schema 5: the parallel-stepping width (1 = serial scheduler).
        .field("member_threads", args.member_threads as u64)
        .field(
            "array",
            ObjectBuilder::new()
                .field("members", report.members as u64)
                .field("chunk_pages", report.chunk_pages)
                .field("redundancy", report.redundancy.as_str())
                .field("gc_mode", report.gc_mode.as_str())
                .field("split_requests", report.split_requests)
                .field("routed_reads", report.routed_reads)
                // Schema 6: which driver stepped the members and how much
                // work moved between workers (zero under `barrier` or
                // with one thread).
                .field("array_sched", telemetry.sched.name())
                .field("epochs", telemetry.epochs)
                .field("steals", telemetry.steals)
                .build(),
        )
        .field("member_perf", JsonValue::Array(members))
        .build()
}

/// One simulated sweep cell's raw material: the report plus the wall-time
/// split, phase profile, and fast-forward counters (`ticks_skipped`,
/// `ff_spans`) the perf record is built from.
type SingleRun = (
    jitgc_core::system::SimReport,
    f64,
    f64,
    PhaseProfile,
    u64,
    u64,
);

/// Quiescence fast-forward counters of an array run: the aggregate plus
/// the per-member tick counts (index-aligned with `member_perf`).
struct FfCounters {
    ticks_skipped: u64,
    ff_spans: u64,
    member_ticks: Vec<u64>,
}

/// Serializes one cell's model prediction.
fn model_json(pred: &jitgc_model::Prediction) -> JsonValue {
    ObjectBuilder::new()
        .field("waf", pred.waf)
        .field("feasible", pred.feasible)
        .field("stall_proxy", pred.stall_proxy)
        .field("lifetime_host_bytes", pred.lifetime_host_bytes)
        .field("utilization", pred.utilization)
        .field("reserve_pages", pred.reserve_pages)
        .build()
}

/// The `--bench-json` wrapper of a screened sweep: a `screening` stats
/// section plus one `cells` entry per cell (simulated or not) carrying
/// the model prediction, the Pareto/simulated verdicts, and — for
/// simulated cells — the usual per-run perf record under `perf`.
fn screened_bench_record(
    args: &Args,
    cells: &[SweepCell],
    plan: &ScreenPlan,
    runs: &[Option<SingleRun>],
    duplicates: usize,
    model_eval_secs: f64,
) -> JsonValue {
    let entries: Vec<JsonValue> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            let benchmark = cell.benchmark.to_string();
            let policy = cell.policy.name();
            let mut b = ObjectBuilder::new()
                .field("benchmark", benchmark.as_str())
                .field("policy", policy.as_str())
                .field("op_permille", cell.op_permille)
                .field("simulated", plan.keep[i])
                .field("pareto", plan.pareto[i])
                .field("model", model_json(&plan.predictions[i]));
            if let Some((report, setup_secs, run_secs, profile, ticks, spans)) = &runs[i] {
                b = b.field(
                    "perf",
                    perf_record(
                        args,
                        report,
                        Wall {
                            setup_secs: *setup_secs,
                            run_secs: *run_secs,
                        },
                        profile,
                        *ticks,
                        *spans,
                    ),
                );
            }
            b.build()
        })
        .collect();
    ObjectBuilder::new()
        .field("schema", "ssdsim-bench/9")
        .field(
            "screening",
            ObjectBuilder::new()
                .field("mode", "model")
                .field("keep_frac", args.screen_keep)
                .field("total_cells", cells.len() as u64)
                .field("duplicate_cells_dropped", duplicates as u64)
                .field("simulated_cells", plan.simulated_cells() as u64)
                .field("pareto_cells", plan.pareto_cells() as u64)
                .field("model_eval_secs", model_eval_secs)
                .build(),
        )
        .field("cells", JsonValue::Array(entries))
        .build()
}

/// The extended sweep table: one row per cell (policy and OP columns
/// included), model predictions when the sweep was screened, and
/// `skipped` rows for cells the screen filtered out.
fn print_sweep_table(
    system: &SystemConfig,
    cells: &[SweepCell],
    plan: Option<&ScreenPlan>,
    runs: &[Option<SingleRun>],
) {
    println!(
        "{:<12}{:<16}{:>6}{:>11}{:>10}{:>8}{:>10}{:>12}",
        "benchmark", "policy", "OP\u{2030}", "model WAF", "IOPS", "WAF", "FGC", "p99 µs"
    );
    for (i, cell) in cells.iter().enumerate() {
        let op = cell.op_permille.unwrap_or_else(|| system.ftl.op_permille());
        let model_waf = plan.map_or_else(
            || "-".to_owned(),
            |p| {
                if p.predictions[i].feasible {
                    format!("{:.3}", p.predictions[i].waf)
                } else {
                    "inf".to_owned()
                }
            },
        );
        // Cell labels, not `report.policy`: ablation variants (e.g.
        // JIT-GC without SIP) self-report the base policy's name.
        match &runs[i] {
            Some((report, ..)) => println!(
                "{:<12}{:<16}{:>6}{:>11}{:>10.0}{:>8}{:>10}{:>12}",
                cell.benchmark.to_string(),
                cell.policy.name(),
                op,
                model_waf,
                report.iops,
                fmt_waf(report.waf),
                report.fgc_request_stalls + report.fgc_flush_stalls,
                report.latency_p99_us
            ),
            None => println!(
                "{:<12}{:<16}{:>6}{:>11}{:>10}{:>8}{:>10}{:>12}",
                cell.benchmark.to_string(),
                cell.policy.name(),
                op,
                model_waf,
                "skipped",
                "-",
                "-",
                "-"
            ),
        }
    }
}

/// Runs the `--array` path: one array simulation per requested benchmark,
/// swept across worker threads like the single-device path.
fn run_array(args: &Args, system: &SystemConfig, members: usize) {
    if args.timeline.is_some() {
        eprintln!("--timeline is not supported with --array");
        std::process::exit(2)
    }
    if args.policies.len() != 1 || !args.op_sweep.is_empty() || args.screen {
        eprintln!("--array supports a single --policy and no --op-sweep/--screen");
        std::process::exit(2)
    }
    let redundancy = if args.mirror {
        Redundancy::Mirror
    } else {
        Redundancy::None
    };
    let page_size = system.ftl.geometry().page_size().as_u64();
    // The stripe chunk is a whole number of pages; a non-multiple would
    // silently truncate the requested size, so reject it up front.
    if !(args.stripe_kb * 1024).is_multiple_of(page_size) {
        eprintln!(
            "--stripe-kb {} is not a multiple of the {page_size}-byte page size",
            args.stripe_kb
        );
        std::process::exit(2)
    }
    let chunk_pages = args.stripe_kb * 1024 / page_size;
    let config = ArrayConfig {
        members,
        chunk_pages,
        redundancy,
        gc_mode: args.gc_mode,
        sched: args.array_sched,
        member_threads: args.member_threads,
        system: system.clone(),
    };
    // Geometry and threading errors surface here as CLI diagnostics, not
    // as panics deep in the scheduler.
    if let Err(message) = config.validate() {
        eprintln!("invalid array configuration: {message}");
        std::process::exit(2)
    }
    let columns = match redundancy {
        Redundancy::None => members as u64,
        Redundancy::Mirror => members as u64 / 2,
    };
    // Scale the single-device sizing by the column count so each member
    // carries the load a standalone device would; with one plain member
    // this is exactly the single-device workload and the per-device
    // report is byte-identical to the non-array path.
    let workload_config = WorkloadConfig::builder()
        .working_set_pages((system.ftl.user_pages() - system.ftl.op_pages() / 2) * columns)
        .duration(SimDuration::from_secs(args.seconds))
        .mean_iops(args.iops * columns as f64)
        .burst_mean(args.burst)
        .seed(args.seed)
        .build();

    let policy = args.policies[0];
    let threads = if args.benchmarks.len() == 1 {
        1
    } else {
        args.threads
    };
    let profile_phases = args.bench_json.is_some();
    // Member stepping uses `member_threads` workers *inside* each run, so
    // cap the sweep width to keep the product within the machine.
    let config = &config;
    let runs = run_grid_capped(
        &args.benchmarks,
        threads,
        args.member_threads,
        |&benchmark| {
            let setup_start = Instant::now();
            let workload = benchmark.build(workload_config);
            let mut sim = config.build(|cfg| policy.build(cfg), workload);
            sim.set_bulk_gc(args.bulk_gc);
            sim.set_fast_forward(args.fast_forward);
            if profile_phases {
                sim.enable_phase_profiling();
            }
            let setup_secs = setup_start.elapsed().as_secs_f64();
            let run_start = Instant::now();
            let report = sim.run();
            let run_secs = run_start.elapsed().as_secs_f64();
            let member_profiles = sim.member_profiles();
            let ff = FfCounters {
                ticks_skipped: sim.ticks_skipped(),
                ff_spans: sim.ff_spans(),
                member_ticks: sim
                    .members()
                    .iter()
                    .map(jitgc_core::system::SsdSystem::ticks_skipped)
                    .collect(),
            };
            (
                report,
                setup_secs,
                run_secs,
                sim.phase_profile(),
                member_profiles,
                sim.sched_telemetry(),
                ff,
            )
        },
    );

    if let Some(path) = &args.bench_json {
        let records: Vec<JsonValue> = runs
            .iter()
            .map(
                |(report, setup_secs, run_secs, profile, member_profiles, telemetry, ff)| {
                    array_perf_record(
                        args,
                        report,
                        Wall {
                            setup_secs: *setup_secs,
                            run_secs: *run_secs,
                        },
                        profile,
                        member_profiles,
                        telemetry,
                        ff,
                    )
                },
            )
            .collect();
        let text = if records.len() == 1 {
            records[0].to_pretty()
        } else {
            JsonValue::Array(records).to_pretty()
        };
        std::fs::write(path, text).expect("write bench JSON");
        eprintln!("wrote perf record to {path}");
    }

    if args.json {
        let reports: Vec<JsonValue> = runs.iter().map(|(r, ..)| r.to_json()).collect();
        let text = if reports.len() == 1 {
            reports[0].to_pretty()
        } else {
            JsonValue::Array(reports).to_pretty()
        };
        println!("{text}");
        return;
    }

    if args.benchmarks.len() != 1 {
        println!(
            "{:<12}{:>10}{:>8}{:>10}{:>10}{:>12}{:>12}",
            "benchmark", "IOPS", "WAF", "FGC", "BGC blk", "p99 µs", "p999 µs"
        );
        for (report, ..) in &runs {
            println!(
                "{:<12}{:>10.0}{:>8}{:>10}{:>10}{:>12}{:>12}",
                report.workload,
                report.iops,
                fmt_waf(report.waf),
                report.fgc_request_stalls,
                report.bgc_blocks,
                report.latency_p99_us,
                report.latency_p999_us
            );
        }
        return;
    }
    let (report, ..) = runs.into_iter().next().expect("one benchmark ran");
    println!(
        "array           {} members, {} KiB chunks, {}, {}",
        report.members, args.stripe_kb, report.redundancy, report.gc_mode
    );
    println!(
        "scheduler       {}, {} member thread(s)",
        args.array_sched.name(),
        args.member_threads
    );
    println!("policy          {}", report.policy);
    println!("workload        {}", report.workload);
    println!("duration        {:.1} s", report.duration_secs);
    println!("requests        {}", report.ops);
    println!("IOPS            {:.0}", report.iops);
    println!("split requests  {}", report.split_requests);
    if report.redundancy == "mirror" {
        println!("routed reads    {}", report.routed_reads);
    }
    println!("WAF             {}", fmt_waf(report.waf));
    println!("erases          {}", report.nand_erases);
    println!(
        "erase spread    min {} / mean {:.1} / max {} (σ {:.2})",
        report.erase_spread.min,
        report.erase_spread.mean,
        report.erase_spread.max,
        report.erase_spread.std_dev
    );
    println!("FGC stalls      {}", report.fgc_request_stalls);
    println!("BGC blocks      {}", report.bgc_blocks);
    println!(
        "latency (µs)    mean {} / p50 {} / p99 {} / p999 {} / max {}",
        report.latency_mean_us,
        report.latency_p50_us,
        report.latency_p99_us,
        report.latency_p999_us,
        report.latency_max_us
    );
    if let Some(d) = &report.degraded {
        println!(
            "degraded        {} read-only members / {} pages recovered / {} pages lost",
            d.degraded_members, d.recovered_pages, d.lost_pages
        );
    }
    for (i, member) in report.member_reports.iter().enumerate() {
        println!(
            "member {i:<8} {:>8} ops  WAF {}  erases {}  FGC {}  p99 {} µs",
            member.ops,
            fmt_waf(member.waf),
            member.nand_erases,
            member.fgc_request_stalls,
            member.latency_p99_us
        );
    }
}

fn main() {
    let args = parse_args();

    let mut system = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2)
            });
            let value = JsonValue::parse(&text).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(2)
            });
            SystemConfig::from_json(&value).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(2)
            })
        }
        None => SystemConfig::default_sim(),
    };
    system.victim = args.victim;
    system.prefill = args.prefill;
    system.strict_tau_flush = args.strict_tau_flush;
    system.wear_leveling = args.wear_leveling;
    if let Some(qd) = args.queue_depth {
        if qd == 0 {
            eprintln!("--queue-depth must be at least 1");
            std::process::exit(2)
        }
        system.queue_depth = qd;
    }
    if args.in_device_manager {
        system.manager_placement = ManagerPlacement::Device;
    }
    if args.timeline.is_some() {
        system.record_timeline = true;
    }
    if args.hot_cold {
        // Rebuild from the existing config so every other setting (SIP
        // threshold, timing, endurance, …) survives the flag.
        system.ftl = system
            .ftl
            .to_builder()
            .hot_cold_streams(SimDuration::from_secs(5))
            .build();
    }
    if let Some(limit) = args.endurance {
        system.ftl = system.ftl.to_builder().endurance_limit(limit).build();
    }
    if args.fault_program > 0.0 || args.fault_erase > 0.0 || args.fault_read > 0.0 {
        system.ftl = system
            .ftl
            .to_builder()
            .fault(FaultConfig {
                seed: args.fault_seed,
                program_rate: args.fault_program,
                erase_rate: args.fault_erase,
                read_rate: args.fault_read,
                ..FaultConfig::default()
            })
            .build();
    }

    if let Some(path) = &args.dump_config {
        std::fs::write(path, system.to_json().to_pretty()).expect("write config JSON");
        eprintln!("wrote effective config to {path}");
        return;
    }

    if let Some(members) = args.array {
        if members == 0 {
            eprintln!("--array needs at least one member");
            std::process::exit(2)
        }
        run_array(&args, &system, members);
        return;
    }

    // Expand the benchmark × policy × OP cross product into sweep cells,
    // dropping exact duplicates before any work is dispatched.
    let op_values: Vec<Option<u64>> = if args.op_sweep.is_empty() {
        vec![None]
    } else {
        args.op_sweep.iter().map(|&p| Some(p)).collect()
    };
    let (cells, duplicates) = expand_cells(&args.benchmarks, &args.policies, &op_values);
    if duplicates > 0 {
        eprintln!("sweep: dropped {duplicates} duplicate cell(s)");
    }
    if cells.len() != 1 && args.timeline.is_some() {
        eprintln!("--timeline requires a single sweep cell");
        std::process::exit(2)
    }

    // Screening: predict every cell analytically and simulate only the
    // predicted Pareto frontier plus the keep-fraction fill; skipped
    // cells keep their predictions in the bench record.
    let screen_start = Instant::now();
    let plan = args
        .screen
        .then(|| screen_cells(&system, &cells, args.iops, args.burst, args.screen_keep));
    let model_eval_secs = screen_start.elapsed().as_secs_f64();
    let keep: Vec<bool> = plan
        .as_ref()
        .map_or_else(|| vec![true; cells.len()], |p| p.keep.clone());
    let kept: Vec<usize> = (0..cells.len()).filter(|&i| keep[i]).collect();
    if let Some(plan) = &plan {
        eprintln!(
            "screen: simulating {}/{} cells ({} on the predicted frontier)",
            kept.len(),
            cells.len(),
            plan.pareto_cells()
        );
    }

    // Each scenario is an independent simulation, so the sweep runs the
    // kept cells across worker threads; results come back in input order
    // regardless of the thread count. A single cell takes the plain
    // serial path inside `run_grid`. Screening changes which cells run,
    // never what a run produces: a simulated cell's report is
    // byte-identical to the same cell of an exhaustive sweep.
    let threads = if kept.len() == 1 { 1 } else { args.threads };
    let profile_phases = args.bench_json.is_some();
    let bulk_gc = args.bulk_gc;
    let fast_forward = args.fast_forward;
    let system_ref = &system;
    let cells_ref = &cells;
    let seconds = args.seconds;
    let (iops, burst, seed) = (args.iops, args.burst, args.seed);
    let results = run_grid(&kept, threads, |&i| {
        let cell = cells_ref[i];
        let setup_start = Instant::now();
        let cell_system = cell.system(system_ref);
        let workload_config = WorkloadConfig::builder()
            .working_set_pages(cell_system.ftl.user_pages() - cell_system.ftl.op_pages() / 2)
            .duration(SimDuration::from_secs(seconds))
            .mean_iops(iops)
            .burst_mean(burst)
            .seed(seed)
            .build();
        let workload = cell.benchmark.build(workload_config);
        let policy = cell.policy.build(&cell_system);
        let mut sim = SsdSystem::new(cell_system, policy, workload);
        sim.set_bulk_gc(bulk_gc);
        sim.set_fast_forward(fast_forward);
        if profile_phases {
            sim.enable_phase_profiling();
        }
        let setup_secs = setup_start.elapsed().as_secs_f64();
        let run_start = Instant::now();
        let report = sim.run();
        let run_secs = run_start.elapsed().as_secs_f64();
        (
            report,
            setup_secs,
            run_secs,
            sim.phase_profile(),
            sim.ticks_skipped(),
            sim.ff_spans(),
        )
    });
    // Scatter the kept-cell results back into cell order; screened-out
    // cells stay `None`.
    let mut runs: Vec<Option<SingleRun>> = (0..cells.len()).map(|_| None).collect();
    for (&slot, result) in kept.iter().zip(results) {
        runs[slot] = Some(result);
    }

    if let Some(path) = &args.bench_json {
        let text = match &plan {
            Some(plan) => {
                screened_bench_record(&args, &cells, plan, &runs, duplicates, model_eval_secs)
                    .to_pretty()
            }
            None => {
                let records: Vec<JsonValue> = runs
                    .iter()
                    .map(|run| {
                        let (report, setup_secs, run_secs, profile, ticks, spans) =
                            run.as_ref().expect("unscreened sweeps simulate every cell");
                        perf_record(
                            &args,
                            report,
                            Wall {
                                setup_secs: *setup_secs,
                                run_secs: *run_secs,
                            },
                            profile,
                            *ticks,
                            *spans,
                        )
                    })
                    .collect();
                if records.len() == 1 {
                    records[0].to_pretty()
                } else {
                    JsonValue::Array(records).to_pretty()
                }
            }
        };
        std::fs::write(path, text).expect("write bench JSON");
        eprintln!("wrote perf record to {path}");
    }

    if cells.len() != 1 {
        if args.json {
            // Simulated cells only, in cell order (screened-out cells
            // have no report to print).
            let reports: Vec<JsonValue> = runs
                .iter()
                .flatten()
                .map(|(report, ..)| report.to_json())
                .collect();
            println!("{}", JsonValue::Array(reports).to_pretty());
        } else if args.policies.len() == 1 && args.op_sweep.is_empty() && plan.is_none() {
            // The classic benchmark-only sweep table, unchanged.
            println!(
                "{:<12}{:>10}{:>8}{:>10}{:>10}{:>12}",
                "benchmark", "IOPS", "WAF", "FGC", "BGC blk", "p99 µs"
            );
            for run in runs.iter().flatten() {
                let (report, ..) = run;
                println!(
                    "{:<12}{:>10.0}{:>8}{:>10}{:>10}{:>12}",
                    report.workload,
                    report.iops,
                    fmt_waf(report.waf),
                    report.fgc_request_stalls + report.fgc_flush_stalls,
                    report.bgc_blocks,
                    report.latency_p99_us
                );
            }
        } else {
            print_sweep_table(&system, &cells, plan.as_ref(), &runs);
        }
        return;
    }
    let (report, ..) = runs
        .into_iter()
        .next()
        .flatten()
        .expect("a single cell is always simulated");

    if let Some(path) = &args.timeline {
        let mut csv = String::from(
            "t_secs,free_pages,target_pages,host_pages_interval,fgc_cumulative,bgc_blocks_cumulative,waf\n",
        );
        for s in &report.timeline {
            csv.push_str(&format!(
                "{:.3},{},{},{},{},{},{:.4}\n",
                s.t_secs,
                s.free_pages,
                s.target_pages,
                s.host_pages_interval,
                s.fgc_cumulative,
                s.bgc_blocks_cumulative,
                s.waf
            ));
        }
        std::fs::write(path, csv).expect("write timeline CSV");
        eprintln!("wrote {} interval samples to {path}", report.timeline.len());
    }

    if args.json {
        println!("{}", report.to_json().to_pretty());
        return;
    }
    println!("policy          {}", report.policy);
    println!("workload        {}", report.workload);
    println!("victim          {}", report.victim_policy);
    println!("duration        {:.1} s", report.duration_secs);
    println!("requests        {}", report.ops);
    println!("IOPS            {:.0}", report.iops);
    println!("WAF             {}", fmt_waf(report.waf));
    println!("erases          {}", report.nand_erases);
    println!(
        "wear            min {} / mean {:.1} / max {} (σ {:.2})",
        report.wear.min, report.wear.mean, report.wear.max, report.wear.std_dev
    );
    println!(
        "FGC stalls      {} requests + {} flush episodes",
        report.fgc_request_stalls, report.fgc_flush_stalls
    );
    println!("throttled       {}", report.throttled_requests);
    println!("BGC blocks      {}", report.bgc_blocks);
    println!("GC migrations   {}", report.gc_pages_migrated);
    println!(
        "latency (µs)    mean {} / p50 {} / p99 {} / p999 {} / max {}",
        report.latency_mean_us,
        report.latency_p50_us,
        report.latency_p99_us,
        report.latency_p999_us,
        report.latency_max_us
    );
    if let Some(acc) = report.prediction_accuracy_percent {
        println!("prediction      {acc:.1} %");
    }
    if let Some(sip) = report.sip_filtered_fraction {
        println!("SIP filtered    {:.1} %", sip * 100.0);
    }
    if let Some(hit) = report.cache_hit_ratio {
        println!("cache hits      {:.1} %", hit * 100.0);
    }
    if let Some(d) = &report.degraded {
        println!(
            "degraded        read-only {} / retired {} blocks / {} program retries / {} read failures",
            d.read_only,
            d.retired_blocks,
            d.program_retries,
            d.gc_read_failures + d.host_read_failures
        );
        if let (Some(at), Some(bytes)) = (d.read_only_at_secs, d.lifetime_host_bytes) {
            println!("lifetime        {bytes} host bytes accepted before read-only at {at:.1} s");
        }
    }
}
