//! Analytical pre-filtering of simulation sweeps.
//!
//! A design-space sweep (`ssdsim --benchmark all --policy all
//! --op-sweep …`) is a grid of independent simulations, and most cells
//! are nowhere near any trade-off frontier — they dominate nothing and
//! answer no question. The screening layer evaluates every cell with the
//! [`jitgc-model`](jitgc_model) mean-field model (microseconds per cell),
//! keeps the predicted Pareto frontier over (WAF ↓, lifetime ↑, stall
//! proxy ↓) plus a configurable fill fraction of runners-up, and hands
//! only those cells to the simulator. Skipped cells still appear in the
//! `--bench-json` record with their model predictions, so nothing is
//! silently dropped.
//!
//! The cells that *are* simulated run through the exact same
//! [`run_grid`](crate::run_grid) path as an exhaustive sweep, so their
//! reports are byte-identical to the same cells of an unscreened run —
//! screening changes which cells run, never what a run produces.

use crate::PolicyKind;
use jitgc_core::system::SystemConfig;
use jitgc_model::{predict, PolicyModel, Prediction, WorkloadSpec};
use jitgc_workload::BenchmarkKind;

/// One cell of a CLI sweep: a GC policy × a benchmark × an optional
/// over-provisioning override (permille; `None` keeps the base config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// The GC policy under test.
    pub policy: PolicyKind,
    /// The benchmark personality driving the run.
    pub benchmark: BenchmarkKind,
    /// Over-provisioning override in permille of user capacity.
    pub op_permille: Option<u64>,
}

impl SweepCell {
    /// The system configuration this cell runs under: the base config
    /// with the cell's OP override applied (geometry rescales with it).
    #[must_use]
    pub fn system(&self, base: &SystemConfig) -> SystemConfig {
        match self.op_permille {
            None => base.clone(),
            Some(p) => {
                let mut system = base.clone();
                system.ftl = system.ftl.to_builder().op_permille(p).build();
                system
            }
        }
    }
}

/// Expands the `benchmarks × policies × op values` cross product in
/// deterministic order and drops exact duplicate cells (same policy,
/// benchmark, and OP — e.g. `--policy l-bgc,reserved:500` names the same
/// configuration twice). Returns the unique cells in first-occurrence
/// order and the number of duplicates dropped.
#[must_use]
pub fn expand_cells(
    benchmarks: &[BenchmarkKind],
    policies: &[PolicyKind],
    op_values: &[Option<u64>],
) -> (Vec<SweepCell>, usize) {
    let mut cells: Vec<SweepCell> = Vec::new();
    let mut dropped = 0usize;
    for &benchmark in benchmarks {
        for &policy in policies {
            for &op_permille in op_values {
                let cell = SweepCell {
                    policy,
                    benchmark,
                    op_permille,
                };
                if cells.contains(&cell) {
                    dropped += 1;
                } else {
                    cells.push(cell);
                }
            }
        }
    }
    (cells, dropped)
}

/// Maps the harness policy to the model's view of it.
#[must_use]
pub fn model_policy(kind: PolicyKind) -> PolicyModel {
    match kind {
        PolicyKind::NoBgc => PolicyModel::NoBgc,
        PolicyKind::ReservedPermille(permille) => PolicyModel::Reserved { permille },
        PolicyKind::Adp => PolicyModel::Adp,
        PolicyKind::Idle => PolicyModel::Idle,
        PolicyKind::Jit => PolicyModel::Jit { sip: true },
        PolicyKind::JitNoSip => PolicyModel::Jit { sip: false },
    }
}

/// The screening verdict for a sweep: per-cell model predictions, the
/// predicted Pareto membership, and which cells to actually simulate.
#[derive(Debug, Clone)]
pub struct ScreenPlan {
    /// Model prediction for every cell, in cell order.
    pub predictions: Vec<Prediction>,
    /// Whether the cell sits on its benchmark's predicted Pareto frontier
    /// over (WAF ↓, lifetime ↑, stall proxy ↓).
    pub pareto: Vec<bool>,
    /// Whether the cell will be simulated (frontier + keep-fraction fill).
    pub keep: Vec<bool>,
}

impl ScreenPlan {
    /// Number of cells selected for simulation.
    #[must_use]
    pub fn simulated_cells(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Number of cells on the predicted Pareto frontier.
    #[must_use]
    pub fn pareto_cells(&self) -> usize {
        self.pareto.iter().filter(|&&p| p).count()
    }
}

/// `a` dominates `b` when it is no worse on every objective and strictly
/// better on at least one. Lifetime is maximized; missing lifetimes
/// (unlimited endurance) compare equal and drop out of the ordering.
fn dominates(a: &Prediction, b: &Prediction) -> bool {
    let life = |p: &Prediction| p.lifetime_host_bytes.unwrap_or(0.0);
    let no_worse = a.waf <= b.waf && a.stall_proxy <= b.stall_proxy && life(a) >= life(b);
    let better = a.waf < b.waf || a.stall_proxy < b.stall_proxy || life(a) > life(b);
    no_worse && better
}

/// Screens a sweep: predicts every cell analytically, marks each
/// benchmark's Pareto frontier, and keeps the frontier plus the
/// best-ranked runners-up until `max(1, ⌊keep_frac × cells⌋)` of the
/// benchmark's cells are selected, so the fill stays *within* the
/// requested budget (the whole frontier always survives, even past the
/// fraction — recovering it is the point).
///
/// Deterministic: predictions are pure functions and every tie breaks on
/// cell index.
#[must_use]
pub fn screen_cells(
    base: &SystemConfig,
    cells: &[SweepCell],
    mean_iops: f64,
    burst_mean: f64,
    keep_frac: f64,
) -> ScreenPlan {
    let predictions: Vec<Prediction> = cells
        .iter()
        .map(|cell| {
            let system = cell.system(base);
            let spec = WorkloadSpec::for_system(&system, mean_iops, burst_mean);
            predict(&system, model_policy(cell.policy), cell.benchmark, &spec)
        })
        .collect();

    let mut pareto = vec![false; cells.len()];
    let mut keep = vec![false; cells.len()];
    let benchmarks: Vec<BenchmarkKind> = {
        let mut seen = Vec::new();
        for cell in cells {
            if !seen.contains(&cell.benchmark) {
                seen.push(cell.benchmark);
            }
        }
        seen
    };
    for benchmark in benchmarks {
        let group: Vec<usize> = (0..cells.len())
            .filter(|&i| cells[i].benchmark == benchmark)
            .collect();
        for &i in &group {
            // Infeasible cells never make the frontier: their WAF/stall
            // sentinels dominate nothing and simulating them answers no
            // trade-off question.
            pareto[i] = predictions[i].feasible
                && !group
                    .iter()
                    .any(|&j| j != i && dominates(&predictions[j], &predictions[i]));
            keep[i] = pareto[i];
        }
        // Fill with runners-up, best predicted WAF first (stall proxy,
        // then cell index break ties), until the fraction is met. Floor,
        // not ceil: the fill must not overshoot the requested budget
        // (`--screen-keep 0.25` on 42 cells means ≤ 10 fill cells, not
        // 11); at least one cell per benchmark always simulates.
        // (A WAF/stall-interleaved fill was tried and recovered *fewer*
        // simulated-frontier cells at every width — the model's stall
        // proxy is coarser than its WAF, so WAF rank is the better
        // spend.)
        let target = ((keep_frac * group.len() as f64).floor() as usize).max(1);
        let mut rest: Vec<usize> = group.iter().copied().filter(|&i| !keep[i]).collect();
        rest.sort_by(|&a, &b| {
            predictions[a]
                .waf
                .total_cmp(&predictions[b].waf)
                .then(
                    predictions[a]
                        .stall_proxy
                        .total_cmp(&predictions[b].stall_proxy),
                )
                .then(a.cmp(&b))
        });
        let kept = group.iter().filter(|&&i| keep[i]).count();
        for &i in rest.iter().take(target.saturating_sub(kept)) {
            keep[i] = true;
        }
    }
    ScreenPlan {
        predictions,
        pareto,
        keep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_policies() -> Vec<PolicyKind> {
        vec![
            PolicyKind::NoBgc,
            PolicyKind::ReservedPermille(500),
            PolicyKind::ReservedPermille(1_500),
            PolicyKind::Adp,
            PolicyKind::Idle,
            PolicyKind::Jit,
            PolicyKind::JitNoSip,
        ]
    }

    #[test]
    fn expansion_is_the_ordered_cross_product() {
        let (cells, dropped) = expand_cells(
            &[BenchmarkKind::Ycsb, BenchmarkKind::TpcC],
            &[PolicyKind::Jit, PolicyKind::NoBgc],
            &[None, Some(140)],
        );
        assert_eq!(cells.len(), 8);
        assert_eq!(dropped, 0);
        assert_eq!(cells[0].benchmark, BenchmarkKind::Ycsb);
        assert_eq!(cells[0].policy, PolicyKind::Jit);
        assert_eq!(cells[1].op_permille, Some(140));
    }

    #[test]
    fn duplicate_cells_are_dropped_and_counted() {
        let (cells, dropped) = expand_cells(
            &[BenchmarkKind::Ycsb],
            &[
                PolicyKind::ReservedPermille(500),
                PolicyKind::ReservedPermille(500),
                PolicyKind::Jit,
            ],
            &[None],
        );
        assert_eq!(cells.len(), 2);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn op_override_rescales_the_geometry() {
        let base = SystemConfig::default_sim();
        let cell = SweepCell {
            policy: PolicyKind::Jit,
            benchmark: BenchmarkKind::Ycsb,
            op_permille: Some(200),
        };
        let system = cell.system(&base);
        assert_eq!(system.ftl.op_permille(), 200);
        assert!(system.ftl.op_pages() > base.ftl.op_pages());
        assert_eq!(system.ftl.user_pages(), base.ftl.user_pages());
    }

    #[test]
    fn frontier_cells_are_always_kept() {
        let base = SystemConfig::default_sim();
        let (cells, _) = expand_cells(
            &[BenchmarkKind::Ycsb, BenchmarkKind::Bonnie],
            &all_policies(),
            &[None],
        );
        let plan = screen_cells(&base, &cells, 250.0, 1024.0, 0.25);
        assert_eq!(plan.predictions.len(), cells.len());
        for i in 0..cells.len() {
            if plan.pareto[i] {
                assert!(plan.keep[i], "frontier cell {i} was not kept");
            }
        }
        assert!(plan.pareto_cells() >= 2, "each benchmark has a frontier");
    }

    #[test]
    fn screening_simulates_at_most_the_fill_or_the_frontier() {
        let base = SystemConfig::default_sim();
        let (cells, _) = expand_cells(
            BenchmarkKind::all().as_ref(),
            &all_policies(),
            &[None, Some(140), Some(200)],
        );
        let plan = screen_cells(&base, &cells, 250.0, 1024.0, 0.25);
        // Per benchmark: kept ≤ max(frontier size, ⌊0.25 × cells⌋).
        for benchmark in BenchmarkKind::all() {
            let group: Vec<usize> = (0..cells.len())
                .filter(|&i| cells[i].benchmark == benchmark)
                .collect();
            let kept = group.iter().filter(|&&i| plan.keep[i]).count();
            let frontier = group.iter().filter(|&&i| plan.pareto[i]).count();
            let fill = ((0.25 * group.len() as f64).floor() as usize).max(1);
            assert!(
                kept <= frontier.max(fill),
                "{benchmark}: kept {kept} > max(frontier {frontier}, fill {fill})"
            );
            assert!(kept >= 1, "{benchmark}: nothing kept");
        }
    }

    #[test]
    fn infeasible_cells_are_never_on_the_frontier() {
        let base = SystemConfig::default_sim();
        let (cells, _) = expand_cells(
            &[BenchmarkKind::Ycsb],
            &[PolicyKind::ReservedPermille(2_000), PolicyKind::Jit],
            &[None],
        );
        let plan = screen_cells(&base, &cells, 250.0, 1024.0, 1.0);
        assert!(!plan.predictions[0].feasible);
        assert!(!plan.pareto[0]);
        // keep_frac 1.0 still simulates everything, feasible or not.
        assert!(plan.keep.iter().all(|&k| k));
    }

    #[test]
    fn screening_is_deterministic() {
        let base = SystemConfig::default_sim();
        let (cells, _) = expand_cells(BenchmarkKind::all().as_ref(), &all_policies(), &[None]);
        let a = screen_cells(&base, &cells, 250.0, 1024.0, 0.25);
        let b = screen_cells(&base, &cells, 250.0, 1024.0, 0.25);
        assert_eq!(a.keep, b.keep);
        assert_eq!(a.pareto, b.pareto);
    }
}
