//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Each `[[bench]]` target in this crate (with `harness = false`) is one
//! experiment; this library holds the pieces they share: the policy
//! matrix, the standard experiment configuration, the runner, and table
//! formatting.
//!
//! Run everything with `cargo bench -p jitgc-bench`, or a single
//! experiment with e.g.
//! `cargo bench -p jitgc-bench --bench fig7_policy_comparison`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod runner;
mod screen;

pub use runner::{capped_sweep_width, default_threads, run_grid, run_grid_capped};
pub use screen::{expand_cells, model_policy, screen_cells, ScreenPlan, SweepCell};

use jitgc_core::policy::{AdpGc, GcPolicy, IdleGc, JitGc, NoBgc, ReservedCapacity};
use jitgc_core::system::{SimReport, SsdSystem, SystemConfig};
use jitgc_sim::SimDuration;
use jitgc_workload::{BenchmarkKind, WorkloadConfig};

/// The policies compared across experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// No background GC at all.
    NoBgc,
    /// Fixed reserve `C_resv = permille/1000 × C_OP`; 500 is the paper's
    /// L-BGC, 1500 its A-BGC.
    ReservedPermille(u64),
    /// The paper's adaptive device-internal baseline.
    Adp,
    /// Related-work baseline: idle-time-exploiting BGC (Park et al.,
    /// the paper's reference [7]).
    Idle,
    /// The paper's contribution.
    Jit,
    /// JIT-GC with SIP victim filtering disabled (ablation).
    JitNoSip,
}

impl PolicyKind {
    /// Display name matching the paper's figures.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            PolicyKind::NoBgc => "No-BGC".into(),
            PolicyKind::ReservedPermille(500) => "L-BGC".into(),
            PolicyKind::ReservedPermille(1_500) => "A-BGC".into(),
            PolicyKind::ReservedPermille(p) => format!("{:.2}OP", p as f64 / 1000.0),
            PolicyKind::Adp => "ADP-GC".into(),
            PolicyKind::Idle => "IDLE-GC".into(),
            PolicyKind::Jit => "JIT-GC".into(),
            PolicyKind::JitNoSip => "JIT-GC (no SIP)".into(),
        }
    }

    /// Instantiates the policy for the given system configuration.
    #[must_use]
    pub fn build(self, config: &SystemConfig) -> Box<dyn GcPolicy> {
        let (bw, gc_bw) = config.default_bandwidths();
        match self {
            PolicyKind::NoBgc => Box::new(NoBgc),
            PolicyKind::ReservedPermille(permille) => Box::new(ReservedCapacity::of_op_permille(
                config.op_capacity(),
                permille,
            )),
            PolicyKind::Adp => Box::new(AdpGc::new(
                config.flusher_period,
                config.tau_expire(),
                config.cdh_percentile,
                config.cdh_bin_bytes,
                bw,
                gc_bw,
            )),
            PolicyKind::Idle => Box::new(IdleGc::default()),
            PolicyKind::Jit => Box::new(JitGc::from_system_config(config)),
            PolicyKind::JitNoSip => {
                Box::new(JitGc::from_system_config(config).without_sip_filtering())
            }
        }
    }
}

/// Parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// System (FTL + cache + engine) configuration.
    pub system: SystemConfig,
    /// Simulated workload duration.
    pub duration: SimDuration,
    /// Workload arrival rate.
    pub mean_iops: f64,
    /// Mean macro-burst length in requests.
    pub burst_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Experiment {
    /// The standard configuration used by every paper experiment: the
    /// `default_sim` system (aged device, scale model documented there),
    /// bursty arrivals whose burst volume straddles the L-BGC/A-BGC
    /// reserve range, 600 simulated seconds.
    #[must_use]
    pub fn standard() -> Self {
        Experiment {
            system: SystemConfig::default_sim(),
            duration: SimDuration::from_secs(600),
            mean_iops: 250.0,
            burst_mean: 1_024.0,
            seed: 42,
        }
    }

    /// A faster configuration for smoke tests (same shape, shorter run).
    #[must_use]
    pub fn quick() -> Self {
        Experiment {
            duration: SimDuration::from_secs(120),
            ..Experiment::standard()
        }
    }

    /// Runs one `(policy, benchmark)` cell and returns its report.
    ///
    /// The working set leaves exactly `0.5 × C_OP` of the logical space
    /// unused, putting the paper's A-BGC (`C_resv = 1.5 × C_OP`) right at
    /// its own feasibility bound `C_resv ≤ C_unused + C_OP`. The device is
    /// aged (pre-filled) before measurement; see
    /// [`SystemConfig::default_sim`] for the scale model.
    #[must_use]
    pub fn run(&self, policy: PolicyKind, benchmark: BenchmarkKind) -> SimReport {
        let wl_cfg = WorkloadConfig::builder()
            .working_set_pages(self.system.ftl.user_pages() - self.system.ftl.op_pages() / 2)
            .duration(self.duration)
            .mean_iops(self.mean_iops)
            .burst_mean(self.burst_mean)
            .seed(self.seed)
            .build();
        let workload = benchmark.build(wl_cfg);
        let policy = policy.build(&self.system);
        SsdSystem::new(self.system.clone(), policy, workload).run()
    }
}

/// Renders a row-per-benchmark, column-per-variant table of `f64` cells.
#[must_use]
pub fn format_table(
    title: &str,
    columns: &[String],
    rows: &[(String, Vec<f64>)],
    precision: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n=== {title} ===\n"));
    out.push_str(&format!("{:<12}", ""));
    for c in columns {
        out.push_str(&format!("{c:>16}"));
    }
    out.push('\n');
    for (name, cells) in rows {
        out.push_str(&format!("{name:<12}"));
        for v in cells {
            out.push_str(&format!("{v:>16.precision$}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_match_paper() {
        assert_eq!(PolicyKind::ReservedPermille(500).name(), "L-BGC");
        assert_eq!(PolicyKind::ReservedPermille(1_500).name(), "A-BGC");
        assert_eq!(PolicyKind::ReservedPermille(750).name(), "0.75OP");
        assert_eq!(PolicyKind::Jit.name(), "JIT-GC");
    }

    #[test]
    fn all_policies_build() {
        let cfg = SystemConfig::small_for_tests();
        for kind in [
            PolicyKind::NoBgc,
            PolicyKind::ReservedPermille(1_000),
            PolicyKind::Adp,
            PolicyKind::Jit,
            PolicyKind::JitNoSip,
        ] {
            let p = kind.build(&cfg);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn format_table_layout() {
        let t = format_table(
            "T",
            &["a".into(), "b".into()],
            &[("row".into(), vec![1.0, 2.0])],
            2,
        );
        assert!(t.contains("=== T ==="));
        assert!(t.contains("row"));
        assert!(t.contains("2.00"));
    }
}
