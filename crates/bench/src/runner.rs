//! Multi-threaded scenario-sweep runner.
//!
//! Every figure and table in the paper is a grid of independent
//! simulation runs (policy × benchmark, or a parameter sweep). Each run
//! owns its whole world — system, device, workload RNG — so the grid is
//! embarrassingly parallel, and results are **deterministic by
//! construction**: `run_grid` returns results indexed exactly like its
//! input slice, so the output is byte-identical no matter how many
//! worker threads execute it (including one).
//!
//! Work is distributed dynamically (an atomic cursor over the scenario
//! list) rather than chunked statically, because run times vary wildly
//! across policies — No-BGC cells finish in a fraction of a JIT-GC
//! cell's time.

use crate::{Experiment, PolicyKind};
use jitgc_core::system::SimReport;
use jitgc_workload::BenchmarkKind;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Worker-thread count matching the machine (at least 1).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `run` over every scenario in `configs` on up to `n_threads`
/// worker threads and returns the results **in input order**.
///
/// The closure must be a pure function of its scenario (no shared
/// mutable state), which makes the result independent of the thread
/// count; `n_threads <= 1` degenerates to a plain serial loop with no
/// thread machinery at all.
///
/// # Panics
///
/// Propagates a panic from any scenario run.
pub fn run_grid<C, R, F>(configs: &[C], n_threads: usize, run: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    run_grid_inner(configs, n_threads, run)
}

/// [`run_grid`] for scenarios that are themselves multi-threaded — array
/// runs stepping members on `threads_per_run` workers each. The sweep
/// width is capped so `sweep threads × threads-per-run` never exceeds
/// [`available_parallelism`](std::thread::available_parallelism):
/// without the cap a `--benchmark all --array 8 --member-threads 4`
/// sweep would put dozens of compute-bound threads on a handful of
/// cores and thrash instead of speeding up.
///
/// `threads_per_run` must be the *actual* per-run thread count — a
/// serial `--member-threads 1` run costs one thread and does not shrink
/// the sweep at all (`0` is treated as the same serial case). A cap
/// below the requested width is logged to stderr exactly once for the
/// whole sweep, not per run. Results are unaffected — every scenario
/// (and every member step schedule inside it) is deterministic for any
/// thread count.
pub fn run_grid_capped<C, R, F>(
    configs: &[C],
    n_threads: usize,
    threads_per_run: usize,
    run: F,
) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    let cores = default_threads();
    let width = capped_sweep_width(n_threads, configs.len(), threads_per_run, cores);
    let requested = n_threads.min(configs.len()).max(1);
    if width < requested {
        eprintln!(
            "run_grid: capping sweep width {requested} -> {width} \
             ({} member threads per run, {cores} cores)",
            threads_per_run.max(1)
        );
    }
    run_grid_inner(configs, width, run)
}

/// The sweep width [`run_grid_capped`] actually uses: the requested
/// width, clamped to the number of runs, then to however many whole
/// runs of `threads_per_run` threads fit in `cores` (always at least
/// one — a single run may legitimately use every core by itself).
#[must_use]
pub fn capped_sweep_width(
    requested: usize,
    runs: usize,
    threads_per_run: usize,
    cores: usize,
) -> usize {
    // 0 and 1 both mean the serial path: the run costs one thread.
    let per_run = threads_per_run.max(1);
    let cap = (cores / per_run).max(1);
    requested.min(runs).max(1).min(cap)
}

fn run_grid_inner<C, R, F>(configs: &[C], n_threads: usize, run: F) -> Vec<R>
where
    C: Sync,
    R: Send,
    F: Fn(&C) -> R + Sync,
{
    let n_threads = n_threads.min(configs.len()).max(1);
    if n_threads == 1 {
        return configs.iter().map(run).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(configs.len());
    slots.resize_with(configs.len(), || None);
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            let tx = tx.clone();
            let next = &next;
            let run = &run;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(config) = configs.get(i) else {
                    break;
                };
                let result = run(config);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Receiving inside the scope keeps memory bounded: results are
        // placed into their slots as workers finish, in any order.
        for (i, result) in rx {
            slots[i] = Some(result);
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("scope joined every worker"))
        .collect()
}

impl Experiment {
    /// Runs every `(policy, benchmark)` cell on up to `n_threads` threads;
    /// `results[i]` belongs to `cells[i]` regardless of thread count.
    #[must_use]
    pub fn run_cells(
        &self,
        cells: &[(PolicyKind, BenchmarkKind)],
        n_threads: usize,
    ) -> Vec<SimReport> {
        run_grid(cells, n_threads, |&(policy, benchmark)| {
            self.run(policy, benchmark)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let inputs: Vec<u64> = (0..40).collect();
        let out = run_grid(&inputs, 4, |&x| x * x);
        assert_eq!(out, inputs.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_threaded_agree() {
        let inputs: Vec<u64> = (0..23).collect();
        let serial = run_grid(&inputs, 1, |&x| x.wrapping_mul(0x9E37_79B9) >> 3);
        for threads in [2, 3, 8] {
            let threaded = run_grid(&inputs, threads, |&x| x.wrapping_mul(0x9E37_79B9) >> 3);
            assert_eq!(serial, threaded, "{threads} threads diverged");
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u64> = run_grid(&[], 4, |&x: &u64| x);
        assert!(out.is_empty());
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let inputs = [1u64, 2, 3];
        let out = run_grid(&inputs, 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn serial_runs_never_shrink_the_sweep() {
        // --member-threads 1 costs one thread per run: the full width
        // fits, and the degenerate 0 input means the same serial case.
        assert_eq!(capped_sweep_width(8, 8, 1, 8), 8);
        assert_eq!(capped_sweep_width(8, 8, 0, 8), 8);
    }

    #[test]
    fn parallel_runs_cap_the_sweep_to_whole_runs() {
        // 8 cores / 4 member threads -> 2 runs at a time.
        assert_eq!(capped_sweep_width(6, 6, 4, 8), 2);
        // A run wider than the machine still proceeds, one at a time.
        assert_eq!(capped_sweep_width(6, 6, 16, 8), 1);
    }

    #[test]
    fn cap_never_exceeds_the_run_count_or_drops_to_zero() {
        assert_eq!(capped_sweep_width(8, 3, 1, 8), 3);
        assert_eq!(capped_sweep_width(0, 0, 1, 8), 1);
        assert_eq!(capped_sweep_width(4, 4, 2, 1), 1);
    }
}
