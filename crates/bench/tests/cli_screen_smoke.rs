//! End-to-end CLI smoke tests of the model-screening sweep path: the
//! `ssdsim-bench/9` screened record shape, the ≤ keep-fraction cell
//! budget, and — the load-bearing guarantee — that screening only
//! changes *which* cells are simulated, never what a simulated cell
//! reports: every simulated cell of a screened sweep byte-matches the
//! same cell of an exhaustive sweep. These double as the CI screening
//! smoke step.

use jitgc_sim::json::JsonValue;
use std::process::Command;

fn ssdsim(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_ssdsim"))
        .args(args)
        .output()
        .expect("ssdsim runs");
    assert!(
        out.status.success(),
        "ssdsim {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// The sweep both runs share: every policy over two benchmarks, short
/// and low-rate so the whole test stays in smoke-test territory.
const SWEEP: &[&str] = &[
    "--benchmark",
    "ycsb,bonnie",
    "--policy",
    "all",
    "--seconds",
    "30",
    "--iops",
    "1000",
    "--seed",
    "11",
    "--json",
];

#[test]
fn screened_sweep_reports_schema_7_and_byte_matches_exhaustive_cells() {
    let dir = std::env::temp_dir().join("ssdsim-screen-smoke");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bench_path = dir.join("screened.json");
    let bench = bench_path.to_str().expect("utf-8 temp path");

    let mut screened_args = SWEEP.to_vec();
    screened_args.extend_from_slice(&[
        "--screen",
        "model",
        "--screen-keep",
        "0.25",
        "--bench-json",
        bench,
    ]);
    let screened_stdout = ssdsim(&screened_args);
    let exhaustive_stdout = ssdsim(SWEEP);

    // --- Screening record shape (the CI schema assertion). ---
    let record_text = std::fs::read_to_string(&bench_path).expect("bench JSON written");
    let record = JsonValue::parse(&record_text).expect("bench JSON parses");
    assert_eq!(
        record.get("schema").and_then(JsonValue::as_str),
        Some("ssdsim-bench/9"),
        "screened record must carry the ssdsim-bench/9 schema"
    );
    let screening = record.get("screening").expect("screening section present");
    for field in [
        "keep_frac",
        "total_cells",
        "duplicate_cells_dropped",
        "simulated_cells",
        "pareto_cells",
        "model_eval_secs",
    ] {
        assert!(
            screening.get(field).is_some(),
            "screening section missing `{field}`"
        );
    }
    assert_eq!(
        screening.get("mode").and_then(JsonValue::as_str),
        Some("model")
    );
    let cells = record
        .get("cells")
        .and_then(JsonValue::as_array)
        .expect("cells array present");
    let total = screening
        .get("total_cells")
        .and_then(JsonValue::as_u64)
        .expect("total_cells");
    assert_eq!(cells.len() as u64, total);

    // Every cell carries a model prediction; only simulated ones a perf
    // record.
    let mut simulated_flags = Vec::new();
    for cell in cells {
        let simulated = cell
            .get("simulated")
            .and_then(JsonValue::as_bool)
            .expect("simulated flag");
        assert!(cell.get("model").is_some(), "cell missing model block");
        assert_eq!(
            cell.get("perf").is_some(),
            simulated,
            "perf block must be present exactly for simulated cells"
        );
        simulated_flags.push(simulated);
    }
    let simulated_count = simulated_flags.iter().filter(|&&s| s).count() as u64;
    assert_eq!(
        screening
            .get("simulated_cells")
            .and_then(JsonValue::as_u64)
            .expect("simulated_cells"),
        simulated_count
    );

    // --- Byte-identity of the simulated cells. ---
    // Both runs expand the same cell grid in the same deterministic
    // order; `--json` prints one report per *simulated* cell in cell
    // order. So the screened array must be exactly the exhaustive array
    // with the screened-out indices removed.
    let screened_reports = JsonValue::parse(&screened_stdout)
        .expect("screened stdout parses")
        .as_array()
        .expect("screened stdout is an array")
        .iter()
        .map(JsonValue::to_pretty)
        .collect::<Vec<_>>();
    let exhaustive_reports = JsonValue::parse(&exhaustive_stdout)
        .expect("exhaustive stdout parses")
        .as_array()
        .expect("exhaustive stdout is an array")
        .iter()
        .map(JsonValue::to_pretty)
        .collect::<Vec<_>>();

    assert_eq!(exhaustive_reports.len(), simulated_flags.len());
    assert_eq!(screened_reports.len(), simulated_count as usize);
    let expected: Vec<&String> = exhaustive_reports
        .iter()
        .zip(&simulated_flags)
        .filter(|(_, &s)| s)
        .map(|(r, _)| r)
        .collect();
    for (i, (screened, exhaustive)) in screened_reports.iter().zip(&expected).enumerate() {
        assert_eq!(
            &screened, exhaustive,
            "simulated cell {i}: screened report differs from exhaustive run"
        );
    }
}

/// Screening must hit the cell budget: with `--screen-keep 0.25` at most
/// ~25 % of each benchmark's cells run, plus any extra predicted-frontier
/// cells, and at least one cell per benchmark always survives.
#[test]
fn screening_respects_keep_budget() {
    let dir = std::env::temp_dir().join("ssdsim-screen-budget");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bench_path = dir.join("budget.json");
    let bench = bench_path.to_str().expect("utf-8 temp path");

    // Wider grid (3 OP points × 7 policies per benchmark) so the frontier
    // is a small share and the budget binds.
    ssdsim(&[
        "--benchmark",
        "ycsb",
        "--policy",
        "all",
        "--op-sweep",
        "70,150,300",
        "--seconds",
        "30",
        "--iops",
        "1000",
        "--screen",
        "model",
        "--screen-keep",
        "0.25",
        "--bench-json",
        bench,
    ]);
    let record_text = std::fs::read_to_string(&bench_path).expect("bench JSON written");
    let record = JsonValue::parse(&record_text).expect("bench JSON parses");
    let screening = record.get("screening").expect("screening section");
    let total = screening
        .get("total_cells")
        .and_then(JsonValue::as_u64)
        .expect("total_cells");
    let simulated = screening
        .get("simulated_cells")
        .and_then(JsonValue::as_u64)
        .expect("simulated_cells");
    let pareto = screening
        .get("pareto_cells")
        .and_then(JsonValue::as_u64)
        .expect("pareto_cells");
    assert_eq!(total, 21, "7 policies × 3 OP points");
    assert!(simulated >= 1);
    // The budget: ⌊0.25 × 21⌋ = 5 fill cells, plus the predicted
    // frontier which is always simulated.
    let budget = 5.max(pareto);
    assert!(
        simulated <= budget,
        "simulated {simulated} cells, budget {budget} (frontier {pareto})"
    );
}
