//! End-to-end CLI smoke tests of the fault-injection and end-of-life
//! flags: a short run all the way to read-only mode, the
//! `ssdsim-bench/9` perf-record schema, and the byte-identity of
//! fault-free output. These double as the CI fault smoke step.

use jitgc_sim::json::JsonValue;
use std::process::Command;

fn ssdsim(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_ssdsim"))
        .args(args)
        .output()
        .expect("ssdsim runs");
    assert!(
        out.status.success(),
        "ssdsim {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// Drives a tiny-endurance device through the CLI to read-only mode and
/// checks the report's degraded section plus the schema-7 perf record.
#[test]
fn endurance_run_reaches_read_only_and_reports_schema_7() {
    let dir = std::env::temp_dir().join("ssdsim-fault-smoke");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bench_path = dir.join("record.json");
    let bench = bench_path.to_str().expect("utf-8 temp path");

    let stdout = ssdsim(&[
        "--benchmark",
        "ycsb",
        "--seconds",
        "60",
        "--iops",
        "2000",
        "--endurance",
        "2",
        "--seed",
        "7",
        "--json",
        "--bench-json",
        bench,
    ]);
    let report = JsonValue::parse(&stdout).expect("report is valid JSON");
    let degraded = report
        .get("degraded")
        .expect("endurance-2 run must emit a degraded section");
    assert_eq!(
        degraded.get("read_only").and_then(JsonValue::as_bool),
        Some(true)
    );
    let lifetime = degraded
        .get("lifetime_host_bytes")
        .and_then(JsonValue::as_u64)
        .expect("read-only fixes the lifetime metric");
    assert!(lifetime > 0);
    assert!(
        degraded
            .get("retired_blocks")
            .and_then(JsonValue::as_u64)
            .expect("retired_blocks present")
            > 0
    );

    let record_text = std::fs::read_to_string(&bench_path).expect("bench record written");
    let record = JsonValue::parse(&record_text).expect("bench record is valid JSON");
    assert_eq!(
        record.get("schema").and_then(JsonValue::as_str),
        Some("ssdsim-bench/9"),
        "perf record must carry the bumped schema"
    );
    assert!(
        record.get("phase_gc_copy_secs").is_some(),
        "schema 5 must report the GC copy sub-phase"
    );
    assert_eq!(
        record.get("read_only").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        record
            .get("lifetime_host_bytes")
            .and_then(JsonValue::as_u64),
        Some(lifetime)
    );
    std::fs::remove_file(&bench_path).ok();
}

/// With every fault knob at its default, passing the flags explicitly (or
/// just a fault seed, with all rates zero) changes nothing: stdout is
/// byte-identical. This is the CLI face of the repo-wide guarantee that
/// the fault subsystem is inert unless enabled.
#[test]
fn zero_rate_fault_flags_leave_output_byte_identical() {
    let base = &["--seconds", "10", "--iops", "500", "--seed", "3", "--json"];
    let plain = ssdsim(base);
    let mut with_flags = base.to_vec();
    with_flags.extend_from_slice(&[
        "--fault-seed",
        "99",
        "--fault-program",
        "0",
        "--fault-erase",
        "0",
        "--fault-read",
        "0",
    ]);
    assert_eq!(
        plain,
        ssdsim(&with_flags),
        "zero-rate fault flags changed the output"
    );
}

/// The same `--fault-seed` reproduces the identical failure timeline; a
/// different seed produces a different one.
#[test]
fn fault_seed_reproduces_the_failure_timeline() {
    let faulty = |seed: &str| {
        ssdsim(&[
            "--seconds",
            "30",
            "--iops",
            "1000",
            "--seed",
            "5",
            "--endurance",
            "40",
            "--fault-seed",
            seed,
            "--fault-program",
            "0.05",
            "--fault-erase",
            "0.05",
            "--fault-read",
            "0.02",
            "--json",
        ])
    };
    let first = faulty("9");
    assert_eq!(first, faulty("9"), "same fault seed diverged");
    assert_ne!(first, faulty("1234"), "fault seed had no effect");
    let report = JsonValue::parse(&first).expect("valid JSON");
    assert!(
        report.get("degraded").is_some(),
        "fault rates were too low to exercise anything"
    );
}
