#![cfg(feature = "proptest")]

//! Property-based tests of trace serialization and per-device demuxing.
//!
//! Two invariants carry the array layer's trace tooling:
//!
//! * **Serialization round-trip** — every [`TraceRecord`], across all
//!   four [`IoKind`]s (including `Trim`), survives `to_json` →
//!   `JsonValue::parse` → `from_json` unchanged.
//! * **Demux/merge identity** — splitting a trace per device under a
//!   striping bijection and re-interleaving it reproduces the original
//!   record stream exactly.

use jitgc_sim::json::JsonValue;
use jitgc_workload::{demux_trace, merge_traces, IoKind, TraceRecord};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = IoKind> {
    prop_oneof![
        Just(IoKind::Read),
        Just(IoKind::BufferedWrite),
        Just(IoKind::DirectWrite),
        Just(IoKind::Trim),
    ]
}

fn any_record() -> impl Strategy<Value = TraceRecord> {
    (any::<u64>(), any_kind(), 0..1_000_000u64, 1..4_096u32).prop_map(
        |(gap_us, kind, lpn, pages)| TraceRecord {
            gap_us,
            kind,
            lpn,
            pages,
        },
    )
}

/// A trace with strictly positive gaps, so every record has a distinct
/// arrival time and the demux/merge identity is exact.
fn any_trace() -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(
        (1..10_000u64, any_kind(), 0..5_000u64, 1..200u32).prop_map(
            |(gap_us, kind, lpn, pages)| TraceRecord {
                gap_us,
                kind,
                lpn,
                pages,
            },
        ),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All four request kinds round-trip through the repository JSON
    /// format, including `Trim`.
    #[test]
    fn trace_record_json_round_trips(rec in any_record()) {
        let line = rec.to_json().to_compact();
        let parsed = JsonValue::parse(&line).expect("own output parses");
        let back = TraceRecord::from_json(&parsed).expect("own output validates");
        prop_assert_eq!(back, rec);
    }

    /// Demux under RAID-0 striping then merge reproduces the trace.
    #[test]
    fn demux_merge_is_identity(
        trace in any_trace(),
        chunk in 1..32u64,
        devices in 1..8u64,
    ) {
        let route = |lpn: u64| {
            let stripe = lpn / chunk;
            ((stripe % devices) as usize, (stripe / devices) * chunk + lpn % chunk)
        };
        let unroute = |d: usize, m: u64| ((m / chunk) * devices + d as u64) * chunk + m % chunk;
        let split = demux_trace(&trace, devices as usize, route);
        prop_assert_eq!(split.len(), devices as usize);
        // Page count is conserved across the split.
        let split_pages: u64 = split.iter().flatten().map(|r| u64::from(r.pages)).sum();
        let pages: u64 = trace.iter().map(|r| u64::from(r.pages)).sum();
        prop_assert_eq!(split_pages, pages);
        // Per-device absolute arrival times never exceed the original span.
        let span: u64 = trace.iter().map(|r| r.gap_us).sum();
        for device in &split {
            let device_span: u64 = device.iter().map(|r| r.gap_us).sum();
            prop_assert!(device_span <= span);
        }
        prop_assert_eq!(merge_traces(&split, unroute), trace);
    }
}
