//! The six-benchmark suite as an enum + factory.

use crate::generators::{Bonnie, Filebench, Postmark, Tiobench, TpcC, Ycsb};
use crate::{Workload, WorkloadConfig, WriteMix};
use std::fmt;

/// The benchmark suite of the paper's evaluation (Sec. 4.1).
///
/// # Example
///
/// ```
/// use jitgc_workload::{BenchmarkKind, WorkloadConfig};
///
/// for kind in BenchmarkKind::all() {
///     let mut w = kind.build(WorkloadConfig::builder().build());
///     assert!(w.next_request().is_some());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BenchmarkKind {
    /// YCSB on Cassandra (update-intensive, 88.2 % buffered).
    Ycsb,
    /// Postmark (mail-server small-file churn, 81.7 % buffered).
    Postmark,
    /// Filebench fileserver (85.8 % buffered).
    Filebench,
    /// Bonnie++ (phase-structured micro-benchmark, 72.4 % buffered).
    Bonnie,
    /// Tiobench (threaded mixed I/O, 46.3 % buffered).
    Tiobench,
    /// TPC-C on MySQL (OLTP, 0.1 % buffered).
    TpcC,
}

impl BenchmarkKind {
    /// All six benchmarks in the paper's presentation order.
    #[must_use]
    pub fn all() -> [BenchmarkKind; 6] {
        [
            BenchmarkKind::Ycsb,
            BenchmarkKind::Postmark,
            BenchmarkKind::Filebench,
            BenchmarkKind::Bonnie,
            BenchmarkKind::Tiobench,
            BenchmarkKind::TpcC,
        ]
    }

    /// Instantiates the generator with the given configuration.
    #[must_use]
    pub fn build(self, config: WorkloadConfig) -> Box<dyn Workload> {
        match self {
            BenchmarkKind::Ycsb => Box::new(Ycsb::new(config)),
            BenchmarkKind::Postmark => Box::new(Postmark::new(config)),
            BenchmarkKind::Filebench => Box::new(Filebench::new(config)),
            BenchmarkKind::Bonnie => Box::new(Bonnie::new(config)),
            BenchmarkKind::Tiobench => Box::new(Tiobench::new(config)),
            BenchmarkKind::TpcC => Box::new(TpcC::new(config)),
        }
    }

    /// The benchmark's display name as used in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkKind::Ycsb => "YCSB",
            BenchmarkKind::Postmark => "Postmark",
            BenchmarkKind::Filebench => "Filebench",
            BenchmarkKind::Bonnie => "Bonnie++",
            BenchmarkKind::Tiobench => "Tiobench",
            BenchmarkKind::TpcC => "TPC-C",
        }
    }

    /// The configured buffered/direct write split (paper Table 1).
    #[must_use]
    pub fn write_mix(self) -> WriteMix {
        let buffered = match self {
            BenchmarkKind::Ycsb => Ycsb::BUFFERED_FRACTION,
            BenchmarkKind::Postmark => Postmark::BUFFERED_FRACTION,
            BenchmarkKind::Filebench => Filebench::BUFFERED_FRACTION,
            BenchmarkKind::Bonnie => Bonnie::BUFFERED_FRACTION,
            BenchmarkKind::Tiobench => Tiobench::BUFFERED_FRACTION,
            BenchmarkKind::TpcC => TpcC::BUFFERED_FRACTION,
        };
        WriteMix::new(buffered)
    }
}

impl fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jitgc_sim::SimDuration;

    #[test]
    fn all_build_and_emit() {
        let cfg = WorkloadConfig::builder()
            .working_set_pages(1_024)
            .duration(SimDuration::from_secs(2))
            .build();
        for kind in BenchmarkKind::all() {
            let mut w = kind.build(cfg);
            assert_eq!(w.name(), kind.name());
            assert!(w.next_request().is_some(), "{kind} emitted nothing");
            assert_eq!(w.write_mix(), kind.write_mix());
        }
    }

    #[test]
    fn table1_order_of_buffered_fractions() {
        // The paper's Table 1 ordering: YCSB most buffered, TPC-C least.
        let fractions: Vec<f64> = BenchmarkKind::all()
            .iter()
            .map(|k| k.write_mix().buffered_fraction)
            .collect();
        assert_eq!(fractions[0], 0.882);
        assert_eq!(fractions[5], 0.001);
        assert!(fractions[0] > fractions[4], "YCSB > Tiobench");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(BenchmarkKind::Bonnie.to_string(), "Bonnie++");
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_round_trip() {
        let json = serde_json::to_string(&BenchmarkKind::TpcC).expect("serialize");
        let back: BenchmarkKind = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, BenchmarkKind::TpcC);
    }
}
