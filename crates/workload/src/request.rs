//! Request types shared by all generators.

use jitgc_nand::Lpn;
use jitgc_sim::SimDuration;
use std::fmt;

/// What a request asks the storage stack to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IoKind {
    /// A read served from the page cache when possible.
    Read,
    /// A write absorbed by the page cache and flushed later — the kind the
    /// paper's buffered-write predictor can see coming.
    BufferedWrite,
    /// An `O_DIRECT`/`O_SYNC` write that bypasses the cache and hits the
    /// device immediately — predictable only statistically (via the CDH).
    DirectWrite,
    /// A TRIM/discard of no-longer-needed pages (extension beyond the
    /// paper; lets file-deletion-heavy workloads release space).
    Trim,
}

impl IoKind {
    /// `true` for the two write kinds.
    #[must_use]
    pub fn is_write(self) -> bool {
        matches!(self, IoKind::BufferedWrite | IoKind::DirectWrite)
    }
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoKind::Read => "read",
            IoKind::BufferedWrite => "buffered-write",
            IoKind::DirectWrite => "direct-write",
            IoKind::Trim => "trim",
        };
        f.write_str(s)
    }
}

/// One multi-page I/O request.
///
/// `gap` is the think time since the *previous* request was issued: the
/// engine issues this request no earlier than `previous_issue + gap`, and
/// no earlier than the previous request's completion (closed-loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IoRequest {
    /// Think time since the previous request.
    pub gap: SimDuration,
    /// Operation type.
    pub kind: IoKind,
    /// First logical page touched.
    pub lpn: Lpn,
    /// Number of consecutive pages touched (≥ 1).
    pub pages: u32,
}

impl IoRequest {
    /// Iterates every LPN this request touches.
    pub fn lpns(&self) -> impl Iterator<Item = Lpn> {
        let start = self.lpn.0;
        (start..start + u64::from(self.pages)).map(Lpn)
    }
}

/// The configured buffered : direct split of a workload's write traffic
/// (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WriteMix {
    /// Fraction of written pages that are buffered, in `[0, 1]`.
    pub buffered_fraction: f64,
}

impl WriteMix {
    /// Creates a mix with the given buffered fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `buffered_fraction` is in `[0, 1]`.
    #[must_use]
    pub fn new(buffered_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&buffered_fraction),
            "buffered fraction must be in [0, 1], got {buffered_fraction}"
        );
        WriteMix { buffered_fraction }
    }

    /// Fraction of written pages that are direct.
    #[must_use]
    pub fn direct_fraction(&self) -> f64 {
        1.0 - self.buffered_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpns_iterates_whole_extent() {
        let req = IoRequest {
            gap: SimDuration::ZERO,
            kind: IoKind::Read,
            lpn: Lpn(10),
            pages: 3,
        };
        let v: Vec<Lpn> = req.lpns().collect();
        assert_eq!(v, vec![Lpn(10), Lpn(11), Lpn(12)]);
    }

    #[test]
    fn is_write_classification() {
        assert!(IoKind::BufferedWrite.is_write());
        assert!(IoKind::DirectWrite.is_write());
        assert!(!IoKind::Read.is_write());
        assert!(!IoKind::Trim.is_write());
    }

    #[test]
    fn write_mix_fractions_sum_to_one() {
        let m = WriteMix::new(0.882);
        assert!((m.buffered_fraction + m.direct_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn write_mix_rejects_out_of_range() {
        let _ = WriteMix::new(1.5);
    }

    #[test]
    fn kind_display() {
        assert_eq!(IoKind::DirectWrite.to_string(), "direct-write");
        assert_eq!(IoKind::Trim.to_string(), "trim");
    }
}
