//! Trace record/replay.
//!
//! Recording a generator's stream to a serializable trace lets experiments
//! (a) pin a workload across code changes and (b) substitute *real* block
//! traces for the synthetic personalities without touching the engine.

use crate::{IoKind, IoRequest, Workload, WriteMix};
use jitgc_nand::Lpn;
use jitgc_sim::json::{JsonError, JsonValue, ObjectBuilder};
use jitgc_sim::SimDuration;
use std::error::Error;
use std::fmt;

/// One serialized request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Think-time gap since the previous request, microseconds.
    pub gap_us: u64,
    /// Operation type.
    pub kind: IoKind,
    /// First logical page.
    pub lpn: u64,
    /// Page count.
    pub pages: u32,
}

impl TraceRecord {
    /// Serializes one record as a compact JSON object — one trace-file line.
    /// The `kind` names match the serde representation, so trace files
    /// written by either serializer interchange.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let kind = match self.kind {
            IoKind::Read => "Read",
            IoKind::BufferedWrite => "BufferedWrite",
            IoKind::DirectWrite => "DirectWrite",
            IoKind::Trim => "Trim",
        };
        ObjectBuilder::new()
            .field("gap_us", self.gap_us)
            .field("kind", kind)
            .field("lpn", self.lpn)
            .field("pages", self.pages)
            .build()
    }

    /// Parses the format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing fields or unknown kinds.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let kind = match v.req("kind")?.as_str() {
            Some("Read") => IoKind::Read,
            Some("BufferedWrite") => IoKind::BufferedWrite,
            Some("DirectWrite") => IoKind::DirectWrite,
            Some("Trim") => IoKind::Trim,
            _ => return Err(JsonError::new("`kind` must be a known IoKind name")),
        };
        Ok(TraceRecord {
            gap_us: v
                .req("gap_us")?
                .as_u64()
                .ok_or_else(|| JsonError::new("`gap_us` must be an integer"))?,
            kind,
            lpn: v
                .req("lpn")?
                .as_u64()
                .ok_or_else(|| JsonError::new("`lpn` must be an integer"))?,
            pages: v
                .req("pages")?
                .as_u64()
                .and_then(|p| u32::try_from(p).ok())
                .ok_or_else(|| JsonError::new("`pages` must be an integer"))?,
        })
    }
}

impl From<IoRequest> for TraceRecord {
    fn from(r: IoRequest) -> Self {
        TraceRecord {
            gap_us: r.gap.as_micros(),
            kind: r.kind,
            lpn: r.lpn.0,
            pages: r.pages,
        }
    }
}

impl From<TraceRecord> for IoRequest {
    fn from(r: TraceRecord) -> Self {
        IoRequest {
            gap: SimDuration::from_micros(r.gap_us),
            kind: r.kind,
            lpn: Lpn(r.lpn),
            pages: r.pages,
        }
    }
}

/// Drains up to `max_requests` from `workload` into a trace.
pub fn record_trace(workload: &mut dyn Workload, max_requests: u64) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    while (out.len() as u64) < max_requests {
        let Some(req) = workload.next_request() else {
            break;
        };
        out.push(TraceRecord::from(req));
    }
    out
}

/// Splits one trace into per-device traces under an LPN routing function.
///
/// `route` maps a global logical page to `(device, member_lpn)` — for a
/// striped array, the arithmetic of its stripe map. Each record's extent
/// is broken into maximal runs of pages that land on the same device at
/// consecutive member LPNs; every run becomes one record in that device's
/// trace. Think-time gaps are rebased per device so that each sub-trace
/// preserves the *absolute* arrival times of the original (gaps are
/// deltas between consecutive arrivals **on that device**). Runs split
/// from one record arrive at the same absolute time, so all but the first
/// on a device carry a zero gap.
///
/// [`merge_traces`] is the inverse.
///
/// # Panics
///
/// Panics if `devices` is zero or `route` returns a device index out of
/// range.
pub fn demux_trace<F>(
    records: &[TraceRecord],
    devices: usize,
    mut route: F,
) -> Vec<Vec<TraceRecord>>
where
    F: FnMut(u64) -> (usize, u64),
{
    assert!(devices > 0, "cannot demux onto zero devices");
    let mut out: Vec<Vec<TraceRecord>> = vec![Vec::new(); devices];
    let mut last_arrival = vec![0u64; devices];
    let mut now = 0u64;
    for rec in records {
        now += rec.gap_us;
        // (device, member start, run length) of the run being grown.
        let mut run: Option<(usize, u64, u32)> = None;
        let mut emit = |d: usize, start: u64, pages: u32| {
            assert!(d < devices, "route sent page to device {d} of {devices}");
            out[d].push(TraceRecord {
                gap_us: now - last_arrival[d],
                kind: rec.kind,
                lpn: start,
                pages,
            });
            last_arrival[d] = now;
        };
        for page in rec.lpn..rec.lpn + u64::from(rec.pages) {
            let (d, m) = route(page);
            run = Some(match run {
                Some((rd, rm, rl)) if rd == d && m == rm + u64::from(rl) => (rd, rm, rl + 1),
                Some((rd, rm, rl)) => {
                    emit(rd, rm, rl);
                    (d, m, 1)
                }
                None => (d, m, 1),
            });
        }
        if let Some((d, m, l)) = run {
            emit(d, m, l);
        }
    }
    out
}

/// Fixed ordering of [`IoKind`]s for deterministic merge output.
fn kind_rank(kind: IoKind) -> usize {
    match kind {
        IoKind::Read => 0,
        IoKind::BufferedWrite => 1,
        IoKind::DirectWrite => 2,
        IoKind::Trim => 3,
    }
}

/// Re-interleaves per-device traces into one global trace — the inverse
/// of [`demux_trace`].
///
/// `unroute` maps `(device, member_lpn)` back to the global logical page.
/// Sub-records are ordered by their absolute arrival time; records that
/// arrived together (runs split off one original record) have their pages
/// translated back to global LPNs and re-fused into maximal contiguous
/// extents, one output record per extent.
///
/// `merge_traces(demux_trace(t, n, route), unroute)` reproduces `t`
/// exactly whenever `route`/`unroute` are inverse bijections and no two
/// records of `t` share an arrival time (distinct cumulative gaps); with
/// shared arrival times the page sets still match but same-time records
/// of the same kind coalesce.
pub fn merge_traces<F>(traces: &[Vec<TraceRecord>], mut unroute: F) -> Vec<TraceRecord>
where
    F: FnMut(usize, u64) -> u64,
{
    // Flatten to (arrival time, device, index-on-device) so a stable sort
    // yields chronological order with a deterministic tie-break.
    let mut events: Vec<(u64, usize, usize)> = Vec::new();
    for (d, trace) in traces.iter().enumerate() {
        let mut now = 0u64;
        for (i, rec) in trace.iter().enumerate() {
            now += rec.gap_us;
            events.push((now, d, i));
        }
    }
    events.sort_unstable();

    let mut out: Vec<TraceRecord> = Vec::new();
    let mut prev_time = 0u64;
    let mut group = 0;
    while group < events.len() {
        let time = events[group].0;
        let mut group_end = group;
        while group_end < events.len() && events[group_end].0 == time {
            group_end += 1;
        }
        // Translate every page that arrived at `time` back to global LPNs,
        // bucketed by kind, then fuse each bucket into contiguous extents.
        let mut pages_by_kind: [Vec<u64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        let mut kinds: [Option<IoKind>; 4] = [None; 4];
        for &(_, d, i) in &events[group..group_end] {
            let rec = &traces[d][i];
            kinds[kind_rank(rec.kind)] = Some(rec.kind);
            let bucket = &mut pages_by_kind[kind_rank(rec.kind)];
            for m in rec.lpn..rec.lpn + u64::from(rec.pages) {
                bucket.push(unroute(d, m));
            }
        }
        let mut gap = time - prev_time;
        for (bucket, kind) in pages_by_kind.iter_mut().zip(kinds) {
            let Some(kind) = kind else { continue };
            bucket.sort_unstable();
            let mut start = 0;
            while start < bucket.len() {
                let mut end = start + 1;
                while end < bucket.len() && bucket[end] == bucket[end - 1] + 1 {
                    end += 1;
                }
                out.push(TraceRecord {
                    gap_us: gap,
                    kind,
                    lpn: bucket[start],
                    pages: u32::try_from(end - start).expect("extent fits u32"),
                });
                gap = 0; // later extents of the same arrival carry no gap
                start = end;
            }
        }
        prev_time = time;
        group = group_end;
    }
    out
}

/// An error while parsing an external trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseTraceError {}

/// Parses an MSR-Cambridge-style block trace into [`TraceRecord`]s.
///
/// The MSR Cambridge traces (SNIA IOTTA repository) are the de-facto
/// standard block traces in storage research. Each CSV line is
///
/// ```text
/// Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
/// ```
///
/// with `Timestamp` in Windows 100 ns ticks, `Offset`/`Size` in bytes and
/// `Type` either `Read` or `Write`. This converter maps byte extents onto
/// `page_size` pages, turns timestamp deltas into think-time gaps, and
/// classifies every write as **direct** (a raw block trace is below the
/// page cache, so all of its writes already bypassed it).
///
/// Lines are expected pre-filtered to one disk; the `Hostname` and
/// `DiskNumber` columns are ignored.
///
/// # Errors
///
/// Returns [`ParseTraceError`] naming the first malformed line.
///
/// # Example
///
/// ```
/// use jitgc_workload::{parse_msr_trace, TraceWorkload, Workload};
///
/// let csv = "128166372003061629,src1,0,Write,4096,8192,1331\n\
///            128166372013061629,src1,0,Read,0,4096,554";
/// let records = parse_msr_trace(csv, 4096)?;
/// assert_eq!(records.len(), 2);
/// let mut replay = TraceWorkload::new("msr", records);
/// let first = replay.next_request().expect("two records");
/// assert_eq!(first.pages, 2); // 8192 bytes = 2 pages
/// # Ok::<(), jitgc_workload::ParseTraceError>(())
/// ```
pub fn parse_msr_trace(csv: &str, page_size: u64) -> Result<Vec<TraceRecord>, ParseTraceError> {
    assert!(page_size > 0, "page size must be non-zero");
    let mut out = Vec::new();
    let mut prev_ticks: Option<u64> = None;
    for (idx, line) in csv.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 6 {
            return Err(ParseTraceError {
                line: line_no,
                reason: format!("expected ≥ 6 comma-separated fields, got {}", fields.len()),
            });
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, ParseTraceError> {
            s.trim().parse().map_err(|_| ParseTraceError {
                line: line_no,
                reason: format!("invalid {what}: {s:?}"),
            })
        };
        let ticks = parse_u64(fields[0], "timestamp")?;
        let kind = match fields[3].trim().to_ascii_lowercase().as_str() {
            "read" => IoKind::Read,
            "write" => IoKind::DirectWrite,
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    reason: format!("unknown request type {other:?}"),
                })
            }
        };
        let offset = parse_u64(fields[4], "offset")?;
        let size = parse_u64(fields[5], "size")?.max(1);
        let lpn = offset / page_size;
        let end = (offset + size).div_ceil(page_size);
        let pages = u32::try_from((end - lpn).max(1)).map_err(|_| ParseTraceError {
            line: line_no,
            reason: format!("request of {size} bytes is too large"),
        })?;
        // Windows ticks are 100 ns; gaps are deltas, first request at 0.
        let gap_us = match prev_ticks {
            Some(prev) => ticks.saturating_sub(prev) / 10,
            None => 0,
        };
        prev_ticks = Some(ticks);
        out.push(TraceRecord {
            gap_us,
            kind,
            lpn,
            pages,
        });
    }
    Ok(out)
}

/// A workload replaying a recorded trace.
///
/// # Example
///
/// ```
/// use jitgc_workload::{record_trace, BenchmarkKind, TraceWorkload, Workload, WorkloadConfig};
///
/// let cfg = WorkloadConfig::builder().build();
/// let mut original = BenchmarkKind::Postmark.build(cfg);
/// let trace = record_trace(original.as_mut(), 1_000);
///
/// let mut replay = TraceWorkload::new("postmark-replay", trace.clone());
/// let first = replay.next_request().expect("trace is non-empty");
/// assert_eq!(TraceWorkload::new("x", trace).working_set_pages(),
///            replay.working_set_pages());
/// assert!(first.pages >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: &'static str,
    records: Vec<TraceRecord>,
    cursor: usize,
    working_set_pages: u64,
    mix: WriteMix,
}

impl TraceWorkload {
    /// Wraps a trace for replay. The working set and write mix are derived
    /// from the trace contents.
    #[must_use]
    pub fn new(name: &'static str, records: Vec<TraceRecord>) -> Self {
        let working_set_pages = records
            .iter()
            .map(|r| r.lpn + u64::from(r.pages))
            .max()
            .unwrap_or(1);
        let buffered: u64 = records
            .iter()
            .filter(|r| r.kind == IoKind::BufferedWrite)
            .map(|r| u64::from(r.pages))
            .sum();
        let direct: u64 = records
            .iter()
            .filter(|r| r.kind == IoKind::DirectWrite)
            .map(|r| u64::from(r.pages))
            .sum();
        let mix = if buffered + direct > 0 {
            WriteMix::new(buffered as f64 / (buffered + direct) as f64)
        } else {
            WriteMix::new(1.0)
        };
        TraceWorkload {
            name,
            records,
            cursor: 0,
            working_set_pages,
            mix,
        }
    }

    /// Overrides the derived working-set size. The trace only shows which
    /// pages were *touched*; when replaying against a device configured
    /// for a larger logical space (e.g. to match the original run's aging
    /// pre-fill exactly), set the original size here.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is smaller than the highest page the trace
    /// touches.
    #[must_use]
    pub fn with_working_set(mut self, pages: u64) -> Self {
        assert!(
            pages >= self.working_set_pages,
            "working set {pages} smaller than trace extent {}",
            self.working_set_pages
        );
        self.working_set_pages = pages;
        self
    }

    /// Number of records in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` for an empty trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rewinds the replay cursor to the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let rec = self.records.get(self.cursor)?;
        self.cursor += 1;
        Some(IoRequest::from(*rec))
    }

    fn write_mix(&self) -> WriteMix {
        self.mix
    }

    fn working_set_pages(&self) -> u64 {
        self.working_set_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkKind, WorkloadConfig};

    #[test]
    fn record_and_replay_round_trips() {
        let cfg = WorkloadConfig::builder().seed(21).build();
        let mut original = BenchmarkKind::Ycsb.build(cfg);
        let trace = record_trace(original.as_mut(), 500);
        assert_eq!(trace.len(), 500);

        let mut fresh = BenchmarkKind::Ycsb.build(cfg);
        let mut replay = TraceWorkload::new("replay", trace);
        for _ in 0..500 {
            assert_eq!(fresh.next_request(), replay.next_request());
        }
        assert_eq!(replay.next_request(), None);
    }

    #[test]
    fn rewind_restarts() {
        let trace = vec![TraceRecord {
            gap_us: 5,
            kind: IoKind::Read,
            lpn: 3,
            pages: 2,
        }];
        let mut w = TraceWorkload::new("t", trace);
        let first = w.next_request().expect("one record");
        assert_eq!(w.next_request(), None);
        w.rewind();
        assert_eq!(w.next_request(), Some(first));
    }

    #[test]
    fn derives_working_set_and_mix() {
        let trace = vec![
            TraceRecord {
                gap_us: 1,
                kind: IoKind::BufferedWrite,
                lpn: 10,
                pages: 4,
            },
            TraceRecord {
                gap_us: 1,
                kind: IoKind::DirectWrite,
                lpn: 90,
                pages: 2,
            },
        ];
        let w = TraceWorkload::new("t", trace);
        assert_eq!(w.working_set_pages(), 92);
        let frac = w.write_mix().buffered_fraction;
        assert!((frac - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let rec = TraceRecord {
            gap_us: 123,
            kind: IoKind::DirectWrite,
            lpn: 7,
            pages: 8,
        };
        let line = rec.to_json().to_compact();
        let back = TraceRecord::from_json(&JsonValue::parse(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
        assert!(TraceRecord::from_json(&JsonValue::parse("{}").unwrap()).is_err());
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_json_round_trip() {
        let rec = TraceRecord {
            gap_us: 123,
            kind: IoKind::Trim,
            lpn: 7,
            pages: 8,
        };
        let json = serde_json::to_string(&rec).expect("serialize");
        let back: TraceRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(rec, back);
    }

    #[test]
    fn with_working_set_overrides() {
        let trace = vec![TraceRecord {
            gap_us: 1,
            kind: IoKind::Read,
            lpn: 10,
            pages: 2,
        }];
        let w = TraceWorkload::new("t", trace).with_working_set(100);
        assert_eq!(w.working_set_pages(), 100);
    }

    #[test]
    #[should_panic(expected = "smaller than trace extent")]
    fn with_working_set_rejects_shrink() {
        let trace = vec![TraceRecord {
            gap_us: 1,
            kind: IoKind::Read,
            lpn: 10,
            pages: 2,
        }];
        let _ = TraceWorkload::new("t", trace).with_working_set(5);
    }

    #[test]
    fn msr_parse_happy_path() {
        let csv = "\
128166372003061629,src1,0,Write,4096,8192,1331
128166372013061629,src1,0,Read,0,512,554

# comment line
128166372023061629,src1,0,write,12288,4096,100";
        let records = parse_msr_trace(csv, 4096).expect("valid trace");
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, IoKind::DirectWrite);
        assert_eq!(records[0].lpn, 1);
        assert_eq!(records[0].pages, 2);
        assert_eq!(records[0].gap_us, 0, "first request has no gap");
        assert_eq!(records[1].kind, IoKind::Read);
        assert_eq!(records[1].pages, 1, "sub-page read rounds to one page");
        assert_eq!(records[1].gap_us, 1_000_000, "10^7 ticks = 1 s");
        assert_eq!(records[2].kind, IoKind::DirectWrite, "case-insensitive");
    }

    #[test]
    fn msr_parse_unaligned_extents_cover_all_pages() {
        // 100 bytes at offset 4000 straddles pages 0 and 1.
        let csv = "1000,h,0,Read,4000,200,1";
        let records = parse_msr_trace(csv, 4096).expect("valid trace");
        assert_eq!(records[0].lpn, 0);
        assert_eq!(records[0].pages, 2);
    }

    #[test]
    fn msr_parse_rejects_malformed_lines() {
        assert!(parse_msr_trace("not,enough,fields", 4096).is_err());
        assert!(parse_msr_trace("x,h,0,Write,0,4096,1", 4096).is_err());
        assert!(parse_msr_trace("1,h,0,Flush,0,4096,1", 4096).is_err());
        let err = parse_msr_trace("1,h,0,Write,bad,4096,1", 4096).expect_err("offset is invalid");
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn msr_trace_replays_through_workload() {
        let csv = "\
1000,h,0,Write,0,4096,1
11000,h,0,Write,4096,4096,1
21000,h,0,Read,0,4096,1";
        let records = parse_msr_trace(csv, 4096).expect("valid trace");
        let mut w = TraceWorkload::new("msr", records);
        assert_eq!(w.working_set_pages(), 2);
        let mix = w.write_mix();
        assert_eq!(mix.buffered_fraction, 0.0, "block traces are all direct");
        assert_eq!(w.next_request().expect("three records").pages, 1);
    }

    #[test]
    fn empty_trace_defaults() {
        let w = TraceWorkload::new("empty", Vec::new());
        assert!(w.is_empty());
        assert_eq!(w.working_set_pages(), 1);
    }

    /// RAID-0 routing over `n` devices with `chunk`-page chunks — the
    /// same arithmetic as the array crate's stripe map, kept here so the
    /// demux tests stand alone.
    fn raid0(chunk: u64, n: u64) -> (impl Fn(u64) -> (usize, u64), impl Fn(usize, u64) -> u64) {
        let route = move |lpn: u64| {
            let stripe = lpn / chunk;
            ((stripe % n) as usize, (stripe / n) * chunk + lpn % chunk)
        };
        let unroute = move |d: usize, m: u64| ((m / chunk) * n + d as u64) * chunk + m % chunk;
        (route, unroute)
    }

    #[test]
    fn demux_splits_extents_and_rebases_gaps() {
        let (route, _) = raid0(2, 2);
        // One 8-page write at t=10 spans both devices twice; a read at
        // t=25 touches only device 1 (pages 6..8 → stripe 3).
        let records = vec![
            TraceRecord {
                gap_us: 10,
                kind: IoKind::BufferedWrite,
                lpn: 0,
                pages: 8,
            },
            TraceRecord {
                gap_us: 15,
                kind: IoKind::Read,
                lpn: 6,
                pages: 2,
            },
        ];
        let split = demux_trace(&records, 2, route);
        // Device 0: stripes 0 and 2 → member pages 0..2 and 2..4, both at
        // t=10 (the second run carries a zero gap).
        assert_eq!(split[0].len(), 2);
        assert_eq!(
            (split[0][0].lpn, split[0][0].pages, split[0][0].gap_us),
            (0, 2, 10)
        );
        assert_eq!(
            (split[0][1].lpn, split[0][1].pages, split[0][1].gap_us),
            (2, 2, 0)
        );
        // Device 1: the write's stripes 1 and 3, then the read at t=25 —
        // a gap of 15 µs after its previous arrival at t=10.
        assert_eq!(split[1].len(), 3);
        assert_eq!(split[1][2].kind, IoKind::Read);
        assert_eq!(
            (split[1][2].lpn, split[1][2].pages, split[1][2].gap_us),
            (2, 2, 15)
        );
    }

    #[test]
    fn demux_merge_identity_all_kinds() {
        let (route, unroute) = raid0(4, 3);
        // Strictly increasing arrival times, all four kinds, extents that
        // cross chunk and stripe boundaries.
        let records = vec![
            TraceRecord {
                gap_us: 1,
                kind: IoKind::BufferedWrite,
                lpn: 2,
                pages: 9,
            },
            TraceRecord {
                gap_us: 7,
                kind: IoKind::Read,
                lpn: 30,
                pages: 1,
            },
            TraceRecord {
                gap_us: 3,
                kind: IoKind::DirectWrite,
                lpn: 11,
                pages: 14,
            },
            TraceRecord {
                gap_us: 20,
                kind: IoKind::Trim,
                lpn: 0,
                pages: 24,
            },
        ];
        let split = demux_trace(&records, 3, route);
        assert_eq!(merge_traces(&split, unroute), records);
        // Page conservation: every device page maps back into the
        // original extents.
        let total: u64 = split.iter().flatten().map(|r| u64::from(r.pages)).sum();
        let original: u64 = records.iter().map(|r| u64::from(r.pages)).sum();
        assert_eq!(total, original);
    }

    #[test]
    fn single_device_demux_is_identity() {
        let records = vec![
            TraceRecord {
                gap_us: 5,
                kind: IoKind::DirectWrite,
                lpn: 17,
                pages: 40,
            },
            TraceRecord {
                gap_us: 0,
                kind: IoKind::Trim,
                lpn: 99,
                pages: 1,
            },
        ];
        let split = demux_trace(&records, 1, |lpn| (0, lpn));
        assert_eq!(split.len(), 1);
        assert_eq!(split[0], records);
        assert_eq!(merge_traces(&split, |_, m| m), records);
    }

    #[test]
    #[should_panic(expected = "zero devices")]
    fn demux_rejects_zero_devices() {
        let _ = demux_trace(&[], 0, |lpn| (0, lpn));
    }
}
