//! Trace record/replay.
//!
//! Recording a generator's stream to a serializable trace lets experiments
//! (a) pin a workload across code changes and (b) substitute *real* block
//! traces for the synthetic personalities without touching the engine.

use crate::{IoKind, IoRequest, Workload, WriteMix};
use jitgc_nand::Lpn;
use jitgc_sim::json::{JsonError, JsonValue, ObjectBuilder};
use jitgc_sim::SimDuration;
use std::error::Error;
use std::fmt;

/// One serialized request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Think-time gap since the previous request, microseconds.
    pub gap_us: u64,
    /// Operation type.
    pub kind: IoKind,
    /// First logical page.
    pub lpn: u64,
    /// Page count.
    pub pages: u32,
}

impl TraceRecord {
    /// Serializes one record as a compact JSON object — one trace-file line.
    /// The `kind` names match the serde representation, so trace files
    /// written by either serializer interchange.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let kind = match self.kind {
            IoKind::Read => "Read",
            IoKind::BufferedWrite => "BufferedWrite",
            IoKind::DirectWrite => "DirectWrite",
            IoKind::Trim => "Trim",
        };
        ObjectBuilder::new()
            .field("gap_us", self.gap_us)
            .field("kind", kind)
            .field("lpn", self.lpn)
            .field("pages", self.pages)
            .build()
    }

    /// Parses the format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing fields or unknown kinds.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let kind = match v.req("kind")?.as_str() {
            Some("Read") => IoKind::Read,
            Some("BufferedWrite") => IoKind::BufferedWrite,
            Some("DirectWrite") => IoKind::DirectWrite,
            Some("Trim") => IoKind::Trim,
            _ => return Err(JsonError::new("`kind` must be a known IoKind name")),
        };
        Ok(TraceRecord {
            gap_us: v
                .req("gap_us")?
                .as_u64()
                .ok_or_else(|| JsonError::new("`gap_us` must be an integer"))?,
            kind,
            lpn: v
                .req("lpn")?
                .as_u64()
                .ok_or_else(|| JsonError::new("`lpn` must be an integer"))?,
            pages: v
                .req("pages")?
                .as_u64()
                .and_then(|p| u32::try_from(p).ok())
                .ok_or_else(|| JsonError::new("`pages` must be an integer"))?,
        })
    }
}

impl From<IoRequest> for TraceRecord {
    fn from(r: IoRequest) -> Self {
        TraceRecord {
            gap_us: r.gap.as_micros(),
            kind: r.kind,
            lpn: r.lpn.0,
            pages: r.pages,
        }
    }
}

impl From<TraceRecord> for IoRequest {
    fn from(r: TraceRecord) -> Self {
        IoRequest {
            gap: SimDuration::from_micros(r.gap_us),
            kind: r.kind,
            lpn: Lpn(r.lpn),
            pages: r.pages,
        }
    }
}

/// Drains up to `max_requests` from `workload` into a trace.
pub fn record_trace(workload: &mut dyn Workload, max_requests: u64) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    while (out.len() as u64) < max_requests {
        let Some(req) = workload.next_request() else {
            break;
        };
        out.push(TraceRecord::from(req));
    }
    out
}

/// An error while parsing an external trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseTraceError {}

/// Parses an MSR-Cambridge-style block trace into [`TraceRecord`]s.
///
/// The MSR Cambridge traces (SNIA IOTTA repository) are the de-facto
/// standard block traces in storage research. Each CSV line is
///
/// ```text
/// Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
/// ```
///
/// with `Timestamp` in Windows 100 ns ticks, `Offset`/`Size` in bytes and
/// `Type` either `Read` or `Write`. This converter maps byte extents onto
/// `page_size` pages, turns timestamp deltas into think-time gaps, and
/// classifies every write as **direct** (a raw block trace is below the
/// page cache, so all of its writes already bypassed it).
///
/// Lines are expected pre-filtered to one disk; the `Hostname` and
/// `DiskNumber` columns are ignored.
///
/// # Errors
///
/// Returns [`ParseTraceError`] naming the first malformed line.
///
/// # Example
///
/// ```
/// use jitgc_workload::{parse_msr_trace, TraceWorkload, Workload};
///
/// let csv = "128166372003061629,src1,0,Write,4096,8192,1331\n\
///            128166372013061629,src1,0,Read,0,4096,554";
/// let records = parse_msr_trace(csv, 4096)?;
/// assert_eq!(records.len(), 2);
/// let mut replay = TraceWorkload::new("msr", records);
/// let first = replay.next_request().expect("two records");
/// assert_eq!(first.pages, 2); // 8192 bytes = 2 pages
/// # Ok::<(), jitgc_workload::ParseTraceError>(())
/// ```
pub fn parse_msr_trace(csv: &str, page_size: u64) -> Result<Vec<TraceRecord>, ParseTraceError> {
    assert!(page_size > 0, "page size must be non-zero");
    let mut out = Vec::new();
    let mut prev_ticks: Option<u64> = None;
    for (idx, line) in csv.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 6 {
            return Err(ParseTraceError {
                line: line_no,
                reason: format!("expected ≥ 6 comma-separated fields, got {}", fields.len()),
            });
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, ParseTraceError> {
            s.trim().parse().map_err(|_| ParseTraceError {
                line: line_no,
                reason: format!("invalid {what}: {s:?}"),
            })
        };
        let ticks = parse_u64(fields[0], "timestamp")?;
        let kind = match fields[3].trim().to_ascii_lowercase().as_str() {
            "read" => IoKind::Read,
            "write" => IoKind::DirectWrite,
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    reason: format!("unknown request type {other:?}"),
                })
            }
        };
        let offset = parse_u64(fields[4], "offset")?;
        let size = parse_u64(fields[5], "size")?.max(1);
        let lpn = offset / page_size;
        let end = (offset + size).div_ceil(page_size);
        let pages = u32::try_from((end - lpn).max(1)).map_err(|_| ParseTraceError {
            line: line_no,
            reason: format!("request of {size} bytes is too large"),
        })?;
        // Windows ticks are 100 ns; gaps are deltas, first request at 0.
        let gap_us = match prev_ticks {
            Some(prev) => ticks.saturating_sub(prev) / 10,
            None => 0,
        };
        prev_ticks = Some(ticks);
        out.push(TraceRecord {
            gap_us,
            kind,
            lpn,
            pages,
        });
    }
    Ok(out)
}

/// A workload replaying a recorded trace.
///
/// # Example
///
/// ```
/// use jitgc_workload::{record_trace, BenchmarkKind, TraceWorkload, Workload, WorkloadConfig};
///
/// let cfg = WorkloadConfig::builder().build();
/// let mut original = BenchmarkKind::Postmark.build(cfg);
/// let trace = record_trace(original.as_mut(), 1_000);
///
/// let mut replay = TraceWorkload::new("postmark-replay", trace.clone());
/// let first = replay.next_request().expect("trace is non-empty");
/// assert_eq!(TraceWorkload::new("x", trace).working_set_pages(),
///            replay.working_set_pages());
/// assert!(first.pages >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: &'static str,
    records: Vec<TraceRecord>,
    cursor: usize,
    working_set_pages: u64,
    mix: WriteMix,
}

impl TraceWorkload {
    /// Wraps a trace for replay. The working set and write mix are derived
    /// from the trace contents.
    #[must_use]
    pub fn new(name: &'static str, records: Vec<TraceRecord>) -> Self {
        let working_set_pages = records
            .iter()
            .map(|r| r.lpn + u64::from(r.pages))
            .max()
            .unwrap_or(1);
        let buffered: u64 = records
            .iter()
            .filter(|r| r.kind == IoKind::BufferedWrite)
            .map(|r| u64::from(r.pages))
            .sum();
        let direct: u64 = records
            .iter()
            .filter(|r| r.kind == IoKind::DirectWrite)
            .map(|r| u64::from(r.pages))
            .sum();
        let mix = if buffered + direct > 0 {
            WriteMix::new(buffered as f64 / (buffered + direct) as f64)
        } else {
            WriteMix::new(1.0)
        };
        TraceWorkload {
            name,
            records,
            cursor: 0,
            working_set_pages,
            mix,
        }
    }

    /// Overrides the derived working-set size. The trace only shows which
    /// pages were *touched*; when replaying against a device configured
    /// for a larger logical space (e.g. to match the original run's aging
    /// pre-fill exactly), set the original size here.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is smaller than the highest page the trace
    /// touches.
    #[must_use]
    pub fn with_working_set(mut self, pages: u64) -> Self {
        assert!(
            pages >= self.working_set_pages,
            "working set {pages} smaller than trace extent {}",
            self.working_set_pages
        );
        self.working_set_pages = pages;
        self
    }

    /// Number of records in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` for an empty trace.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rewinds the replay cursor to the beginning.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let rec = self.records.get(self.cursor)?;
        self.cursor += 1;
        Some(IoRequest::from(*rec))
    }

    fn write_mix(&self) -> WriteMix {
        self.mix
    }

    fn working_set_pages(&self) -> u64 {
        self.working_set_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkKind, WorkloadConfig};

    #[test]
    fn record_and_replay_round_trips() {
        let cfg = WorkloadConfig::builder().seed(21).build();
        let mut original = BenchmarkKind::Ycsb.build(cfg);
        let trace = record_trace(original.as_mut(), 500);
        assert_eq!(trace.len(), 500);

        let mut fresh = BenchmarkKind::Ycsb.build(cfg);
        let mut replay = TraceWorkload::new("replay", trace);
        for _ in 0..500 {
            assert_eq!(fresh.next_request(), replay.next_request());
        }
        assert_eq!(replay.next_request(), None);
    }

    #[test]
    fn rewind_restarts() {
        let trace = vec![TraceRecord {
            gap_us: 5,
            kind: IoKind::Read,
            lpn: 3,
            pages: 2,
        }];
        let mut w = TraceWorkload::new("t", trace);
        let first = w.next_request().expect("one record");
        assert_eq!(w.next_request(), None);
        w.rewind();
        assert_eq!(w.next_request(), Some(first));
    }

    #[test]
    fn derives_working_set_and_mix() {
        let trace = vec![
            TraceRecord {
                gap_us: 1,
                kind: IoKind::BufferedWrite,
                lpn: 10,
                pages: 4,
            },
            TraceRecord {
                gap_us: 1,
                kind: IoKind::DirectWrite,
                lpn: 90,
                pages: 2,
            },
        ];
        let w = TraceWorkload::new("t", trace);
        assert_eq!(w.working_set_pages(), 92);
        let frac = w.write_mix().buffered_fraction;
        assert!((frac - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let rec = TraceRecord {
            gap_us: 123,
            kind: IoKind::DirectWrite,
            lpn: 7,
            pages: 8,
        };
        let line = rec.to_json().to_compact();
        let back = TraceRecord::from_json(&JsonValue::parse(&line).unwrap()).unwrap();
        assert_eq!(back, rec);
        assert!(TraceRecord::from_json(&JsonValue::parse("{}").unwrap()).is_err());
    }

    #[test]
    #[cfg(feature = "serde")]
    fn serde_json_round_trip() {
        let rec = TraceRecord {
            gap_us: 123,
            kind: IoKind::Trim,
            lpn: 7,
            pages: 8,
        };
        let json = serde_json::to_string(&rec).expect("serialize");
        let back: TraceRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(rec, back);
    }

    #[test]
    fn with_working_set_overrides() {
        let trace = vec![TraceRecord {
            gap_us: 1,
            kind: IoKind::Read,
            lpn: 10,
            pages: 2,
        }];
        let w = TraceWorkload::new("t", trace).with_working_set(100);
        assert_eq!(w.working_set_pages(), 100);
    }

    #[test]
    #[should_panic(expected = "smaller than trace extent")]
    fn with_working_set_rejects_shrink() {
        let trace = vec![TraceRecord {
            gap_us: 1,
            kind: IoKind::Read,
            lpn: 10,
            pages: 2,
        }];
        let _ = TraceWorkload::new("t", trace).with_working_set(5);
    }

    #[test]
    fn msr_parse_happy_path() {
        let csv = "\
128166372003061629,src1,0,Write,4096,8192,1331
128166372013061629,src1,0,Read,0,512,554

# comment line
128166372023061629,src1,0,write,12288,4096,100";
        let records = parse_msr_trace(csv, 4096).expect("valid trace");
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, IoKind::DirectWrite);
        assert_eq!(records[0].lpn, 1);
        assert_eq!(records[0].pages, 2);
        assert_eq!(records[0].gap_us, 0, "first request has no gap");
        assert_eq!(records[1].kind, IoKind::Read);
        assert_eq!(records[1].pages, 1, "sub-page read rounds to one page");
        assert_eq!(records[1].gap_us, 1_000_000, "10^7 ticks = 1 s");
        assert_eq!(records[2].kind, IoKind::DirectWrite, "case-insensitive");
    }

    #[test]
    fn msr_parse_unaligned_extents_cover_all_pages() {
        // 100 bytes at offset 4000 straddles pages 0 and 1.
        let csv = "1000,h,0,Read,4000,200,1";
        let records = parse_msr_trace(csv, 4096).expect("valid trace");
        assert_eq!(records[0].lpn, 0);
        assert_eq!(records[0].pages, 2);
    }

    #[test]
    fn msr_parse_rejects_malformed_lines() {
        assert!(parse_msr_trace("not,enough,fields", 4096).is_err());
        assert!(parse_msr_trace("x,h,0,Write,0,4096,1", 4096).is_err());
        assert!(parse_msr_trace("1,h,0,Flush,0,4096,1", 4096).is_err());
        let err = parse_msr_trace("1,h,0,Write,bad,4096,1", 4096).expect_err("offset is invalid");
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn msr_trace_replays_through_workload() {
        let csv = "\
1000,h,0,Write,0,4096,1
11000,h,0,Write,4096,4096,1
21000,h,0,Read,0,4096,1";
        let records = parse_msr_trace(csv, 4096).expect("valid trace");
        let mut w = TraceWorkload::new("msr", records);
        assert_eq!(w.working_set_pages(), 2);
        let mix = w.write_mix();
        assert_eq!(mix.buffered_fraction, 0.0, "block traces are all direct");
        assert_eq!(w.next_request().expect("three records").pages, 1);
    }

    #[test]
    fn empty_trace_defaults() {
        let w = TraceWorkload::new("empty", Vec::new());
        assert!(w.is_empty());
        assert_eq!(w.working_set_pages(), 1);
    }
}
