//! Measuring a workload's actual write mix (reproduces paper Table 1).

use crate::{IoKind, Workload};

/// Measured page counts per request kind over a drained workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MeasuredMix {
    /// Pages written through the page cache.
    pub buffered_pages: u64,
    /// Pages written directly.
    pub direct_pages: u64,
    /// Pages read.
    pub read_pages: u64,
    /// Pages trimmed.
    pub trim_pages: u64,
    /// Requests consumed.
    pub requests: u64,
}

impl MeasuredMix {
    /// Measured buffered fraction of write pages, or `None` if the
    /// workload wrote nothing.
    #[must_use]
    pub fn buffered_fraction(&self) -> Option<f64> {
        let total = self.buffered_pages + self.direct_pages;
        (total > 0).then(|| self.buffered_pages as f64 / total as f64)
    }

    /// Measured direct fraction of write pages, or `None` if the workload
    /// wrote nothing.
    #[must_use]
    pub fn direct_fraction(&self) -> Option<f64> {
        self.buffered_fraction().map(|b| 1.0 - b)
    }
}

/// Drains up to `max_requests` from `workload` and tallies pages by kind.
///
/// This regenerates the paper's Table 1: run each benchmark generator
/// through this function and compare
/// [`buffered_fraction`](MeasuredMix::buffered_fraction) against the
/// configured [`WriteMix`](crate::WriteMix).
pub fn measure_write_mix(workload: &mut dyn Workload, max_requests: u64) -> MeasuredMix {
    let mut mix = MeasuredMix::default();
    while mix.requests < max_requests {
        let Some(req) = workload.next_request() else {
            break;
        };
        mix.requests += 1;
        let pages = u64::from(req.pages);
        match req.kind {
            IoKind::BufferedWrite => mix.buffered_pages += pages,
            IoKind::DirectWrite => mix.direct_pages += pages,
            IoKind::Read => mix.read_pages += pages,
            IoKind::Trim => mix.trim_pages += pages,
        }
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchmarkKind, WorkloadConfig};
    use jitgc_sim::SimDuration;

    #[test]
    fn measures_all_benchmarks_close_to_table1() {
        let cfg = WorkloadConfig::builder()
            .working_set_pages(4_096)
            .duration(SimDuration::from_secs(60))
            .seed(11)
            .build();
        for kind in BenchmarkKind::all() {
            let mut w = kind.build(cfg);
            let mix = measure_write_mix(w.as_mut(), u64::MAX);
            let measured = mix.buffered_fraction().expect("workloads write");
            let expected = kind.write_mix().buffered_fraction;
            assert!(
                (measured - expected).abs() < 0.05,
                "{kind}: measured {measured:.3} vs expected {expected:.3}"
            );
        }
    }

    #[test]
    fn read_shares_match_personalities() {
        // Coarse sanity on each generator's read/write balance: OLTP and
        // KV stores read plenty; micro-benchmarks are write-leaning.
        let cfg = WorkloadConfig::builder()
            .working_set_pages(4_096)
            .duration(SimDuration::from_secs(60))
            .seed(5)
            .build();
        for (kind, lo, hi) in [
            (BenchmarkKind::Ycsb, 0.25, 0.55),
            (BenchmarkKind::Postmark, 0.10, 0.45),
            (BenchmarkKind::Filebench, 0.35, 0.65),
            (BenchmarkKind::Tiobench, 0.25, 0.55),
            (BenchmarkKind::TpcC, 0.25, 0.55),
        ] {
            let mut w = kind.build(cfg);
            let mix = measure_write_mix(w.as_mut(), u64::MAX);
            let total = mix.read_pages + mix.buffered_pages + mix.direct_pages + mix.trim_pages;
            let frac = mix.read_pages as f64 / total as f64;
            assert!(
                (lo..=hi).contains(&frac),
                "{kind}: read page share {frac:.2} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn respects_request_cap() {
        let cfg = WorkloadConfig::builder().build();
        let mut w = BenchmarkKind::Ycsb.build(cfg);
        let mix = measure_write_mix(w.as_mut(), 100);
        assert_eq!(mix.requests, 100);
    }

    #[test]
    fn empty_mix_has_no_fraction() {
        assert_eq!(MeasuredMix::default().buffered_fraction(), None);
        assert_eq!(MeasuredMix::default().direct_fraction(), None);
    }
}
