//! Declarative write-traffic descriptors for the analytical model.
//!
//! Each benchmark generator ([`BenchmarkKind`]) has a *write profile*: a
//! small set of [`WriteStream`]s that together describe where its written
//! pages land and how often each page is revisited. The `jitgc-model`
//! crate lowers these descriptors into per-address-class overwrite rates
//! and solves the mean-field GC balance for WAF — so the profile is the
//! contract between the generators and the analytical fast path.
//!
//! The constants here are *derived from the generator source*, not
//! fitted: every share below is the exact expectation of the generator's
//! dice (request-kind probabilities × page-count distributions). The unit
//! tests drain each generator and check the drained stream against its
//! profile, so a generator change that invalidates a profile fails here
//! first.

use crate::BenchmarkKind;

/// How a write stream picks addresses inside its region.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// Uniform random pages over the region.
    Uniform,
    /// Zipf-skewed ranks scattered pseudo-randomly over the region, so
    /// the *rate distribution* applies spatially uniformly (hot pages
    /// are not physically clustered).
    Zipf {
        /// Skew exponent of the rank distribution.
        theta: f64,
    },
    /// A cyclic sequential sweep over the region (log appends, scans).
    /// Every page in the region is rewritten deterministically once per
    /// sweep period.
    SequentialCycle,
    /// The region tiles into fixed-size units whose pages see different
    /// rates (e.g. slot-head writes hit page 0 of every slot more often
    /// than page 7). Each `(address_mass, rate_weight)` entry is a class:
    /// `address_mass` of the region's pages receive traffic proportional
    /// to `rate_weight`. Masses must sum to 1; weights are relative.
    Classes(&'static [(f64, f64)]),
}

/// One component of a benchmark's write (or trim) traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteStream {
    /// Diagnostic label ("commit-log", "memtable", …).
    pub label: &'static str,
    /// Region start, as a fraction of the working set.
    pub start_frac: f64,
    /// Region length, as a fraction of the working set. Regions of
    /// different streams may overlap (a consumer must combine per-page
    /// rates on the overlap — e.g. Bonnie's seek writes land inside the
    /// space its sequential sweeps also rewrite).
    pub len_frac: f64,
    /// This stream's fraction of the benchmark's written pages (of its
    /// trimmed pages, for a trim stream). Shares over a profile's
    /// `streams` sum to 1.
    pub page_share: f64,
    /// Address pattern within the region.
    pub pattern: AccessPattern,
    /// Fraction of this stream's pages issued as buffered writes (may
    /// coalesce in the page cache before reaching the device).
    pub buffered_fraction: f64,
}

/// The complete write-side personality of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteProfile {
    /// Write streams; `page_share`s sum to 1.
    pub streams: Vec<WriteStream>,
    /// Trim streams (empty for benchmarks that never discard);
    /// `page_share`s sum to 1 when non-empty.
    pub trim_streams: Vec<WriteStream>,
    /// Expected written pages per generated request, over *all* request
    /// kinds — multiply by the arrival rate for the host write-page rate.
    pub write_pages_per_request: f64,
    /// Expected trimmed pages per generated request.
    pub trim_pages_per_request: f64,
}

impl WriteProfile {
    /// The profile-implied buffered fraction of written pages
    /// (share-weighted). Matches the generator's
    /// [`WriteMix`](crate::WriteMix) by construction.
    #[must_use]
    pub fn buffered_fraction(&self) -> f64 {
        self.streams
            .iter()
            .map(|s| s.page_share * s.buffered_fraction)
            .sum()
    }
}

/// Postmark writes land at the head of an 8-page slot with a uniform
/// 1..=8 page count, so page `j` of a slot is written iff the count
/// exceeds `j`: relative rate `(8 - j) / 8`.
const SLOT_HEAD_CLASSES: [(f64, f64); 8] = [
    (0.125, 8.0),
    (0.125, 7.0),
    (0.125, 6.0),
    (0.125, 5.0),
    (0.125, 4.0),
    (0.125, 3.0),
    (0.125, 2.0),
    (0.125, 1.0),
];

/// Filebench rewrites a whole 16-page extent 75 % of the time and appends
/// 1..=8 pages at the head otherwise: page `j` sees
/// `0.75 + 0.25 × P(len > j)`.
const EXTENT_CLASSES: [(f64, f64); 16] = [
    (0.0625, 1.0),
    (0.0625, 0.968_75),
    (0.0625, 0.937_5),
    (0.0625, 0.906_25),
    (0.0625, 0.875),
    (0.0625, 0.843_75),
    (0.0625, 0.812_5),
    (0.0625, 0.781_25),
    (0.0625, 0.75),
    (0.0625, 0.75),
    (0.0625, 0.75),
    (0.0625, 0.75),
    (0.0625, 0.75),
    (0.0625, 0.75),
    (0.0625, 0.75),
    (0.0625, 0.75),
];

impl BenchmarkKind {
    /// The benchmark's write profile. See the module docs for how each
    /// constant follows from the generator's request dice.
    #[must_use]
    pub fn write_profile(self) -> WriteProfile {
        match self {
            // 50 % writes of 1..=4 pages (mean 2.5); 11.8 % of written
            // pages are commit-log appends cycling through the first 1/32
            // of the working set, the rest Zipf(0.99)-skewed memtable
            // updates scattered everywhere.
            BenchmarkKind::Ycsb => WriteProfile {
                streams: vec![
                    WriteStream {
                        label: "commit-log",
                        start_frac: 0.0,
                        len_frac: 1.0 / 32.0,
                        page_share: 0.118,
                        pattern: AccessPattern::SequentialCycle,
                        buffered_fraction: 0.0,
                    },
                    WriteStream {
                        label: "memtable",
                        start_frac: 0.0,
                        len_frac: 1.0,
                        page_share: 0.882,
                        pattern: AccessPattern::Zipf { theta: 0.99 },
                        buffered_fraction: 1.0,
                    },
                ],
                trim_streams: vec![],
                write_pages_per_request: 0.5 * 2.5,
                trim_pages_per_request: 0.0,
            },
            // 70 % writes of 1..=8 pages (mean 4.5) at slot heads; with
            // probability 0.75 the slot is drawn from the hot quarter,
            // else uniformly from the whole slot space (so the uniform
            // stream covers the hot quarter too). 5 % of requests trim a
            // whole 8-page slot with the same hot/cold split.
            BenchmarkKind::Postmark => {
                let hot = |label, share, pattern| WriteStream {
                    label,
                    start_frac: 0.0,
                    len_frac: 0.25,
                    page_share: share,
                    pattern,
                    buffered_fraction: 0.817,
                };
                let all = |label, share, pattern| WriteStream {
                    label,
                    start_frac: 0.0,
                    len_frac: 1.0,
                    page_share: share,
                    pattern,
                    buffered_fraction: 0.817,
                };
                WriteProfile {
                    streams: vec![
                        hot(
                            "hot-slots",
                            0.75,
                            AccessPattern::Classes(&SLOT_HEAD_CLASSES),
                        ),
                        all(
                            "all-slots",
                            0.25,
                            AccessPattern::Classes(&SLOT_HEAD_CLASSES),
                        ),
                    ],
                    trim_streams: vec![
                        hot("hot-trims", 0.75, AccessPattern::Uniform),
                        all("all-trims", 0.25, AccessPattern::Uniform),
                    ],
                    write_pages_per_request: 0.70 * 4.5,
                    trim_pages_per_request: 0.05 * 8.0,
                }
            }
            // 50 % writes: whole 16-page extents (75 %) or 1..=8-page
            // head appends (25 %), mean 13.125 pages per write request.
            // The hot 30 % of extents takes 60 % of operations.
            BenchmarkKind::Filebench => WriteProfile {
                streams: vec![
                    WriteStream {
                        label: "hot-extents",
                        start_frac: 0.0,
                        len_frac: 0.3,
                        page_share: 0.6,
                        pattern: AccessPattern::Classes(&EXTENT_CLASSES),
                        buffered_fraction: 0.858,
                    },
                    WriteStream {
                        label: "all-extents",
                        start_frac: 0.0,
                        len_frac: 1.0,
                        page_share: 0.4,
                        pattern: AccessPattern::Classes(&EXTENT_CLASSES),
                        buffered_fraction: 0.858,
                    },
                ],
                trim_streams: vec![],
                write_pages_per_request: 0.5 * 13.125,
                trim_pages_per_request: 0.0,
            },
            // Per phase cycle over S = ws/8 chunks: two full-working-set
            // write sweeps (2·ws pages) plus S seek requests of which
            // 10 % rewrite one page (ws/80 pages), spread over 4·S
            // requests. Seek writes land *inside* the swept space.
            BenchmarkKind::Bonnie => WriteProfile {
                streams: vec![
                    WriteStream {
                        label: "seq-sweeps",
                        start_frac: 0.0,
                        len_frac: 1.0,
                        page_share: 2.0 / 2.012_5,
                        pattern: AccessPattern::SequentialCycle,
                        buffered_fraction: 0.724,
                    },
                    WriteStream {
                        label: "seek-writes",
                        start_frac: 0.0,
                        len_frac: 1.0,
                        page_share: 0.012_5 / 2.012_5,
                        pattern: AccessPattern::Uniform,
                        buffered_fraction: 0.724,
                    },
                ],
                trim_streams: vec![],
                write_pages_per_request: 2.012_5 / 0.5,
                trim_pages_per_request: 0.0,
            },
            // 60 % writes, all 4 pages; each of four threads owns a
            // quarter territory and goes sequential half the time. The
            // four interleaved quarter-sweeps have the same per-page
            // revisit period as one global sweep at the combined rate.
            BenchmarkKind::Tiobench => WriteProfile {
                streams: vec![
                    WriteStream {
                        label: "seq-scans",
                        start_frac: 0.0,
                        len_frac: 1.0,
                        page_share: 0.5,
                        pattern: AccessPattern::SequentialCycle,
                        buffered_fraction: 0.463,
                    },
                    WriteStream {
                        label: "random-io",
                        start_frac: 0.0,
                        len_frac: 1.0,
                        page_share: 0.5,
                        pattern: AccessPattern::Uniform,
                        buffered_fraction: 0.463,
                    },
                ],
                trim_streams: vec![],
                write_pages_per_request: 0.6 * 4.0,
                trim_pages_per_request: 0.0,
            },
            // 60 % writes: 30 % single-page redo-log appends cycling the
            // first 1/64, 70 % Zipf(0.9) table updates of 1..=2 pages
            // (mean 1.5) — log page share 0.3/1.35, table 1.05/1.35.
            BenchmarkKind::TpcC => WriteProfile {
                streams: vec![
                    WriteStream {
                        label: "redo-log",
                        start_frac: 0.0,
                        len_frac: 1.0 / 64.0,
                        page_share: 0.3 / 1.35,
                        pattern: AccessPattern::SequentialCycle,
                        buffered_fraction: 0.001,
                    },
                    WriteStream {
                        label: "table-updates",
                        start_frac: 0.0,
                        len_frac: 1.0,
                        page_share: 1.05 / 1.35,
                        pattern: AccessPattern::Zipf { theta: 0.9 },
                        buffered_fraction: 0.001,
                    },
                ],
                trim_streams: vec![],
                write_pages_per_request: 0.6 * 1.35,
                trim_pages_per_request: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IoKind, WorkloadConfig};
    use jitgc_sim::SimDuration;

    fn drained(kind: BenchmarkKind) -> (f64, f64, f64, f64, u64) {
        // (write pages/request, trim pages/request, buffered fraction,
        //  fraction of write pages in the first quarter, requests)
        let cfg = WorkloadConfig::builder()
            .working_set_pages(8_192)
            .duration(SimDuration::from_secs(60))
            .mean_iops(2_000.0)
            .burst_mean(16.0)
            .seed(11)
            .build();
        let ws = cfg.working_set_pages();
        let mut w = kind.build(cfg);
        let (mut reqs, mut wr, mut tr, mut buf, mut low) = (0u64, 0u64, 0u64, 0u64, 0u64);
        while let Some(req) = w.next_request() {
            reqs += 1;
            let pages = u64::from(req.pages);
            match req.kind {
                IoKind::BufferedWrite | IoKind::DirectWrite => {
                    wr += pages;
                    if req.kind == IoKind::BufferedWrite {
                        buf += pages;
                    }
                    if req.lpn.0 < ws / 4 {
                        low += pages;
                    }
                }
                IoKind::Trim => tr += pages,
                IoKind::Read => {}
            }
        }
        (
            wr as f64 / reqs as f64,
            tr as f64 / reqs as f64,
            buf as f64 / wr as f64,
            low as f64 / wr as f64,
            reqs,
        )
    }

    #[test]
    fn shares_are_normalized() {
        for kind in BenchmarkKind::all() {
            let p = kind.write_profile();
            let sum: f64 = p.streams.iter().map(|s| s.page_share).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{kind}: write shares sum {sum}");
            if !p.trim_streams.is_empty() {
                let sum: f64 = p.trim_streams.iter().map(|s| s.page_share).sum();
                assert!((sum - 1.0).abs() < 1e-9, "{kind}: trim shares sum {sum}");
            }
            for s in p.streams.iter().chain(&p.trim_streams) {
                assert!(s.len_frac > 0.0 && s.len_frac <= 1.0);
                assert!(s.start_frac >= 0.0 && s.start_frac + s.len_frac <= 1.0 + 1e-9);
                if let AccessPattern::Classes(classes) = s.pattern {
                    let mass: f64 = classes.iter().map(|&(m, _)| m).sum();
                    assert!((mass - 1.0).abs() < 1e-9, "{kind}: class mass {mass}");
                }
            }
        }
    }

    #[test]
    fn profile_matches_drained_generator() {
        for kind in BenchmarkKind::all() {
            let p = kind.write_profile();
            let (wppr, tppr, buffered, _, reqs) = drained(kind);
            assert!(reqs > 10_000, "{kind}: drained too few requests");
            let rel = (wppr - p.write_pages_per_request).abs() / p.write_pages_per_request;
            assert!(
                rel < 0.05,
                "{kind}: measured {wppr:.3} write pages/request, profile {:.3}",
                p.write_pages_per_request
            );
            assert!(
                (tppr - p.trim_pages_per_request).abs() < 0.05,
                "{kind}: measured {tppr:.3} trim pages/request, profile {:.3}",
                p.trim_pages_per_request
            );
            assert!(
                (buffered - p.buffered_fraction()).abs() < 0.05,
                "{kind}: measured buffered {buffered:.3}, profile {:.3}",
                p.buffered_fraction()
            );
        }
    }

    #[test]
    fn buffered_fraction_matches_write_mix() {
        for kind in BenchmarkKind::all() {
            let diff = (kind.write_profile().buffered_fraction()
                - kind.write_mix().buffered_fraction)
                .abs();
            assert!(diff < 1e-9, "{kind}: profile disagrees with WriteMix");
        }
    }

    #[test]
    fn postmark_hot_quarter_gets_its_share() {
        // Hot share 0.75 targets the first quarter of slots; the uniform
        // 0.25 puts a quarter of itself there too.
        let (_, _, _, low, _) = drained(BenchmarkKind::Postmark);
        let expected = 0.75 + 0.25 * 0.25;
        assert!(
            (low - expected).abs() < 0.03,
            "postmark first-quarter write share {low:.3}, profile implies {expected:.3}"
        );
    }
}
