//! A request-less workload stub.

use crate::{IoRequest, Workload, WriteMix};

/// A [`Workload`] that never yields a request but still reports a fixed
/// personality (name, working set, write mix).
///
/// The array layer drives each member [`SsdSystem`] through the engine's
/// stepping API, routing it sub-requests split off a single array-level
/// workload — so the member's own workload exists only to label the run
/// and to size the member's logical space for aging/prefill. A
/// single-member array built from the same benchmark therefore reports
/// the same workload name and prefills the same working set as the
/// standalone path.
///
/// [`SsdSystem`]: https://docs.rs/jitgc-core
///
/// # Example
///
/// ```
/// use jitgc_workload::{NullWorkload, Workload, WriteMix};
///
/// let mut stub = NullWorkload::new("YCSB", 4096, WriteMix::new(0.9));
/// assert_eq!(stub.name(), "YCSB");
/// assert_eq!(stub.working_set_pages(), 4096);
/// assert_eq!(stub.next_request(), None);
/// ```
#[derive(Debug, Clone)]
pub struct NullWorkload {
    name: &'static str,
    working_set_pages: u64,
    mix: WriteMix,
}

impl NullWorkload {
    /// Creates a stub reporting the given personality.
    ///
    /// # Panics
    ///
    /// Panics if `working_set_pages` is zero — a device cannot be sized
    /// for an empty logical space.
    #[must_use]
    pub fn new(name: &'static str, working_set_pages: u64, mix: WriteMix) -> Self {
        assert!(working_set_pages > 0, "working set must be non-empty");
        NullWorkload {
            name,
            working_set_pages,
            mix,
        }
    }
}

impl Workload for NullWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        None
    }

    fn write_mix(&self) -> WriteMix {
        self.mix
    }

    fn working_set_pages(&self) -> u64 {
        self.working_set_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_nothing_but_reports_personality() {
        let mut w = NullWorkload::new("stub", 128, WriteMix::new(0.5));
        assert_eq!(w.next_request(), None);
        assert_eq!(w.next_request(), None, "stays exhausted");
        assert_eq!(w.name(), "stub");
        assert_eq!(w.working_set_pages(), 128);
        assert!((w.write_mix().buffered_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "working set must be non-empty")]
    fn rejects_empty_working_set() {
        let _ = NullWorkload::new("stub", 0, WriteMix::new(1.0));
    }
}
