//! Common workload configuration.

use jitgc_sim::SimDuration;

/// Parameters shared by every benchmark generator.
///
/// The paper sets the working set to half the device's user capacity and
/// runs each benchmark to steady state; the defaults here mirror that at
/// simulation scale.
///
/// # Example
///
/// ```
/// use jitgc_workload::WorkloadConfig;
/// use jitgc_sim::SimDuration;
///
/// let config = WorkloadConfig::builder()
///     .working_set_pages(8192)
///     .duration(SimDuration::from_secs(600))
///     .mean_iops(2_000.0)
///     .seed(42)
///     .build();
/// assert_eq!(config.working_set_pages(), 8192);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadConfig {
    working_set_pages: u64,
    duration: SimDuration,
    mean_iops: f64,
    burst_mean: f64,
    seed: u64,
}

impl WorkloadConfig {
    /// Starts building a configuration. See [`WorkloadConfigBuilder`].
    #[must_use]
    pub fn builder() -> WorkloadConfigBuilder {
        WorkloadConfigBuilder::default()
    }

    /// Number of logical pages the workload touches.
    #[must_use]
    pub fn working_set_pages(&self) -> u64 {
        self.working_set_pages
    }

    /// Total think-time the generator emits before ending.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// Target request arrival rate.
    #[must_use]
    pub fn mean_iops(&self) -> f64 {
        self.mean_iops
    }

    /// Mean burst length (requests arriving back-to-back).
    #[must_use]
    pub fn burst_mean(&self) -> f64 {
        self.burst_mean
    }

    /// RNG seed; equal seeds give bit-identical request streams.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Builder for [`WorkloadConfig`].
///
/// Defaults: 8 192-page working set, 300 s duration, 2 000 IOPS,
/// mean burst 32, seed 0.
#[derive(Debug, Clone)]
pub struct WorkloadConfigBuilder {
    working_set_pages: u64,
    duration: SimDuration,
    mean_iops: f64,
    burst_mean: f64,
    seed: u64,
}

impl Default for WorkloadConfigBuilder {
    fn default() -> Self {
        WorkloadConfigBuilder {
            working_set_pages: 8_192,
            duration: SimDuration::from_secs(300),
            mean_iops: 2_000.0,
            burst_mean: 32.0,
            seed: 0,
        }
    }
}

impl WorkloadConfigBuilder {
    /// Sets the working set size in pages.
    #[must_use]
    pub fn working_set_pages(mut self, pages: u64) -> Self {
        self.working_set_pages = pages;
        self
    }

    /// Sets the emitted think-time duration.
    #[must_use]
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the target arrival rate in requests/second.
    #[must_use]
    pub fn mean_iops(mut self, iops: f64) -> Self {
        self.mean_iops = iops;
        self
    }

    /// Sets the mean burst length.
    #[must_use]
    pub fn burst_mean(mut self, mean: f64) -> Self {
        self.burst_mean = mean;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the working set is empty, the duration is zero, or the
    /// rate/burst parameters are not positive finite numbers.
    #[must_use]
    pub fn build(self) -> WorkloadConfig {
        assert!(self.working_set_pages > 0, "working set must be non-empty");
        assert!(!self.duration.is_zero(), "duration must be non-zero");
        assert!(
            self.mean_iops.is_finite() && self.mean_iops > 0.0,
            "mean iops must be positive and finite"
        );
        assert!(
            self.burst_mean.is_finite() && self.burst_mean >= 1.0,
            "mean burst length must be at least 1"
        );
        WorkloadConfig {
            working_set_pages: self.working_set_pages,
            duration: self.duration,
            mean_iops: self.mean_iops,
            burst_mean: self.burst_mean,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let c = WorkloadConfig::builder().build();
        assert_eq!(c.working_set_pages(), 8_192);
        assert_eq!(c.duration(), SimDuration::from_secs(300));
        assert_eq!(c.seed(), 0);
    }

    #[test]
    fn builder_overrides() {
        let c = WorkloadConfig::builder()
            .working_set_pages(16)
            .duration(SimDuration::from_secs(1))
            .mean_iops(100.0)
            .burst_mean(4.0)
            .seed(9)
            .build();
        assert_eq!(c.working_set_pages(), 16);
        assert_eq!(c.mean_iops(), 100.0);
        assert_eq!(c.burst_mean(), 4.0);
        assert_eq!(c.seed(), 9);
    }

    #[test]
    fn generators_respect_duration_bound() {
        use crate::BenchmarkKind;
        let cfg = WorkloadConfig::builder()
            .working_set_pages(1_024)
            .duration(SimDuration::from_secs(5))
            .mean_iops(1_000.0)
            .build();
        for kind in BenchmarkKind::all() {
            let mut w = kind.build(cfg);
            let mut total = SimDuration::ZERO;
            while let Some(req) = w.next_request() {
                total += req.gap;
            }
            // The think-time budget is exhausted within one gap's slack.
            assert!(
                total >= SimDuration::from_secs(5),
                "{kind} ended early at {total}"
            );
            assert!(
                total < SimDuration::from_secs(10),
                "{kind} overshot the duration: {total}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "working set must be non-empty")]
    fn zero_working_set_panics() {
        let _ = WorkloadConfig::builder().working_set_pages(0).build();
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_one_burst_panics() {
        let _ = WorkloadConfig::builder().burst_mean(0.5).build();
    }
}
