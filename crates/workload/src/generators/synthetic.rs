//! A fully configurable synthetic workload.

use super::Base;
use crate::{IoKind, IoRequest, Workload, WorkloadConfig, WriteMix};
use jitgc_nand::Lpn;
use jitgc_sim::Zipf;

/// A knob-per-dimension synthetic workload for controlled experiments.
///
/// Where the six benchmark personalities fix their parameters to match
/// published behaviour, `Synthetic` exposes each dimension the simulator
/// is sensitive to:
///
/// * `read_fraction` — share of requests that read;
/// * `buffered_fraction` — share of written pages that go through the
///   page cache (paper Table 1's axis);
/// * `zipf_skew` — overwrite locality (0 = uniform);
/// * `trim_fraction` — share of requests that TRIM;
/// * `min_pages ..= max_pages` — request size range.
///
/// # Example
///
/// ```
/// use jitgc_workload::{Synthetic, Workload, WorkloadConfig};
///
/// let mut w = Synthetic::builder()
///     .read_fraction(0.3)
///     .buffered_fraction(0.5)
///     .zipf_skew(1.1)
///     .pages(1, 8)
///     .build(WorkloadConfig::builder().working_set_pages(4096).build());
/// assert!(w.next_request().is_some());
/// assert_eq!(w.write_mix().buffered_fraction, 0.5);
/// ```
#[derive(Debug)]
pub struct Synthetic {
    base: Base,
    zipf: Zipf,
    read_fraction: f64,
    buffered_fraction: f64,
    trim_fraction: f64,
    min_pages: u32,
    max_pages: u32,
}

/// Builder for [`Synthetic`]. Defaults: 40 % reads, 70 % buffered writes,
/// Zipf 0.9, no TRIM, 1–4 pages per request.
#[derive(Debug, Clone)]
pub struct SyntheticBuilder {
    read_fraction: f64,
    buffered_fraction: f64,
    trim_fraction: f64,
    zipf_skew: f64,
    min_pages: u32,
    max_pages: u32,
}

impl Default for SyntheticBuilder {
    fn default() -> Self {
        SyntheticBuilder {
            read_fraction: 0.4,
            buffered_fraction: 0.7,
            trim_fraction: 0.0,
            zipf_skew: 0.9,
            min_pages: 1,
            max_pages: 4,
        }
    }
}

impl SyntheticBuilder {
    /// Sets the fraction of requests that read (`[0, 1]`).
    #[must_use]
    pub fn read_fraction(mut self, f: f64) -> Self {
        self.read_fraction = f;
        self
    }

    /// Sets the fraction of written pages that are buffered (`[0, 1]`).
    #[must_use]
    pub fn buffered_fraction(mut self, f: f64) -> Self {
        self.buffered_fraction = f;
        self
    }

    /// Sets the fraction of requests that TRIM (`[0, 1]`).
    #[must_use]
    pub fn trim_fraction(mut self, f: f64) -> Self {
        self.trim_fraction = f;
        self
    }

    /// Sets the Zipf skew of the address distribution (0 = uniform).
    #[must_use]
    pub fn zipf_skew(mut self, s: f64) -> Self {
        self.zipf_skew = s;
        self
    }

    /// Sets the request size range in pages (inclusive).
    #[must_use]
    pub fn pages(mut self, min: u32, max: u32) -> Self {
        self.min_pages = min;
        self.max_pages = max;
        self
    }

    /// Finalizes the workload.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]`, read+trim exceed 1,
    /// the page range is empty, or the working set cannot hold one
    /// maximum-size request.
    #[must_use]
    pub fn build(self, cfg: WorkloadConfig) -> Synthetic {
        for (name, v) in [
            ("read_fraction", self.read_fraction),
            ("buffered_fraction", self.buffered_fraction),
            ("trim_fraction", self.trim_fraction),
        ] {
            assert!(
                (0.0..=1.0).contains(&v),
                "{name} must be in [0, 1], got {v}"
            );
        }
        assert!(
            self.read_fraction + self.trim_fraction <= 1.0,
            "read and trim fractions exceed the request budget"
        );
        assert!(
            self.min_pages >= 1 && self.min_pages <= self.max_pages,
            "invalid page range {}..={}",
            self.min_pages,
            self.max_pages
        );
        assert!(
            cfg.working_set_pages() >= u64::from(self.max_pages),
            "working set smaller than one request"
        );
        let zipf = Zipf::new(cfg.working_set_pages(), self.zipf_skew);
        Synthetic {
            base: Base::new(cfg),
            zipf,
            read_fraction: self.read_fraction,
            buffered_fraction: self.buffered_fraction,
            trim_fraction: self.trim_fraction,
            min_pages: self.min_pages,
            max_pages: self.max_pages,
        }
    }
}

impl Synthetic {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> SyntheticBuilder {
        SyntheticBuilder::default()
    }

    fn draw_lpn(&mut self, span: u32) -> u64 {
        let ws = self.base.cfg.working_set_pages();
        let rank = self.zipf.sample(&mut self.base.rng);
        let scattered = rank.wrapping_mul(2_654_435_761) % ws;
        scattered.min(ws.saturating_sub(u64::from(span)))
    }

    fn draw_pages(&mut self) -> u32 {
        if self.min_pages == self.max_pages {
            self.min_pages
        } else {
            self.min_pages
                + self
                    .base
                    .rng
                    .range_u64(0, u64::from(self.max_pages - self.min_pages + 1))
                    as u32
        }
    }
}

impl Workload for Synthetic {
    fn name(&self) -> &'static str {
        "Synthetic"
    }

    fn write_mix(&self) -> WriteMix {
        WriteMix::new(self.buffered_fraction)
    }

    fn working_set_pages(&self) -> u64 {
        self.base.cfg.working_set_pages()
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let gap = self.base.next_gap()?;
        let pages = self.draw_pages();
        let lpn = Lpn(self.draw_lpn(pages));
        let roll = self.base.rng.unit_f64();
        let kind = if roll < self.read_fraction {
            IoKind::Read
        } else if roll < self.read_fraction + self.trim_fraction {
            IoKind::Trim
        } else if self.base.rng.chance(self.buffered_fraction) {
            IoKind::BufferedWrite
        } else {
            IoKind::DirectWrite
        };
        Some(IoRequest {
            gap,
            kind,
            lpn,
            pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::testutil::{drain_and_count, small_config};

    #[test]
    fn fractions_are_respected() {
        let mut w = Synthetic::builder()
            .read_fraction(0.25)
            .buffered_fraction(0.6)
            .trim_fraction(0.1)
            .build(small_config(1));
        let (buffered, direct, reads, trims) = drain_and_count(&mut w);
        let writes = buffered + direct;
        let total_reqs = reads + trims + writes; // pages ≈ requests × mean size, same dist
        let read_frac = reads as f64 / total_reqs as f64;
        let trim_frac = trims as f64 / total_reqs as f64;
        let buf_frac = buffered as f64 / writes as f64;
        assert!((read_frac - 0.25).abs() < 0.03, "reads {read_frac}");
        assert!((trim_frac - 0.10).abs() < 0.03, "trims {trim_frac}");
        assert!((buf_frac - 0.60).abs() < 0.03, "buffered {buf_frac}");
    }

    #[test]
    fn uniform_skew_spreads_addresses() {
        let mut w = Synthetic::builder().zipf_skew(0.0).build(small_config(2));
        let mut touched = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let Some(req) = w.next_request() else { break };
            touched.insert(req.lpn.0);
        }
        assert!(
            touched.len() > 1_000,
            "uniform access touched only {} pages",
            touched.len()
        );
    }

    #[test]
    fn fixed_size_requests() {
        let mut w = Synthetic::builder().pages(8, 8).build(small_config(3));
        for _ in 0..1_000 {
            let req = w.next_request().expect("within duration");
            assert_eq!(req.pages, 8);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let make = || Synthetic::builder().zipf_skew(1.0).build(small_config(7));
        let (mut a, mut b) = (make(), make());
        for _ in 0..1_000 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn bad_fraction_panics() {
        let _ = Synthetic::builder()
            .read_fraction(1.5)
            .build(small_config(1));
    }

    #[test]
    #[should_panic(expected = "exceed the request budget")]
    fn over_budget_fractions_panic() {
        let _ = Synthetic::builder()
            .read_fraction(0.8)
            .trim_fraction(0.5)
            .build(small_config(1));
    }

    #[test]
    #[should_panic(expected = "invalid page range")]
    fn empty_page_range_panics() {
        let _ = Synthetic::builder().pages(4, 2).build(small_config(1));
    }
}
