//! YCSB personality (update-intensive key-value store on Cassandra).

use super::Base;
use crate::{IoKind, IoRequest, Workload, WorkloadConfig, WriteMix};
use jitgc_sim::Zipf;

/// YCSB running against Cassandra — the paper's update-intensive workload.
///
/// Personality reproduced:
///
/// * 50 % reads / 50 % updates over a Zipf(0.99)-skewed key space — the
///   classic YCSB request distribution. Heavy skew means hot pages are
///   rewritten quickly, producing many soon-to-be-invalidated pages
///   (YCSB tops the paper's Table 3 SIP-filtering numbers).
/// * Updates land in the memtable, i.e. the page cache — **88.2 %
///   buffered** (paper Table 1); the remaining **11.8 %** is the commit
///   log, modeled as small sequential direct writes cycling through a
///   dedicated log region (the first 1/32 of the working set).
#[derive(Debug)]
pub struct Ycsb {
    base: Base,
    zipf: Zipf,
    log_cursor: u64,
    log_pages: u64,
}

impl Ycsb {
    /// Paper Table 1: fraction of written pages that are buffered.
    pub const BUFFERED_FRACTION: f64 = 0.882;
    /// Fraction of requests that are reads.
    const READ_FRACTION: f64 = 0.5;
    /// Zipf skew of the key space.
    const SKEW: f64 = 0.99;

    /// Creates the generator.
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        let zipf = Zipf::new(cfg.working_set_pages(), Self::SKEW);
        let log_pages = (cfg.working_set_pages() / 32).max(1);
        Ycsb {
            base: Base::new(cfg),
            zipf,
            log_cursor: 0,
            log_pages,
        }
    }
}

impl Workload for Ycsb {
    fn name(&self) -> &'static str {
        "YCSB"
    }

    fn write_mix(&self) -> WriteMix {
        WriteMix::new(Self::BUFFERED_FRACTION)
    }

    fn working_set_pages(&self) -> u64 {
        self.base.cfg.working_set_pages()
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let gap = self.base.next_gap()?;
        if self.base.rng.chance(Self::READ_FRACTION) {
            let pages = 1 + self.base.rng.range_u64(0, 2) as u32;
            let lpn = self.zipf_lpn(pages);
            return Some(IoRequest {
                gap,
                kind: IoKind::Read,
                lpn: jitgc_nand::Lpn(lpn),
                pages,
            });
        }
        // Draw the record-batch size before choosing buffered vs. direct so
        // both kinds share the size distribution and the request-count
        // split equals the page-count split of Table 1.
        let pages = 1 + self.base.rng.range_u64(0, 4) as u32;
        if self.base.rng.chance(1.0 - Self::BUFFERED_FRACTION) {
            // Commit-log group append: sequential within the log region.
            if self.log_cursor + u64::from(pages) > self.log_pages {
                self.log_cursor = 0;
            }
            let lpn = self.log_cursor;
            self.log_cursor += u64::from(pages);
            Some(IoRequest {
                gap,
                kind: IoKind::DirectWrite,
                lpn: jitgc_nand::Lpn(lpn),
                pages,
            })
        } else {
            // Memtable update: skewed, small.
            let lpn = self.zipf_lpn(pages);
            Some(IoRequest {
                gap,
                kind: IoKind::BufferedWrite,
                lpn: jitgc_nand::Lpn(lpn),
                pages,
            })
        }
    }
}

impl Ycsb {
    /// Draws a Zipf rank, scatters it over the address space (keys hash to
    /// storage locations, so hot pages are not physically clustered), and
    /// clamps so a `span`-page extent stays inside the working set.
    fn zipf_lpn(&mut self, span: u32) -> u64 {
        let ws = self.base.cfg.working_set_pages();
        let rank = self.zipf.sample(&mut self.base.rng);
        let scattered = rank.wrapping_mul(2_654_435_761) % ws;
        scattered.min(ws.saturating_sub(u64::from(span)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::testutil::{assert_deterministic, assert_mix, small_config};

    #[test]
    fn mix_matches_table1() {
        let mut w = Ycsb::new(small_config(1));
        assert_mix(&mut w, 0.03);
    }

    #[test]
    fn deterministic() {
        assert_deterministic(|| Box::new(Ycsb::new(small_config(7))));
    }

    #[test]
    fn skew_produces_hot_pages() {
        let mut w = Ycsb::new(small_config(3));
        let mut counts = std::collections::HashMap::new();
        while let Some(req) = w.next_request() {
            if req.kind == IoKind::BufferedWrite {
                *counts.entry(req.lpn.0).or_insert(0u64) += 1;
            }
        }
        let total: u64 = counts.values().sum();
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = freqs.iter().take(10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.15,
            "top-10 pages carry too little traffic: {top10}/{total}"
        );
    }

    #[test]
    fn log_writes_are_sequential_in_log_region() {
        let mut w = Ycsb::new(small_config(4));
        let log_pages = w.log_pages;
        let mut last_end: Option<u64> = None;
        let mut seen = 0u64;
        while let Some(req) = w.next_request() {
            if req.kind == IoKind::DirectWrite {
                seen += 1;
                let end = req.lpn.0 + u64::from(req.pages);
                assert!(end <= log_pages, "log write escaped the log region");
                if let Some(prev_end) = last_end {
                    assert!(
                        req.lpn.0 == prev_end || req.lpn.0 == 0,
                        "log not sequential: prev end {prev_end}, next start {}",
                        req.lpn.0
                    );
                }
                last_end = Some(end);
            }
        }
        assert!(seen > 0, "no commit-log writes observed");
    }
}
