//! The six benchmark personalities.

mod bonnie;
mod filebench;
mod postmark;
mod synthetic;
mod tiobench;
mod tpcc;
mod ycsb;

pub use bonnie::Bonnie;
pub use filebench::Filebench;
pub use postmark::Postmark;
pub use synthetic::{Synthetic, SyntheticBuilder};
pub use tiobench::Tiobench;
pub use tpcc::TpcC;
pub use ycsb::Ycsb;

use crate::{ArrivalProcess, WorkloadConfig};
use jitgc_sim::{SimDuration, SimRng};

/// Shared generator plumbing: config, RNG, arrivals, and the think-time
/// clock that bounds the workload's duration.
#[derive(Debug)]
pub(crate) struct Base {
    pub cfg: WorkloadConfig,
    pub rng: SimRng,
    arrival: ArrivalProcess,
    clock: SimDuration,
}

impl Base {
    pub fn new(cfg: WorkloadConfig) -> Self {
        let mut rng = SimRng::seed(cfg.seed());
        let arrival = ArrivalProcess::new(cfg.mean_iops(), cfg.burst_mean());
        // Fork so that arrival sampling and op sampling do not interleave
        // their randomness (keeps op streams stable under arrival tweaks).
        let rng = rng.fork(1);
        Base {
            cfg,
            rng,
            arrival,
            clock: SimDuration::ZERO,
        }
    }

    /// Draws the next think-time gap, or `None` once the configured
    /// duration is exhausted.
    pub fn next_gap(&mut self) -> Option<SimDuration> {
        if self.clock >= self.cfg.duration() {
            return None;
        }
        let gap = self.arrival.next_gap(&mut self.rng);
        self.clock += gap;
        Some(gap)
    }

    /// Uniform page offset in `[0, working_set)` minus `span`, so a
    /// `span`-page extent starting there stays in bounds.
    pub fn uniform_start(&mut self, span: u32) -> u64 {
        let ws = self.cfg.working_set_pages();
        let limit = ws.saturating_sub(u64::from(span)).max(1);
        self.rng.range_u64(0, limit)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared assertions run against every generator.

    use crate::{IoKind, Workload, WorkloadConfig};
    use jitgc_sim::SimDuration;

    pub fn small_config(seed: u64) -> WorkloadConfig {
        WorkloadConfig::builder()
            .working_set_pages(2_048)
            .duration(SimDuration::from_secs(20))
            .mean_iops(2_000.0)
            .burst_mean(16.0)
            .seed(seed)
            .build()
    }

    /// Drains the workload, checking bounds, and returns
    /// (buffered_pages, direct_pages, read_pages, trim_pages).
    pub fn drain_and_count(w: &mut dyn Workload) -> (u64, u64, u64, u64) {
        let ws = w.working_set_pages();
        let (mut b, mut d, mut r, mut t) = (0u64, 0u64, 0u64, 0u64);
        let mut total = 0u64;
        while let Some(req) = w.next_request() {
            total += 1;
            assert!(req.pages >= 1, "empty request");
            assert!(
                req.lpn.0 + u64::from(req.pages) <= ws,
                "request escapes working set: lpn={} pages={} ws={ws}",
                req.lpn.0,
                req.pages
            );
            let pages = u64::from(req.pages);
            match req.kind {
                IoKind::BufferedWrite => b += pages,
                IoKind::DirectWrite => d += pages,
                IoKind::Read => r += pages,
                IoKind::Trim => t += pages,
            }
        }
        assert!(total > 1_000, "workload too short: {total} requests");
        (b, d, r, t)
    }

    /// Asserts the measured buffered fraction of write pages is within
    /// `tol` of the generator's configured mix.
    pub fn assert_mix(w: &mut dyn Workload, tol: f64) {
        let expected = w.write_mix().buffered_fraction;
        let (b, d, _, _) = drain_and_count(w);
        let measured = b as f64 / (b + d) as f64;
        assert!(
            (measured - expected).abs() < tol,
            "{}: measured buffered fraction {measured:.3}, configured {expected:.3}",
            w.name()
        );
    }

    /// Asserts two same-seed instances produce identical streams.
    pub fn assert_deterministic<F>(make: F)
    where
        F: Fn() -> Box<dyn Workload>,
    {
        let mut a = make();
        let mut b = make();
        for _ in 0..2_000 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }
}
