//! TPC-C personality (OLTP on MySQL/InnoDB).

use super::Base;
use crate::{IoKind, IoRequest, Workload, WorkloadConfig, WriteMix};
use jitgc_nand::Lpn;
use jitgc_sim::Zipf;

/// TPC-C running on MySQL — the paper's pure-OLTP workload.
///
/// Personality reproduced:
///
/// * InnoDB manages its own buffer pool and opens its tablespace with
///   `O_DIRECT`: **99.9 % of written pages are direct** (paper Table 1).
///   The page cache sees essentially nothing, which is why TPC-C is
///   JIT-GC's worst case (72.5 % prediction accuracy, lowest IOPS gain,
///   1.1 % SIP filtering in the paper).
/// * Small (1–2 page) random writes over a Zipf(0.9) hot set — the NEW-ORDER
///   / PAYMENT update pattern — plus a sequential redo-log stream in a
///   dedicated region (also direct).
/// * 40 % reads (buffer-pool misses).
#[derive(Debug)]
pub struct TpcC {
    base: Base,
    zipf: Zipf,
    log_cursor: u64,
    log_pages: u64,
}

impl TpcC {
    /// Paper Table 1: fraction of written pages that are buffered.
    pub const BUFFERED_FRACTION: f64 = 0.001;
    /// Fraction of requests that read.
    const READ_FRACTION: f64 = 0.4;
    /// Fraction of writes going to the redo log.
    const LOG_WRITE_FRACTION: f64 = 0.3;
    /// Zipf skew of table-page updates.
    const SKEW: f64 = 0.9;

    /// Creates the generator.
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        let zipf = Zipf::new(cfg.working_set_pages(), Self::SKEW);
        let log_pages = (cfg.working_set_pages() / 64).max(1);
        TpcC {
            base: Base::new(cfg),
            zipf,
            log_cursor: 0,
            log_pages,
        }
    }

    fn table_page(&mut self, span: u32) -> u64 {
        let ws = self.base.cfg.working_set_pages();
        let rank = self.zipf.sample(&mut self.base.rng);
        (rank.wrapping_mul(2_654_435_761) % ws).min(ws.saturating_sub(u64::from(span)))
    }
}

impl Workload for TpcC {
    fn name(&self) -> &'static str {
        "TPC-C"
    }

    fn write_mix(&self) -> WriteMix {
        WriteMix::new(Self::BUFFERED_FRACTION)
    }

    fn working_set_pages(&self) -> u64 {
        self.base.cfg.working_set_pages()
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let gap = self.base.next_gap()?;
        if self.base.rng.chance(Self::READ_FRACTION) {
            let pages = 1 + self.base.rng.range_u64(0, 2) as u32;
            let lpn = self.table_page(pages);
            return Some(IoRequest {
                gap,
                kind: IoKind::Read,
                lpn: Lpn(lpn),
                pages,
            });
        }
        let kind = if self.base.rng.chance(Self::BUFFERED_FRACTION) {
            IoKind::BufferedWrite
        } else {
            IoKind::DirectWrite
        };
        if self.base.rng.chance(Self::LOG_WRITE_FRACTION) {
            // Redo-log append.
            let lpn = self.log_cursor;
            self.log_cursor = (self.log_cursor + 1) % self.log_pages;
            Some(IoRequest {
                gap,
                kind,
                lpn: Lpn(lpn),
                pages: 1,
            })
        } else {
            // Random table-page update.
            let pages = 1 + self.base.rng.range_u64(0, 2) as u32;
            let lpn = self.table_page(pages);
            Some(IoRequest {
                gap,
                kind,
                lpn: Lpn(lpn),
                pages,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::testutil::{assert_deterministic, drain_and_count, small_config};

    #[test]
    fn writes_are_almost_all_direct() {
        let mut w = TpcC::new(small_config(1));
        let (buffered, direct, _, _) = drain_and_count(&mut w);
        let frac = buffered as f64 / (buffered + direct) as f64;
        assert!(frac < 0.01, "buffered fraction {frac} should be ≈ 0.001");
    }

    #[test]
    fn deterministic() {
        assert_deterministic(|| Box::new(TpcC::new(small_config(4))));
    }

    #[test]
    fn reads_present() {
        let mut w = TpcC::new(small_config(2));
        let (_, _, reads, _) = drain_and_count(&mut w);
        assert!(reads > 0);
    }

    #[test]
    fn log_region_is_sequential() {
        let mut w = TpcC::new(small_config(3));
        let log_pages = w.log_pages;
        let mut last: Option<u64> = None;
        for _ in 0..20_000 {
            let Some(req) = w.next_request() else { break };
            if req.kind.is_write() && req.lpn.0 < log_pages && req.pages == 1 {
                // Log writes are the single-page writes below log_pages that
                // follow the cursor; random table writes can also land here,
                // so only check monotone wrap-around progression loosely.
                if let Some(prev) = last {
                    if req.lpn.0 == (prev + 1) % log_pages {
                        last = Some(req.lpn.0);
                    }
                } else {
                    last = Some(req.lpn.0);
                }
            }
        }
        assert!(last.is_some(), "no log writes observed");
    }
}
