//! Bonnie++ personality (sequential throughput + seek phases).

use super::Base;
use crate::{IoKind, IoRequest, Workload, WorkloadConfig, WriteMix};
use jitgc_nand::Lpn;

/// Bonnie++ — a filesystem micro-benchmark cycling through distinct
/// phases.
///
/// Personality reproduced:
///
/// * Four phases, each sweeping the working set once before the next
///   begins: **sequential write**, **sequential rewrite**, **sequential
///   read**, **random seeks** (small scattered read-modify-writes).
/// * Phase structure makes traffic *regime-switching*: long all-write
///   stretches then long all-read stretches — a stress test for the CDH
///   direct-write predictor, which must adapt its window.
/// * Writes are **72.4 % buffered / 27.6 % direct** (paper Table 1);
///   Bonnie++ fsyncs at chunk boundaries.
#[derive(Debug)]
pub struct Bonnie {
    base: Base,
    phase: Phase,
    cursor: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SeqWrite,
    SeqRewrite,
    SeqRead,
    RandomSeeks,
}

impl Phase {
    fn next(self) -> Phase {
        match self {
            Phase::SeqWrite => Phase::SeqRewrite,
            Phase::SeqRewrite => Phase::SeqRead,
            Phase::SeqRead => Phase::RandomSeeks,
            Phase::RandomSeeks => Phase::SeqWrite,
        }
    }
}

/// Pages per sequential chunk.
const CHUNK_PAGES: u32 = 8;

impl Bonnie {
    /// Paper Table 1: fraction of written pages that are buffered.
    pub const BUFFERED_FRACTION: f64 = 0.724;
    /// Seek-phase operations per working-set sweep (relative to the
    /// sequential phases' chunk count).
    const SEEKS_PER_SWEEP_FACTOR: u64 = 1;

    /// Creates the generator.
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        Bonnie {
            base: Base::new(cfg),
            phase: Phase::SeqWrite,
            cursor: 0,
        }
    }

    fn sweep_len(&self) -> u64 {
        let chunks = self.base.cfg.working_set_pages() / u64::from(CHUNK_PAGES);
        chunks.max(1)
    }

    fn advance_cursor(&mut self) {
        self.cursor += 1;
        let limit = match self.phase {
            Phase::RandomSeeks => self.sweep_len() * Self::SEEKS_PER_SWEEP_FACTOR,
            _ => self.sweep_len(),
        };
        if self.cursor >= limit {
            self.cursor = 0;
            self.phase = self.phase.next();
        }
    }

    fn write_kind(&mut self) -> IoKind {
        if self.base.rng.chance(1.0 - Self::BUFFERED_FRACTION) {
            IoKind::DirectWrite
        } else {
            IoKind::BufferedWrite
        }
    }
}

impl Workload for Bonnie {
    fn name(&self) -> &'static str {
        "Bonnie++"
    }

    fn write_mix(&self) -> WriteMix {
        WriteMix::new(Self::BUFFERED_FRACTION)
    }

    fn working_set_pages(&self) -> u64 {
        self.base.cfg.working_set_pages()
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let gap = self.base.next_gap()?;
        let seq_start = self.cursor * u64::from(CHUNK_PAGES);
        let req = match self.phase {
            Phase::SeqWrite | Phase::SeqRewrite => IoRequest {
                gap,
                kind: self.write_kind(),
                lpn: Lpn(seq_start),
                pages: CHUNK_PAGES,
            },
            Phase::SeqRead => IoRequest {
                gap,
                kind: IoKind::Read,
                lpn: Lpn(seq_start),
                pages: CHUNK_PAGES,
            },
            Phase::RandomSeeks => {
                let lpn = self.base.uniform_start(1);
                // Bonnie's seek test reads a block and rewrites ~10 % of them.
                if self.base.rng.chance(0.1) {
                    IoRequest {
                        gap,
                        kind: self.write_kind(),
                        lpn: Lpn(lpn),
                        pages: 1,
                    }
                } else {
                    IoRequest {
                        gap,
                        kind: IoKind::Read,
                        lpn: Lpn(lpn),
                        pages: 1,
                    }
                }
            }
        };
        self.advance_cursor();
        Some(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::testutil::{assert_deterministic, assert_mix, small_config};

    #[test]
    fn mix_matches_table1() {
        let mut w = Bonnie::new(small_config(1));
        assert_mix(&mut w, 0.04);
    }

    #[test]
    fn deterministic() {
        assert_deterministic(|| Box::new(Bonnie::new(small_config(6))));
    }

    #[test]
    fn phases_cycle_in_order() {
        let cfg = small_config(2);
        let mut w = Bonnie::new(cfg);
        let sweep = w.sweep_len();
        // Drain one full write sweep: all requests must be writes.
        for _ in 0..sweep {
            let req = w.next_request().expect("within duration");
            assert!(
                req.kind.is_write(),
                "seq-write phase emitted {:?}",
                req.kind
            );
        }
        // Next sweep is the rewrite phase (also writes), then reads.
        for _ in 0..sweep {
            let req = w.next_request().expect("within duration");
            assert!(req.kind.is_write());
        }
        let req = w.next_request().expect("within duration");
        assert_eq!(req.kind, IoKind::Read, "seq-read phase must follow");
    }

    #[test]
    fn sequential_phases_are_sequential() {
        let mut w = Bonnie::new(small_config(3));
        let mut prev_end = 0u64;
        for i in 0..w.sweep_len() {
            let req = w.next_request().expect("within duration");
            if i > 0 {
                assert_eq!(req.lpn.0, prev_end, "chunks must be contiguous");
            }
            prev_end = req.lpn.0 + u64::from(req.pages);
        }
    }
}
