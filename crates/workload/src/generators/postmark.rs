//! Postmark personality (mail-server small-file churn).

use super::Base;
use crate::{IoKind, IoRequest, Workload, WorkloadConfig, WriteMix};
use jitgc_nand::Lpn;

/// Postmark — small-file create/append/read/delete churn, as in a mail
/// spool.
///
/// Personality reproduced:
///
/// * The working set is divided into 8-page "file slots". Operations are
///   create (write a fresh slot), append (write the tail of a slot), read
///   (a slot), delete (TRIM a slot — our extension; Postmark deletes
///   thousands of files).
/// * Write-heavy: ~70 % of requests write. Deliveries `fsync` the message
///   (direct); most traffic is buffered — **81.7 % buffered / 18.3 %
///   direct** (paper Table 1).
/// * Churn concentrated on a hot subset of slots (recently created files
///   die young), feeding SIP filtering (20.6 % in the paper's Table 3,
///   the highest of the six).
#[derive(Debug)]
pub struct Postmark {
    base: Base,
    slots: u64,
}

/// Pages per file slot.
const SLOT_PAGES: u64 = 8;

impl Postmark {
    /// Paper Table 1: fraction of written pages that are buffered.
    pub const BUFFERED_FRACTION: f64 = 0.817;
    /// Fraction of requests that read.
    const READ_FRACTION: f64 = 0.25;
    /// Fraction of requests that delete (TRIM) a slot.
    const DELETE_FRACTION: f64 = 0.05;
    /// Fraction of the slot space holding "hot" young files.
    const HOT_FRACTION: f64 = 0.25;
    /// Probability an operation targets the hot subset.
    const HOT_PROBABILITY: f64 = 0.75;

    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than one file slot.
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        let slots = cfg.working_set_pages() / SLOT_PAGES;
        assert!(slots > 0, "working set smaller than one postmark file slot");
        Postmark {
            base: Base::new(cfg),
            slots,
        }
    }

    fn pick_slot(&mut self) -> u64 {
        let hot_slots = ((self.slots as f64 * Self::HOT_FRACTION) as u64).max(1);
        if self.base.rng.chance(Self::HOT_PROBABILITY) {
            self.base.rng.range_u64(0, hot_slots)
        } else {
            self.base.rng.range_u64(0, self.slots)
        }
    }
}

impl Workload for Postmark {
    fn name(&self) -> &'static str {
        "Postmark"
    }

    fn write_mix(&self) -> WriteMix {
        WriteMix::new(Self::BUFFERED_FRACTION)
    }

    fn working_set_pages(&self) -> u64 {
        self.base.cfg.working_set_pages()
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let gap = self.base.next_gap()?;
        let slot = self.pick_slot();
        let slot_start = slot * SLOT_PAGES;
        let roll = self.base.rng.unit_f64();
        if roll < Self::DELETE_FRACTION {
            return Some(IoRequest {
                gap,
                kind: IoKind::Trim,
                lpn: Lpn(slot_start),
                pages: SLOT_PAGES as u32,
            });
        }
        if roll < Self::DELETE_FRACTION + Self::READ_FRACTION {
            let pages = 1 + self.base.rng.range_u64(0, SLOT_PAGES) as u32;
            return Some(IoRequest {
                gap,
                kind: IoKind::Read,
                lpn: Lpn(slot_start),
                pages,
            });
        }
        // Create or append: write 1..=SLOT_PAGES pages at the slot head.
        let pages = 1 + self.base.rng.range_u64(0, SLOT_PAGES) as u32;
        let kind = if self.base.rng.chance(1.0 - Self::BUFFERED_FRACTION) {
            IoKind::DirectWrite
        } else {
            IoKind::BufferedWrite
        };
        Some(IoRequest {
            gap,
            kind,
            lpn: Lpn(slot_start),
            pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::testutil::{
        assert_deterministic, assert_mix, drain_and_count, small_config,
    };

    #[test]
    fn mix_matches_table1() {
        let mut w = Postmark::new(small_config(1));
        assert_mix(&mut w, 0.03);
    }

    #[test]
    fn deterministic() {
        assert_deterministic(|| Box::new(Postmark::new(small_config(9))));
    }

    #[test]
    fn deletes_emit_trims() {
        let mut w = Postmark::new(small_config(2));
        let (_, _, _, trims) = drain_and_count(&mut w);
        assert!(trims > 0, "postmark must delete files");
    }

    #[test]
    fn requests_are_slot_aligned() {
        let mut w = Postmark::new(small_config(3));
        for _ in 0..5_000 {
            let Some(req) = w.next_request() else { break };
            assert_eq!(req.lpn.0 % SLOT_PAGES, 0, "not slot aligned");
            assert!(u64::from(req.pages) <= SLOT_PAGES);
        }
    }

    #[test]
    #[should_panic(expected = "smaller than one postmark file slot")]
    fn tiny_working_set_panics() {
        let cfg = WorkloadConfig::builder().working_set_pages(4).build();
        let _ = Postmark::new(cfg);
    }
}
