//! Tiobench personality (multi-threaded mixed I/O).

use super::Base;
use crate::{IoKind, IoRequest, Workload, WorkloadConfig, WriteMix};
use jitgc_nand::Lpn;

/// Tiobench — a threaded I/O benchmark mixing sequential and random
/// access from several concurrent workers.
///
/// Personality reproduced:
///
/// * Four simulated threads round-robin; each owns a quarter of the
///   working set and alternates between a sequential scan position and
///   random offsets inside its territory.
/// * Slightly write-heavy (60 % writes) with **46.3 % buffered / 53.7 %
///   direct** (paper Table 1) — Tiobench is commonly run with `O_DIRECT`
///   threads, making over half the traffic invisible to the page cache.
///   This is where JIT-GC's buffered predictor starts losing its edge
///   (Fig. 7).
#[derive(Debug)]
pub struct Tiobench {
    base: Base,
    cursors: [u64; THREADS],
    turn: usize,
}

const THREADS: usize = 4;
/// Pages per request.
const IO_PAGES: u32 = 4;

impl Tiobench {
    /// Paper Table 1: fraction of written pages that are buffered.
    pub const BUFFERED_FRACTION: f64 = 0.463;
    /// Fraction of requests that read.
    const READ_FRACTION: f64 = 0.4;
    /// Probability a thread does its sequential scan rather than a random
    /// offset.
    const SEQUENTIAL_PROBABILITY: f64 = 0.5;

    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the working set cannot give each thread at least one
    /// request's worth of pages.
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        let per_thread = cfg.working_set_pages() / THREADS as u64;
        assert!(
            per_thread >= u64::from(IO_PAGES),
            "working set too small for {THREADS} tiobench threads"
        );
        Tiobench {
            base: Base::new(cfg),
            cursors: [0; THREADS],
            turn: 0,
        }
    }

    fn territory(&self, thread: usize) -> (u64, u64) {
        let per_thread = self.base.cfg.working_set_pages() / THREADS as u64;
        let start = thread as u64 * per_thread;
        (start, per_thread)
    }
}

impl Workload for Tiobench {
    fn name(&self) -> &'static str {
        "Tiobench"
    }

    fn write_mix(&self) -> WriteMix {
        WriteMix::new(Self::BUFFERED_FRACTION)
    }

    fn working_set_pages(&self) -> u64 {
        self.base.cfg.working_set_pages()
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let gap = self.base.next_gap()?;
        let thread = self.turn;
        self.turn = (self.turn + 1) % THREADS;
        let (start, len) = self.territory(thread);
        let slots = len / u64::from(IO_PAGES);

        let offset = if self.base.rng.chance(Self::SEQUENTIAL_PROBABILITY) {
            let c = self.cursors[thread];
            self.cursors[thread] = (c + 1) % slots;
            c * u64::from(IO_PAGES)
        } else {
            self.base.rng.range_u64(0, slots) * u64::from(IO_PAGES)
        };
        let lpn = Lpn(start + offset);

        let kind = if self.base.rng.chance(Self::READ_FRACTION) {
            IoKind::Read
        } else if self.base.rng.chance(1.0 - Self::BUFFERED_FRACTION) {
            IoKind::DirectWrite
        } else {
            IoKind::BufferedWrite
        };
        Some(IoRequest {
            gap,
            kind,
            lpn,
            pages: IO_PAGES,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::testutil::{assert_deterministic, assert_mix, small_config};

    #[test]
    fn mix_matches_table1() {
        let mut w = Tiobench::new(small_config(1));
        assert_mix(&mut w, 0.04);
    }

    #[test]
    fn deterministic() {
        assert_deterministic(|| Box::new(Tiobench::new(small_config(8))));
    }

    #[test]
    fn threads_round_robin_in_their_territory() {
        let mut w = Tiobench::new(small_config(2));
        let ws = w.working_set_pages();
        let per_thread = ws / THREADS as u64;
        for i in 0..4_000 {
            let Some(req) = w.next_request() else { break };
            let thread = i % THREADS;
            let start = thread as u64 * per_thread;
            assert!(
                req.lpn.0 >= start && req.lpn.0 + u64::from(req.pages) <= start + per_thread,
                "thread {thread} escaped its territory: lpn {}",
                req.lpn.0
            );
        }
    }

    #[test]
    fn direct_writes_dominate_writes() {
        let mut w = Tiobench::new(small_config(3));
        let (mut buffered, mut direct) = (0u64, 0u64);
        while let Some(req) = w.next_request() {
            match req.kind {
                IoKind::BufferedWrite => buffered += u64::from(req.pages),
                IoKind::DirectWrite => direct += u64::from(req.pages),
                _ => {}
            }
        }
        assert!(direct > buffered, "tiobench is majority-direct");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_working_set_panics() {
        let cfg = WorkloadConfig::builder().working_set_pages(8).build();
        let _ = Tiobench::new(cfg);
    }
}
