//! Filebench file-server personality.

use super::Base;
use crate::{IoKind, IoRequest, Workload, WorkloadConfig, WriteMix};
use jitgc_nand::Lpn;

/// Filebench's `fileserver` profile — whole-file reads and writes of
/// medium-sized files.
///
/// Personality reproduced:
///
/// * The working set is divided into 16-page file extents; operations read
///   or rewrite whole extents (with some partial appends), like an NFS/SMB
///   file server.
/// * Balanced read/write (50/50 requests); writes are **85.8 % buffered /
///   14.2 % direct** (paper Table 1) — the direct share models synchronous
///   metadata/journal updates.
/// * Moderate locality (Zipf-free, hot directory subset): a 30 % slice of
///   extents takes 60 % of operations.
#[derive(Debug)]
pub struct Filebench {
    base: Base,
    extents: u64,
}

/// Pages per file extent.
const EXTENT_PAGES: u64 = 16;

impl Filebench {
    /// Paper Table 1: fraction of written pages that are buffered.
    pub const BUFFERED_FRACTION: f64 = 0.858;
    /// Fraction of requests that read.
    const READ_FRACTION: f64 = 0.5;
    /// Hot-slice size and probability.
    const HOT_FRACTION: f64 = 0.3;
    const HOT_PROBABILITY: f64 = 0.6;

    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than one extent.
    #[must_use]
    pub fn new(cfg: WorkloadConfig) -> Self {
        let extents = cfg.working_set_pages() / EXTENT_PAGES;
        assert!(extents > 0, "working set smaller than one filebench extent");
        Filebench {
            base: Base::new(cfg),
            extents,
        }
    }

    fn pick_extent(&mut self) -> u64 {
        let hot = ((self.extents as f64 * Self::HOT_FRACTION) as u64).max(1);
        if self.base.rng.chance(Self::HOT_PROBABILITY) {
            self.base.rng.range_u64(0, hot)
        } else {
            self.base.rng.range_u64(0, self.extents)
        }
    }
}

impl Workload for Filebench {
    fn name(&self) -> &'static str {
        "Filebench"
    }

    fn write_mix(&self) -> WriteMix {
        WriteMix::new(Self::BUFFERED_FRACTION)
    }

    fn working_set_pages(&self) -> u64 {
        self.base.cfg.working_set_pages()
    }

    fn next_request(&mut self) -> Option<IoRequest> {
        let gap = self.base.next_gap()?;
        let extent = self.pick_extent();
        let start = extent * EXTENT_PAGES;
        if self.base.rng.chance(Self::READ_FRACTION) {
            return Some(IoRequest {
                gap,
                kind: IoKind::Read,
                lpn: Lpn(start),
                pages: EXTENT_PAGES as u32,
            });
        }
        // Whole-file rewrite (75 %) or partial append (25 %).
        let pages = if self.base.rng.chance(0.75) {
            EXTENT_PAGES as u32
        } else {
            1 + self.base.rng.range_u64(0, EXTENT_PAGES / 2) as u32
        };
        let kind = if self.base.rng.chance(1.0 - Self::BUFFERED_FRACTION) {
            IoKind::DirectWrite
        } else {
            IoKind::BufferedWrite
        };
        Some(IoRequest {
            gap,
            kind,
            lpn: Lpn(start),
            pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::testutil::{assert_deterministic, assert_mix, small_config};

    #[test]
    fn mix_matches_table1() {
        let mut w = Filebench::new(small_config(1));
        assert_mix(&mut w, 0.04);
    }

    #[test]
    fn deterministic() {
        assert_deterministic(|| Box::new(Filebench::new(small_config(5))));
    }

    #[test]
    fn operations_are_extent_aligned() {
        let mut w = Filebench::new(small_config(2));
        for _ in 0..5_000 {
            let Some(req) = w.next_request() else { break };
            assert_eq!(req.lpn.0 % EXTENT_PAGES, 0);
            assert!(u64::from(req.pages) <= EXTENT_PAGES);
        }
    }

    #[test]
    fn whole_file_writes_dominate() {
        let mut w = Filebench::new(small_config(3));
        let mut whole = 0u64;
        let mut partial = 0u64;
        while let Some(req) = w.next_request() {
            if req.kind.is_write() {
                if u64::from(req.pages) == EXTENT_PAGES {
                    whole += 1;
                } else {
                    partial += 1;
                }
            }
        }
        assert!(whole > partial, "whole-file rewrites should dominate");
    }
}
