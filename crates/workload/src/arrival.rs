//! Bursty arrival-process model.

use jitgc_sim::{SimDuration, SimRng};

/// Generates think-time gaps forming bursts separated by idle periods.
///
/// Real applications do not issue I/O at a constant rate: they compute,
/// then flood the device, then go quiet. Those quiet periods are exactly
/// where background GC hides, so the arrival model matters for every
/// experiment in the paper.
///
/// Within a burst, gaps are exponential with a small mean (`intra_mean`);
/// between bursts the idle gap mean is derived so the long-run request
/// rate matches the configured IOPS:
///
/// ```text
/// mean_gap = 1e6 / iops
/// idle_mean = burst_mean × mean_gap − (burst_mean − 1) × intra_mean
/// ```
///
/// # Example
///
/// ```
/// use jitgc_sim::SimRng;
/// use jitgc_workload::ArrivalProcess;
///
/// let mut arrivals = ArrivalProcess::new(1_000.0, 16.0);
/// let mut rng = SimRng::seed(3);
/// let gap = arrivals.next_gap(&mut rng);
/// assert!(gap.as_micros() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    intra_mean_us: f64,
    idle_mean_us: f64,
    burst_mean: f64,
    burst_remaining: u64,
}

impl ArrivalProcess {
    /// Default intra-burst gap mean: 50 µs (queue-depth-ish pipelining).
    const INTRA_MEAN_US: f64 = 50.0;

    /// Creates a process targeting `iops` requests/second with mean burst
    /// length `burst_mean`.
    ///
    /// # Panics
    ///
    /// Panics unless `iops > 0` and `burst_mean ≥ 1`.
    #[must_use]
    pub fn new(iops: f64, burst_mean: f64) -> Self {
        assert!(iops.is_finite() && iops > 0.0, "iops must be positive");
        assert!(
            burst_mean.is_finite() && burst_mean >= 1.0,
            "burst mean must be at least 1"
        );
        let mean_gap = 1e6 / iops;
        let intra = Self::INTRA_MEAN_US.min(mean_gap);
        let idle = (burst_mean * mean_gap - (burst_mean - 1.0) * intra).max(intra);
        ArrivalProcess {
            intra_mean_us: intra,
            idle_mean_us: idle,
            burst_mean,
            burst_remaining: 0,
        }
    }

    /// Draws the next think-time gap.
    pub fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            SimDuration::from_micros(rng.exp_micros(self.intra_mean_us))
        } else {
            self.burst_remaining = rng.burst_len(self.burst_mean).saturating_sub(1);
            SimDuration::from_micros(rng.exp_micros(self.idle_mean_us))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_rate_matches_target() {
        let mut arrivals = ArrivalProcess::new(2_000.0, 32.0);
        let mut rng = SimRng::seed(5);
        let n = 200_000u64;
        let total: SimDuration = (0..n).map(|_| arrivals.next_gap(&mut rng)).sum();
        let rate = n as f64 / total.as_secs_f64();
        assert!(
            (rate - 2_000.0).abs() / 2_000.0 < 0.05,
            "observed rate {rate}"
        );
    }

    #[test]
    fn bursts_create_bimodal_gaps() {
        let mut arrivals = ArrivalProcess::new(1_000.0, 32.0);
        let mut rng = SimRng::seed(7);
        let gaps: Vec<u64> = (0..50_000)
            .map(|_| arrivals.next_gap(&mut rng).as_micros())
            .collect();
        let small = gaps.iter().filter(|&&g| g < 500).count();
        let large = gaps.iter().filter(|&&g| g > 5_000).count();
        assert!(small > 30_000, "intra-burst gaps missing: {small}");
        assert!(large > 500, "idle gaps missing: {large}");
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut a = ArrivalProcess::new(500.0, 8.0);
            let mut rng = SimRng::seed(seed);
            (0..100)
                .map(|_| a.next_gap(&mut rng).as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(1), gen(1));
        assert_ne!(gen(1), gen(2));
    }

    #[test]
    fn burst_mean_one_is_pure_poisson() {
        let mut arrivals = ArrivalProcess::new(1_000.0, 1.0);
        let mut rng = SimRng::seed(11);
        let n = 50_000u64;
        let total: SimDuration = (0..n).map(|_| arrivals.next_gap(&mut rng)).sum();
        let rate = n as f64 / total.as_secs_f64();
        assert!((rate - 1_000.0).abs() / 1_000.0 < 0.05, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "iops must be positive")]
    fn zero_iops_panics() {
        let _ = ArrivalProcess::new(0.0, 4.0);
    }
}
