//! Synthetic benchmark workload generators for the JIT-GC simulator.
//!
//! The paper evaluates on six application benchmarks (YCSB, Postmark,
//! Filebench, Bonnie++, Tiobench, TPC-C). Running those real applications
//! requires a filesystem, a DBMS, and the original testbed; what the
//! *simulation* needs from them is their I/O personality:
//!
//! 1. the **buffered : direct write ratio** (paper Table 1) — this decides
//!    how much of the future is predictable from the page cache;
//! 2. **overwrite locality** (hot pages rewritten soon) — this creates the
//!    soon-to-be-invalidated pages SIP filtering exploits;
//! 3. **burstiness / idle structure** — this is the time budget background
//!    GC can hide in.
//!
//! Each generator here reproduces those three properties for its namesake
//! (documented per type), is fully deterministic given a seed, and reports
//! its configured [`WriteMix`] so the Table 1 experiment can compare
//! configured vs. measured ratios.
//!
//! # Example
//!
//! ```
//! use jitgc_workload::{BenchmarkKind, Workload, WorkloadConfig};
//!
//! let config = WorkloadConfig::builder()
//!     .working_set_pages(4096)
//!     .seed(7)
//!     .build();
//! let mut workload = BenchmarkKind::Ycsb.build(config);
//! let first = workload.next_request().expect("workload is non-empty");
//! assert!(first.lpn.0 < 4096);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod benchmark;
mod config;
mod measure;
mod profile;
mod request;
mod stub;
mod trace;

mod generators;

pub use arrival::ArrivalProcess;
pub use benchmark::BenchmarkKind;
pub use config::{WorkloadConfig, WorkloadConfigBuilder};
pub use generators::{
    Bonnie, Filebench, Postmark, Synthetic, SyntheticBuilder, Tiobench, TpcC, Ycsb,
};
pub use measure::{measure_write_mix, MeasuredMix};
pub use profile::{AccessPattern, WriteProfile, WriteStream};
pub use request::{IoKind, IoRequest, WriteMix};
pub use stub::NullWorkload;
pub use trace::{
    demux_trace, merge_traces, parse_msr_trace, record_trace, ParseTraceError, TraceRecord,
    TraceWorkload,
};

use jitgc_nand::Lpn;

/// A stream of I/O requests with think-time gaps.
///
/// Generators are pull-based: [`next_request`](Workload::next_request)
/// yields the next request or `None` once the configured duration of
/// think-time has been emitted. The engine owns actual issue timing (the
/// gap is a *minimum* spacing — a closed-loop schedule, not an open-loop
/// timestamp).
///
/// `Send` so a system holding its workload can be stepped on an array
/// worker thread.
pub trait Workload: Send {
    /// The benchmark's display name.
    fn name(&self) -> &'static str;

    /// The next request, or `None` when the workload is exhausted.
    fn next_request(&mut self) -> Option<IoRequest>;

    /// The configured buffered/direct write split (paper Table 1).
    fn write_mix(&self) -> WriteMix;

    /// The number of logical pages this workload touches.
    fn working_set_pages(&self) -> u64;
}

/// Object-safe helper: largest LPN a workload may touch, for sizing the
/// FTL's logical space.
#[must_use]
pub fn max_lpn_of(workload: &dyn Workload) -> Lpn {
    Lpn(workload.working_set_pages().saturating_sub(1))
}
